//! Krylov solvers on abstract [`LinOp`]s.
//!
//! Compressed H2 operators are built to be *used* — kernel ridge regression,
//! IE solves, preconditioned iterations (paper §I motivation). This module
//! provides conjugate gradients (optionally with diagonal regularization
//! `A + σ²I`) and a power-iteration extreme-eigenvalue estimate for SPD
//! operators.

use crate::mat::Mat;
use crate::op::LinOp;

/// Result of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    pub x: Vec<f64>,
    pub iterations: usize,
    /// Final relative residual `‖b - A x‖ / ‖b‖`.
    pub relative_residual: f64,
    pub converged: bool,
}

/// Conjugate gradients for `(A + shift·I) x = b` with an SPD operator `A`.
pub fn cg(a: &dyn LinOp, b: &[f64], shift: f64, max_iters: usize, rtol: f64) -> SolveResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "cg: dimension mismatch");
    let apply = |v: &[f64], out: &mut Vec<f64>| {
        let vm = Mat::from_vec(n, 1, v.to_vec());
        let mut av = Mat::zeros(n, 1);
        a.apply(vm.rf(), av.rm());
        out.clear();
        out.extend((0..n).map(|i| av[(i, 0)] + shift * v[i]));
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = Vec::with_capacity(n);
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs.sqrt().max(f64::MIN_POSITIVE);
    let mut iterations = 0;

    for _ in 0..max_iters {
        if rs.sqrt() <= rtol * b_norm {
            break;
        }
        iterations += 1;
        apply(&p, &mut ap);
        let denom: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if denom <= 0.0 {
            // Not SPD (or numerically indefinite): bail with best effort.
            break;
        }
        let alpha = rs / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
    }

    // True residual (not the recursive one).
    apply(&x, &mut ap);
    let mut res = 0.0;
    for i in 0..n {
        let d = b[i] - ap[i];
        res += d * d;
    }
    let relative_residual = res.sqrt() / b_norm;
    SolveResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
    }
}

/// Hutchinson stochastic trace estimator `tr(A) ≈ mean(zᵀ A z)` with
/// Rademacher probes — the "trace estimation in Bayesian optimization" use
/// case from the paper's introduction.
pub fn hutchinson_trace(a: &dyn LinOp, probes: usize, seed: u64) -> f64 {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let n = a.nrows();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = 0.0;
    let mut z = Mat::zeros(n, 1);
    let mut az = Mat::zeros(n, 1);
    for _ in 0..probes.max(1) {
        for i in 0..n {
            z[(i, 0)] = if rng.random::<bool>() { 1.0 } else { -1.0 };
        }
        a.apply(z.rf(), az.rm());
        let mut dot = 0.0;
        for i in 0..n {
            dot += z[(i, 0)] * az[(i, 0)];
        }
        acc += dot;
    }
    acc / probes.max(1) as f64
}

/// Estimate the largest eigenvalue of an SPD operator by power iteration
/// (Rayleigh quotient).
pub fn power_eig_max(a: &dyn LinOp, iters: usize, seed: u64) -> f64 {
    let n = a.nrows();
    let mut v = crate::rand::gaussian_mat(n, 1, seed);
    let nv = v.norm_fro();
    v.scale(1.0 / nv.max(f64::MIN_POSITIVE));
    let mut av = Mat::zeros(n, 1);
    let mut lambda = 0.0;
    for _ in 0..iters.max(1) {
        a.apply(v.rf(), av.rm());
        let mut dot = 0.0;
        for i in 0..n {
            dot += v[(i, 0)] * av[(i, 0)];
        }
        lambda = dot;
        let nav = av.norm_fro();
        if nav == 0.0 {
            return 0.0;
        }
        for i in 0..n {
            v[(i, 0)] = av[(i, 0)] / nav;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemv, matmul, Op};
    use crate::op::DenseOp;
    use crate::rand::gaussian_mat;

    fn spd_op(n: usize, seed: u64) -> DenseOp {
        let g = gaussian_mat(n, n, seed);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        DenseOp::new(a)
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 40;
        let op = spd_op(n, 1);
        let x0 = gaussian_mat(n, 1, 2);
        let mut b = vec![0.0; n];
        gemv(Op::NoTrans, 1.0, op.a.rf(), x0.col(0), 0.0, &mut b);
        let res = cg(&op, &b, 0.0, 200, 1e-12);
        assert!(res.converged, "residual {}", res.relative_residual);
        for i in 0..n {
            assert!((res.x[i] - x0[(i, 0)]).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_with_shift() {
        let n = 30;
        let op = spd_op(n, 3);
        let shift = 2.5;
        let x0 = gaussian_mat(n, 1, 4);
        let mut b = vec![0.0; n];
        gemv(Op::NoTrans, 1.0, op.a.rf(), x0.col(0), 0.0, &mut b);
        for i in 0..n {
            b[i] += shift * x0[(i, 0)];
        }
        let res = cg(&op, &b, shift, 200, 1e-12);
        assert!(res.converged);
        for i in 0..n {
            assert!((res.x[i] - x0[(i, 0)]).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_reports_nonconvergence_budget() {
        let n = 50;
        let op = spd_op(n, 5);
        let b = vec![1.0; n];
        let res = cg(&op, &b, 0.0, 1, 1e-14);
        assert_eq!(res.iterations, 1);
        assert!(!res.converged);
    }

    #[test]
    fn hutchinson_estimates_trace() {
        let n = 60;
        let op = spd_op(n, 6);
        let exact: f64 = (0..n).map(|i| op.a[(i, i)]).sum();
        let est = hutchinson_trace(&op, 400, 7);
        assert!(
            (est - exact).abs() < 0.1 * exact,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn power_eig_close_to_norm() {
        let n = 30;
        let op = spd_op(n, 8);
        let lam = power_eig_max(&op, 100, 9);
        let nrm = crate::svd::spectral_norm(&op.a);
        assert!((lam - nrm).abs() < 0.02 * nrm, "{lam} vs {nrm}");
    }
}
