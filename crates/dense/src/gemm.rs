//! General matrix-matrix multiplication for column-major views.
//!
//! `gemm` computes `C = alpha * op(A) * op(B) + beta * C` with the four
//! transpose combinations. The kernels are written so the innermost loop
//! walks a contiguous column (axpy / dot form), which auto-vectorizes well
//! for the small-to-medium block sizes that dominate H2 workloads. The
//! batch-level parallelism lives in `h2-runtime`; a column-parallel
//! `par_gemm` is provided for the few genuinely large products (dense
//! samplers, frontal updates).

use crate::mat::{Mat, MatMut, MatRef};
use rayon::prelude::*;

/// Transpose selector, mirroring the BLAS `trans` argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    NoTrans,
    Trans,
}

impl Op {
    /// Rows of `op(A)` given the storage shape of `A`.
    pub fn rows_of(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.rows(),
            Op::Trans => a.cols(),
        }
    }

    /// Columns of `op(A)` given the storage shape of `A`.
    pub fn cols_of(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.cols(),
            Op::Trans => a.rows(),
        }
    }
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes are checked: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
pub fn gemm(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    let k2 = tb.rows_of(b);
    let n = tb.cols_of(b);
    assert_eq!(k, k2, "gemm: inner dimension mismatch ({k} vs {k2})");
    assert_eq!(c.rows(), m, "gemm: C row mismatch");
    assert_eq!(c.cols(), n, "gemm: C col mismatch");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill(0.0);
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Op::NoTrans, Op::NoTrans) => {
            // C[:,j] += alpha * B[l,j] * A[:,l]  (axpy over contiguous columns)
            for j in 0..n {
                let bj = b.col(j);
                let cj = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * bj[l];
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::NoTrans) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j])
            for j in 0..n {
                let bj = b.col(j);
                for i in 0..m {
                    let ai = a.col(i);
                    let mut s = 0.0;
                    for l in 0..k {
                        s += ai[l] * bj[l];
                    }
                    *c.at_mut(i, j) += alpha * s;
                }
            }
        }
        (Op::NoTrans, Op::Trans) => {
            // C[:,j] += alpha * B[j,l] * A[:,l]
            for j in 0..n {
                let cj = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * b.at(j, l);
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::Trans) => {
            // C[i,j] += alpha * sum_l A[l,i] * B[j,l]
            for j in 0..n {
                for i in 0..m {
                    let ai = a.col(i);
                    let mut s = 0.0;
                    for l in 0..k {
                        s += ai[l] * b.at(j, l);
                    }
                    *c.at_mut(i, j) += alpha * s;
                }
            }
        }
    }
}

/// Convenience: allocate and return `op(A) * op(B)`.
pub fn matmul(ta: Op, tb: Op, a: MatRef<'_>, b: MatRef<'_>) -> Mat {
    let mut c = Mat::zeros(ta.rows_of(a), tb.cols_of(b));
    gemm(ta, tb, 1.0, a, b, 0.0, c.rm());
    c
}

/// Column-parallel GEMM for large products (`C = alpha op(A) op(B) + beta C`).
///
/// Splits the columns of `C` into contiguous chunks processed by rayon; each
/// chunk runs the sequential kernel. Used by dense samplers and the frontal
/// Schur updates where a single product is the whole workload.
pub fn par_gemm(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    let n = c.cols();
    let m = c.rows();
    let work = m.saturating_mul(n).saturating_mul(ta.cols_of(a));
    if work < 1 << 18 || n < 4 {
        gemm(ta, tb, alpha, a, b, beta, c);
        return;
    }
    let nchunks = rayon::current_num_threads().max(1) * 4;
    let chunk = n.div_ceil(nchunks).max(1);

    // Partition C into disjoint column views, pairing each with the matching
    // columns of op(B).
    let mut tasks: Vec<(usize, MatMut<'_>)> = Vec::new();
    let mut rest = c;
    let mut j0 = 0;
    while j0 < n {
        let w = chunk.min(n - j0);
        let (head, tail) = rest.split_cols(w);
        tasks.push((j0, head));
        rest = tail;
        j0 += w;
    }
    tasks.into_par_iter().for_each(|(j0, cj)| {
        let w = cj.cols();
        let bj = match tb {
            Op::NoTrans => b.view(0, j0, b.rows(), w),
            Op::Trans => b.view(j0, 0, w, b.cols()),
        };
        gemm(ta, tb, alpha, a, bj, beta, cj);
    });
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y`.
pub fn gemv(ta: Op, alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    assert_eq!(x.len(), k, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    if beta != 1.0 {
        if beta == 0.0 {
            y.fill(0.0);
        } else {
            for v in y.iter_mut() {
                *v *= beta;
            }
        }
    }
    match ta {
        Op::NoTrans => {
            for l in 0..k {
                let s = alpha * x[l];
                if s != 0.0 {
                    for (yi, ai) in y.iter_mut().zip(a.col(l)) {
                        *yi += s * ai;
                    }
                }
            }
        }
        Op::Trans => {
            for (i, yi) in y.iter_mut().enumerate() {
                let ai = a.col(i);
                let mut s = 0.0;
                for l in 0..k {
                    s += ai[l] * x[l];
                }
                *yi += alpha * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::gaussian_mat;

    fn naive(ta: Op, tb: Op, a: &Mat, b: &Mat) -> Mat {
        let ar = ta.rows_of(a.rf());
        let ak = ta.cols_of(a.rf());
        let bn = tb.cols_of(b.rf());
        let get_a = |i: usize, l: usize| match ta {
            Op::NoTrans => a[(i, l)],
            Op::Trans => a[(l, i)],
        };
        let get_b = |l: usize, j: usize| match tb {
            Op::NoTrans => b[(l, j)],
            Op::Trans => b[(j, l)],
        };
        Mat::from_fn(ar, bn, |i, j| {
            (0..ak).map(|l| get_a(i, l) * get_b(l, j)).sum()
        })
    }

    #[test]
    fn all_transpose_combos_match_naive() {
        for (m, k, n) in [(3, 4, 5), (1, 7, 2), (6, 1, 3), (5, 5, 5)] {
            for ta in [Op::NoTrans, Op::Trans] {
                for tb in [Op::NoTrans, Op::Trans] {
                    let a = match ta {
                        Op::NoTrans => gaussian_mat(m, k, 1),
                        Op::Trans => gaussian_mat(k, m, 1),
                    };
                    let b = match tb {
                        Op::NoTrans => gaussian_mat(k, n, 2),
                        Op::Trans => gaussian_mat(n, k, 2),
                    };
                    let c = matmul(ta, tb, a.rf(), b.rf());
                    let want = naive(ta, tb, &a, &b);
                    let mut diff = c.clone();
                    diff.axpy(-1.0, &want);
                    assert!(diff.norm_max() < 1e-12, "mismatch for {ta:?},{tb:?}");
                }
            }
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = gaussian_mat(4, 3, 3);
        let b = gaussian_mat(3, 2, 4);
        let mut c = gaussian_mat(4, 2, 5);
        let c0 = c.clone();
        gemm(Op::NoTrans, Op::NoTrans, 2.0, a.rf(), b.rf(), 0.5, c.rm());
        let mut want = matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf());
        want.scale(2.0);
        want.axpy(0.5, &c0);
        let mut diff = c;
        diff.axpy(-1.0, &want);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn gemm_on_views() {
        let a = gaussian_mat(8, 8, 6);
        let b = gaussian_mat(8, 8, 7);
        let mut c = Mat::zeros(3, 4);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            a.view(2, 1, 3, 5),
            b.view(3, 2, 5, 4),
            0.0,
            c.rm(),
        );
        let asub = a.view(2, 1, 3, 5).to_mat();
        let bsub = b.view(3, 2, 5, 4).to_mat();
        let want = matmul(Op::NoTrans, Op::NoTrans, asub.rf(), bsub.rf());
        let mut diff = c;
        diff.axpy(-1.0, &want);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn par_gemm_matches_gemm() {
        let a = gaussian_mat(64, 96, 8);
        let b = gaussian_mat(96, 200, 9);
        let mut c1 = Mat::zeros(64, 200);
        let mut c2 = Mat::zeros(64, 200);
        gemm(Op::NoTrans, Op::NoTrans, 1.5, a.rf(), b.rf(), 0.0, c1.rm());
        par_gemm(Op::NoTrans, Op::NoTrans, 1.5, a.rf(), b.rf(), 0.0, c2.rm());
        let mut diff = c1;
        diff.axpy(-1.0, &c2);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = gaussian_mat(5, 4, 10);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let mut y = vec![1.0; 5];
        gemv(Op::NoTrans, 2.0, a.rf(), &x, 3.0, &mut y);
        let xm = Mat::from_vec(4, 1, x);
        let mut want = Mat::from_vec(5, 1, vec![1.0; 5]);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            2.0,
            a.rf(),
            xm.rf(),
            3.0,
            want.rm(),
        );
        for i in 0..5 {
            assert!((y[i] - want[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 2);
        let mut c = Mat::zeros(0, 2);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c.rm());
        let a2 = Mat::zeros(2, 0);
        let b2 = Mat::zeros(0, 3);
        let mut c2 = Mat::from_fn(2, 3, |_, _| 7.0);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            a2.rf(),
            b2.rf(),
            0.0,
            c2.rm(),
        );
        assert_eq!(c2.norm_max(), 0.0, "k=0 with beta=0 must clear C");
    }
}
