//! Column-pivoted QR (LAPACK `geqp3`-style, unblocked) and the
//! interpolative decomposition (ID) built on it.
//!
//! The row ID is the heart of the paper's skeletonization step
//! (Algorithm 1, lines 16/34): given local samples `Y_loc`, compute
//! `Y_loc ≈ U · Y_loc(J, :)` where `J` are the selected (skeleton) rows and
//! `U` is the interpolation matrix with `U(J,:) = I`. It is obtained from a
//! column-pivoted QR of `Y_loc^T`: the pivot columns are the skeleton rows
//! and `T = R1^{-1} R2` is the interpolation coefficient block (eq. (3) of
//! the paper).

use crate::mat::Mat;
use crate::tri::{solve_triangular_left, Diag, Triangle};

/// Result of a column-pivoted QR: packed factor, `tau`, and pivot order
/// (`jpvt[k]` = original index of the k-th pivoted column).
pub struct Cpqr {
    pub a: Mat,
    pub tau: Vec<f64>,
    pub jpvt: Vec<usize>,
}

/// Factor `a` with column pivoting. Returns the packed factor, pivots, and
/// the diagonal magnitudes of R (non-increasing, used for rank decisions).
pub fn cpqr_factor(mut a: Mat) -> (Cpqr, Vec<usize>, Vec<f64>) {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    let mut jpvt: Vec<usize> = (0..n).collect();

    // Column norms, updated by downdating with periodic recomputation
    // (the classical geqp3 safeguard against cancellation).
    let mut norms: Vec<f64> = (0..n).map(|j| norm2(a.col(j))).collect();
    let mut norms_ref = norms.clone();

    for k in 0..kmax {
        // Pivot: swap the column with the largest residual norm into place.
        let (piv, _) = norms
            .iter()
            .enumerate()
            .skip(k)
            .fold(
                (k, -1.0),
                |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) },
            );
        if piv != k {
            swap_cols(&mut a, k, piv);
            jpvt.swap(k, piv);
            norms.swap(k, piv);
            norms_ref.swap(k, piv);
        }

        // Householder reflector for column k, rows k..m.
        let (t, beta) = house_gen_col(&mut a, k);
        tau[k] = t;

        // Apply to trailing columns and downdate their norms.
        if t != 0.0 {
            for j in (k + 1)..n {
                let mut s = a[(k, j)];
                for i in (k + 1)..m {
                    s += a[(i, k)] * a[(i, j)];
                }
                s *= t;
                a[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = a[(i, k)];
                    a[(i, j)] -= s * vik;
                }
            }
        }
        a[(k, k)] = beta;

        for j in (k + 1)..n {
            if norms[j] != 0.0 {
                let temp = (a[(k, j)] / norms[j]).abs();
                let temp = (1.0 - temp * temp).max(0.0);
                let temp2 = norms[j] / norms_ref[j];
                if temp * temp2 * temp2 <= 1e-14 {
                    // Downdate lost accuracy: recompute from scratch.
                    let mut s = 0.0;
                    for i in (k + 1)..m {
                        s += a[(i, j)] * a[(i, j)];
                    }
                    norms[j] = s.sqrt();
                    norms_ref[j] = norms[j];
                } else {
                    norms[j] *= temp.sqrt();
                }
            }
        }
    }

    let rdiag: Vec<f64> = (0..kmax).map(|i| a[(i, i)].abs()).collect();
    let pv = jpvt.clone();
    (Cpqr { a, tau, jpvt }, pv, rdiag)
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn swap_cols(a: &mut Mat, i: usize, j: usize) {
    for r in 0..a.rows() {
        let t = a[(r, i)];
        a[(r, i)] = a[(r, j)];
        a[(r, j)] = t;
    }
}

fn house_gen_col(a: &mut Mat, k: usize) -> (f64, f64) {
    let m = a.rows();
    let alpha = a[(k, k)];
    let mut xnorm2 = 0.0;
    for i in (k + 1)..m {
        xnorm2 += a[(i, k)] * a[(i, k)];
    }
    if xnorm2 == 0.0 {
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in (k + 1)..m {
        a[(i, k)] *= scale;
    }
    (tau, beta)
}

/// Truncation rule for rank selection from the CPQR diagonal.
#[derive(Clone, Copy, Debug)]
pub enum Truncation {
    /// Keep `|R_kk| > tol` (absolute threshold).
    Absolute(f64),
    /// Keep `|R_kk| > tol * |R_00|` (relative threshold).
    Relative(f64),
    /// Fixed rank (clamped to `min(m, n)`).
    Rank(usize),
}

/// Select the numerical rank from the non-increasing `|diag(R)|` sequence.
pub fn select_rank(rdiag: &[f64], rule: Truncation) -> usize {
    match rule {
        Truncation::Absolute(tol) => rdiag.iter().take_while(|&&d| d > tol).count(),
        Truncation::Relative(tol) => {
            let r0 = rdiag.first().copied().unwrap_or(0.0);
            rdiag.iter().take_while(|&&d| d > tol * r0).count()
        }
        Truncation::Rank(k) => k.min(rdiag.len()),
    }
}

/// A column interpolative decomposition `A ≈ A(:, skel) * interp` where
/// `interp = [I T] P^T` (so `interp(:, skel) = I`).
pub struct ColId {
    /// Selected (skeleton) column indices, in pivot order.
    pub skel: Vec<usize>,
    /// Interpolation coefficients `T` (`k x (n-k)`), mapping skeleton to the
    /// redundant columns in pivot order.
    pub t: Mat,
    /// Full pivot order (first `k` entries are `skel`).
    pub jpvt: Vec<usize>,
    /// `|diag(R)|` of the underlying CPQR.
    pub rdiag: Vec<f64>,
}

impl ColId {
    pub fn rank(&self) -> usize {
        self.skel.len()
    }

    /// Dense interpolation matrix `X` (`k x n`) with `A ≈ A(:,skel) X`,
    /// `X(:, skel) = I`.
    pub fn interp_matrix(&self, n: usize) -> Mat {
        let k = self.rank();
        let mut x = Mat::zeros(k, n);
        for (p, &col) in self.jpvt.iter().enumerate() {
            if p < k {
                x[(p, col)] = 1.0;
            } else {
                for i in 0..k {
                    x[(i, col)] = self.t[(i, p - k)];
                }
            }
        }
        x
    }
}

/// Compute a column ID of `a` with the given truncation rule.
///
/// A numerically zero input yields rank 0 (empty skeleton) — the case of a
/// cluster whose entire far field vanishes.
pub fn col_id(a: Mat, rule: Truncation) -> ColId {
    let n = a.cols();
    let (f, jpvt, rdiag) = cpqr_factor(a);
    let k = select_rank(&rdiag, rule).min(rdiag.len());
    // T = R1^{-1} R2 with R1 = R[0..k, 0..k], R2 = R[0..k, k..n].
    let mut r2 = Mat::from_fn(
        k,
        n - k,
        |i, j| if i <= (j + k) { f.a[(i, j + k)] } else { 0.0 },
    );
    let r1 = Mat::from_fn(k, k, |i, j| if j >= i { f.a[(i, j)] } else { 0.0 });
    if k > 0 && n > k {
        solve_triangular_left(Triangle::Upper, Diag::NonUnit, r1.rf(), &mut r2.rm());
    }
    ColId {
        skel: jpvt[..k].to_vec(),
        t: r2,
        jpvt,
        rdiag,
    }
}

/// A row interpolative decomposition `A ≈ U * A(skel, :)` with `U(skel,:) = I`.
pub struct RowId {
    /// Selected (skeleton) row indices, in pivot order.
    pub skel: Vec<usize>,
    /// Interpolation matrix `U` (`m x k`), rows permuted back to the original
    /// order of `A`.
    pub u: Mat,
    /// `|diag(R)|` of the underlying CPQR of `A^T`.
    pub rdiag: Vec<f64>,
}

impl RowId {
    pub fn rank(&self) -> usize {
        self.skel.len()
    }
}

/// Compute a row ID of `a` (via a column ID of `a^T`).
///
/// This is the `batchedID` building block of Algorithm 1: for leaf nodes `U`
/// is the cluster basis `U_τ`; for inner nodes the two row blocks of `U` are
/// the transfer matrices `E_{ν1}, E_{ν2}`.
pub fn row_id(a: &Mat, rule: Truncation) -> RowId {
    let m = a.rows();
    let cid = col_id(a.transpose(), rule);
    let k = cid.rank();
    // U = P [I; T^T]: row jpvt[p] of U is e_p for p < k, else T(:, p-k)^T.
    let mut u = Mat::zeros(m, k);
    for (p, &row) in cid.jpvt.iter().enumerate() {
        if p < k {
            u[(row, p)] = 1.0;
        } else {
            for i in 0..k {
                u[(row, i)] = cid.t[(i, p - k)];
            }
        }
    }
    RowId {
        skel: cid.skel,
        u,
        rdiag: cid.rdiag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::rand::{gaussian_mat, random_low_rank};

    #[test]
    fn cpqr_reconstructs_with_pivots() {
        let a = gaussian_mat(8, 6, 21);
        let (f, jpvt, _) = cpqr_factor(a.clone());
        // Rebuild Q from the packed factor by applying reflectors to I.
        let qf = crate::qr::QrFactor {
            a: f.a.clone(),
            tau: f.tau.clone(),
        };
        let q = qf.q_thin();
        let r = qf.r();
        let qr = matmul(Op::NoTrans, Op::NoTrans, q.rf(), r.rf());
        // qr should equal A(:, jpvt).
        let ap = a.select_cols(&jpvt);
        let mut d = qr;
        d.axpy(-1.0, &ap);
        assert!(d.norm_max() < 1e-12);
    }

    #[test]
    fn rdiag_nonincreasing() {
        let a = gaussian_mat(30, 20, 22);
        let (_, _, rd) = cpqr_factor(a);
        for w in rd.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "rdiag must be (nearly) non-increasing");
        }
    }

    #[test]
    fn col_id_reconstructs_low_rank() {
        let a = random_low_rank(20, 30, 6, 0.4, 23);
        let id = col_id(a.clone(), Truncation::Relative(1e-12));
        assert!(id.rank() >= 6 && id.rank() <= 10, "rank {}", id.rank());
        let x = id.interp_matrix(30);
        let askel = a.select_cols(&id.skel);
        let rec = matmul(Op::NoTrans, Op::NoTrans, askel.rf(), x.rf());
        let mut d = rec;
        d.axpy(-1.0, &a);
        assert!(d.norm_max() < 1e-9 * a.norm_max());
    }

    #[test]
    fn row_id_reconstructs_and_has_identity_on_skeleton() {
        let a = random_low_rank(25, 14, 5, 0.3, 24);
        let id = row_id(&a, Truncation::Relative(1e-12));
        let k = id.rank();
        // U(skel, :) == I.
        for (p, &row) in id.skel.iter().enumerate() {
            for c in 0..k {
                let want = if c == p { 1.0 } else { 0.0 };
                assert!((id.u[(row, c)] - want).abs() < 1e-14);
            }
        }
        let askel = a.select_rows(&id.skel);
        let rec = matmul(Op::NoTrans, Op::NoTrans, id.u.rf(), askel.rf());
        let mut d = rec;
        d.axpy(-1.0, &a);
        assert!(d.norm_max() < 1e-9 * a.norm_max());
    }

    #[test]
    fn absolute_truncation_bounds_error() {
        let a = random_low_rank(40, 40, 20, 0.5, 25);
        let tol = 1e-4;
        let id = row_id(&a, Truncation::Absolute(tol));
        let askel = a.select_rows(&id.skel);
        let rec = matmul(Op::NoTrans, Op::NoTrans, id.u.rf(), askel.rf());
        let mut d = rec;
        d.axpy(-1.0, &a);
        // ID error is bounded by a modest polynomial factor times the
        // discarded R diagonal.
        assert!(d.norm_fro() < 100.0 * tol, "err {}", d.norm_fro());
    }

    #[test]
    fn fixed_rank_truncation() {
        let a = gaussian_mat(12, 12, 26);
        let id = row_id(&a, Truncation::Rank(4));
        assert_eq!(id.rank(), 4);
    }

    #[test]
    fn select_rank_rules() {
        let rd = [10.0, 5.0, 1.0, 1e-8];
        assert_eq!(select_rank(&rd, Truncation::Absolute(1e-6)), 3);
        assert_eq!(select_rank(&rd, Truncation::Relative(1e-3)), 3);
        assert_eq!(select_rank(&rd, Truncation::Relative(0.2)), 2);
        assert_eq!(select_rank(&rd, Truncation::Rank(10)), 4);
    }
}
