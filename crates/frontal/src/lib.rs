//! # h2-frontal
//!
//! Sparse multifrontal substrate for the paper's frontal-matrix experiment
//! (§V.A, third application; Fig. 6(b)):
//!
//! * 7-point 3-D Poisson assembly on regular grids ([`sparse`]),
//! * geometric nested dissection with plane separators and a real
//!   multifrontal Cholesky with extend-add ([`multifrontal`]) — exact top
//!   fronts for small grids,
//! * a Green's-function surrogate for paper-scale separator sizes
//!   ([`surrogate`], substitution documented in DESIGN.md §2).

pub mod multifrontal;
pub mod sparse;
pub mod surrogate;

pub use multifrontal::{
    multifrontal_cholesky, nested_dissection, poisson_top_front, MultifrontalResult, NdNode, NdTree,
};
pub use sparse::{poisson3d, CsrMatrix, Grid3};
pub use surrogate::green_surrogate_front;

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{relative_error_2, DenseOp};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    /// End-to-end: extract an exact Poisson front and compress it with the
    /// sketching construction (the Fig. 6(b) pipeline at test scale).
    #[test]
    fn poisson_front_compresses_with_sketching() {
        let (front, pts) = poisson_top_front(12, 32); // 144-point separator
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        // permute the front into tree order
        let n = front.rows();
        let permuted = h2_dense::Mat::from_fn(n, n, |i, j| front[(tree.perm[i], tree.perm[j])]);
        let op = DenseOp::new(permuted);
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 1.0 }));
        let rt = h2_runtime_shim::runtime();
        let cfg = h2_core::SketchConfig {
            tol: 1e-8,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = h2_core::sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
        let e = relative_error_2(&op, &h2, 20, 140);
        assert!(e < 1e-6, "front compression rel err {e}");
    }

    mod h2_runtime_shim {
        pub fn runtime() -> h2_runtime::Runtime {
            h2_runtime::Runtime::parallel()
        }
    }
}
