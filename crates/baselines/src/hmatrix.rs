//! A non-nested H-matrix (per-block low rank) — the output format of the
//! top-down peeling baselines.
//!
//! Unlike the H2 format, every admissible block `(s, t)` carries its own
//! factors `K(I_s, I_t) ≈ U_s B (U_t)^T` (independent per block, no transfer
//! matrices), giving the O(N log N) memory footprint characteristic of
//! H / HODLR codes like ButterflyPACK. Symmetric unordered-pair storage,
//! matching the rest of the workspace.

use h2_dense::{gemm, Mat, MatMut, MatRef, Op};
use h2_tree::{ClusterTree, Partition};
use std::collections::HashMap;
use std::sync::Arc;

/// One admissible low-rank block `U B V^T` (V = row interpolation of the
/// column cluster; for symmetric K it is the `U` of the mirrored block).
pub struct LowRankBlock {
    pub u: Mat,
    pub b: Mat,
    pub v: Mat,
}

impl LowRankBlock {
    pub fn rank(&self) -> usize {
        self.b.rows()
    }

    pub fn memory_bytes(&self) -> usize {
        self.u.memory_bytes() + self.b.memory_bytes() + self.v.memory_bytes()
    }
}

/// Non-nested hierarchical matrix: per-pair low-rank blocks + dense leaves.
pub struct HMatrix {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    /// Low-rank blocks keyed by unordered admissible pair (s <= t).
    pub lowrank: HashMap<(usize, usize), LowRankBlock>,
    /// Dense blocks keyed by unordered inadmissible leaf pair (s <= t).
    pub dense: HashMap<(usize, usize), Mat>,
}

impl HMatrix {
    pub fn new(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        HMatrix {
            tree,
            partition,
            lowrank: HashMap::new(),
            dense: HashMap::new(),
        }
    }

    pub fn n(&self) -> usize {
        self.tree.npoints()
    }

    pub fn memory_bytes(&self) -> usize {
        let lr: usize = self.lowrank.values().map(|b| b.memory_bytes()).sum();
        let d: usize = self.dense.values().map(|b| b.memory_bytes()).sum();
        lr + d
    }

    /// Largest low-rank block rank.
    pub fn max_rank(&self) -> usize {
        self.lowrank.values().map(|b| b.rank()).max().unwrap_or(0)
    }

    /// Apply the blocks built so far: `y += K_partial x` (tree coordinates).
    /// Used both as the final matvec and for peeling subtraction.
    ///
    /// Work is grouped by output row cluster so the per-node contributions
    /// can be computed in parallel and written to disjoint row ranges.
    pub fn apply_partial(&self, x: MatRef<'_>, y: &mut MatMut<'_>) {
        use rayon::prelude::*;
        let tree = &self.tree;
        let d = x.cols();

        // Row-cluster adjacency over the stored unordered pairs: each
        // ordered side (row_node, col_node, transposed?) lands in the row
        // node's task list.
        let mut tasks: std::collections::HashMap<usize, Vec<(usize, usize, bool, bool)>> =
            std::collections::HashMap::new();
        // tuple: (col_node, pair_t, mirrored, is_dense) — pair key is
        // (min, max) = (s, t); mirrored means we apply the transposed side.
        for &(s, t) in self.lowrank.keys() {
            tasks.entry(s).or_default().push((t, t, false, false));
            if s != t {
                tasks.entry(t).or_default().push((s, s, true, false));
            }
        }
        for &(s, t) in self.dense.keys() {
            tasks.entry(s).or_default().push((t, t, false, true));
            if s != t {
                tasks.entry(t).or_default().push((s, s, true, true));
            }
        }

        let contribs: Vec<(usize, Mat)> = tasks
            .par_iter()
            .map(|(&row_node, list)| {
                let (rb, re) = tree.range(row_node);
                let mut acc = Mat::zeros(re - rb, d);
                for &(col_node, _, mirrored, is_dense) in list {
                    let key = (row_node.min(col_node), row_node.max(col_node));
                    let (cb, ce) = tree.range(col_node);
                    let xt = x.view(cb, 0, ce - cb, d);
                    if is_dense {
                        let blk = &self.dense[&key];
                        let op = if mirrored { Op::Trans } else { Op::NoTrans };
                        gemm(op, Op::NoTrans, 1.0, blk.rf(), xt, 1.0, acc.rm());
                    } else {
                        let blk = &self.lowrank[&key];
                        if mirrored {
                            // y(I_t) += V B^T U^T x(I_s)
                            let utx = h2_dense::matmul(Op::Trans, Op::NoTrans, blk.u.rf(), xt);
                            let btutx =
                                h2_dense::matmul(Op::Trans, Op::NoTrans, blk.b.rf(), utx.rf());
                            gemm(
                                Op::NoTrans,
                                Op::NoTrans,
                                1.0,
                                blk.v.rf(),
                                btutx.rf(),
                                1.0,
                                acc.rm(),
                            );
                        } else {
                            // y(I_s) += U B V^T x(I_t)
                            let vtx = h2_dense::matmul(Op::Trans, Op::NoTrans, blk.v.rf(), xt);
                            let bvtx =
                                h2_dense::matmul(Op::NoTrans, Op::NoTrans, blk.b.rf(), vtx.rf());
                            gemm(
                                Op::NoTrans,
                                Op::NoTrans,
                                1.0,
                                blk.u.rf(),
                                bvtx.rf(),
                                1.0,
                                acc.rm(),
                            );
                        }
                    }
                }
                (rb, acc)
            })
            .collect();
        for (rb, acc) in contribs {
            let mut ys = y.rb_mut().into_view(rb, 0, acc.rows(), d);
            ys.axpy(1.0, acc.rf());
        }
    }
}

impl h2_dense::LinOp for HMatrix {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        y.fill(0.0);
        self.apply_partial(x, &mut y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{gaussian_mat, LinOp};
    use h2_tree::{Admissibility, ClusterTree};

    #[test]
    fn partial_apply_matches_dense_assembly() {
        let pts = h2_tree::uniform_cube(64, 7);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let mut h = HMatrix::new(tree.clone(), part);

        // One dense diagonal leaf block and one low-rank sibling block.
        let leaf0 = tree.level(tree.leaf_level()).next().unwrap();
        let (b0, e0) = tree.range(leaf0);
        let m0 = e0 - b0;
        h.dense.insert((leaf0, leaf0), gaussian_mat(m0, m0, 1));
        let (s, t) = (1usize, 2usize); // root's children
        let (sb, se) = tree.range(s);
        let (tb, te) = tree.range(t);
        let (ms, mt, k) = (se - sb, te - tb, 3);
        h.lowrank.insert(
            (s, t),
            LowRankBlock {
                u: gaussian_mat(ms, k, 2),
                b: gaussian_mat(k, k, 3),
                v: gaussian_mat(mt, k, 4),
            },
        );

        // Dense assembly of the same operator.
        let mut dense = Mat::zeros(64, 64);
        {
            let d = &h.dense[&(leaf0, leaf0)];
            for i in 0..m0 {
                for j in 0..m0 {
                    dense[(b0 + i, b0 + j)] = d[(i, j)];
                }
            }
            let blk = &h.lowrank[&(s, t)];
            let ub = h2_dense::matmul(Op::NoTrans, Op::NoTrans, blk.u.rf(), blk.b.rf());
            let full = h2_dense::matmul(Op::NoTrans, Op::Trans, ub.rf(), blk.v.rf());
            for i in 0..ms {
                for j in 0..mt {
                    dense[(sb + i, tb + j)] = full[(i, j)];
                    dense[(tb + j, sb + i)] = full[(i, j)];
                }
            }
        }

        let x = gaussian_mat(64, 2, 5);
        let y = h.apply_mat(&x);
        let want = h2_dense::matmul(Op::NoTrans, Op::NoTrans, dense.rf(), x.rf());
        let mut diff = y;
        diff.axpy(-1.0, &want);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn memory_counts_blocks() {
        let pts = h2_tree::uniform_cube(32, 8);
        let tree = Arc::new(ClusterTree::build(&pts, 8));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let mut h = HMatrix::new(tree, part);
        h.dense.insert((3, 3), Mat::zeros(8, 8));
        assert_eq!(h.memory_bytes(), 64 * 8);
        assert_eq!(h.max_rank(), 0);
    }
}
