//! Property-based structural invariants of the clustering substrate, over
//! every geometry generator (including the adversarial ones).

use h2_tree::{
    anisotropic_box, annulus, clustered_blobs, helix, uniform_cube, uniform_sphere, Admissibility,
    BBox, ClusterTree, Partition,
};
use proptest::prelude::*;

fn any_geometry() -> impl Strategy<Value = Vec<[f64; 3]>> {
    (0usize..6, 30usize..400, 0u64..1000).prop_map(|(kind, n, seed)| match kind {
        0 => uniform_cube(n, seed),
        1 => uniform_sphere(n, seed),
        2 => clustered_blobs(n, 1 + (seed % 7) as usize, 0.02, seed),
        3 => annulus(n, 0.3, 1.0, seed),
        4 => anisotropic_box(n, [50.0, 1.0, 0.02], seed),
        _ => helix(n, 4.0, 1.0, 3.0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cluster tree is a permutation: every input point appears exactly
    /// once, level ranges are contiguous, leaf sizes are bounded.
    #[test]
    fn tree_structure_valid(pts in any_geometry(), leaf in 2usize..48) {
        let tree = ClusterTree::build(&pts, leaf);
        tree.validate().unwrap();
        prop_assert_eq!(tree.npoints(), pts.len());
        prop_assert!(tree.max_leaf_size() <= leaf.max(1) * 2,
            "leaf size {} vs requested {}", tree.max_leaf_size(), leaf);
        // The permutation is a bijection.
        let mut seen = vec![false; pts.len()];
        for &p in &tree.perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        // Each node's bbox contains its points.
        for c in &tree.nodes {
            let b = &c.bbox;
            for i in c.begin..c.end {
                for d in 0..3 {
                    prop_assert!(tree.points[i][d] >= b.min[d] - 1e-12);
                    prop_assert!(tree.points[i][d] <= b.max[d] + 1e-12);
                }
            }
        }
    }

    /// Partitions tile the matrix exactly once and are symmetric, for any
    /// geometry and admissibility parameter.
    #[test]
    fn partition_tiles_matrix(pts in any_geometry(), eta in 0.25f64..1.5) {
        let tree = ClusterTree::build(&pts, 16);
        let part = Partition::build(&tree, Admissibility::Strong { eta });
        prop_assert!(part.is_complete(&tree));
        prop_assert!(part.is_symmetric());
        let weak = Partition::build(&tree, Admissibility::Weak);
        prop_assert!(weak.is_complete(&tree));
        prop_assert!(weak.is_symmetric());
    }

    /// Smaller eta (stronger admissibility) never shrinks the near field.
    #[test]
    fn near_field_monotone_in_eta(pts in any_geometry()) {
        let tree = ClusterTree::build(&pts, 16);
        let strong = Partition::build(&tree, Admissibility::Strong { eta: 0.4 });
        let loose = Partition::build(&tree, Admissibility::Strong { eta: 1.2 });
        prop_assert!(strong.near_count(&tree) >= loose.near_count(&tree),
            "eta=0.4 near {} < eta=1.2 near {}",
            strong.near_count(&tree), loose.near_count(&tree));
    }

    /// Admissible pairs genuinely satisfy the distance condition (eq. (1)).
    #[test]
    fn far_pairs_satisfy_condition(pts in any_geometry(), eta in 0.3f64..1.2) {
        let tree = ClusterTree::build(&pts, 16);
        let part = Partition::build(&tree, Admissibility::Strong { eta });
        for (s, list) in part.far_of.iter().enumerate() {
            for &t in list {
                let bs = &tree.nodes[s].bbox;
                let bt = &tree.nodes[t].bbox;
                let d = 0.5 * (bs.diameter() + bt.diameter());
                let dist = bs.distance(bt);
                prop_assert!(dist > 0.0 && d <= eta * dist + 1e-12,
                    "inadmissible far pair ({s},{t}): d={d}, dist={dist}");
            }
        }
    }

    /// The weak partition has the HSS shape: every node's far list is
    /// exactly its sibling, and near pairs are only the leaf diagonal.
    #[test]
    fn weak_partition_is_hss(pts in any_geometry()) {
        let tree = ClusterTree::build(&pts, 16);
        let part = Partition::build(&tree, Admissibility::Weak);
        for (s, c) in tree.nodes.iter().enumerate() {
            if let Some(parent) = c.parent {
                let (c1, c2) = tree.nodes[parent].children.unwrap();
                let sibling = if s == c1 { c2 } else { c1 };
                prop_assert_eq!(&part.far_of[s], &vec![sibling]);
            } else {
                prop_assert!(part.far_of[s].is_empty());
            }
        }
        for s in tree.level(tree.leaf_level()) {
            prop_assert_eq!(&part.near_of[s], &vec![s]);
        }
    }

    /// bbox distance is a metric-compatible lower bound: dist(A,B) <=
    /// |a - b| for any member points.
    #[test]
    fn bbox_distance_lower_bounds_point_distance(pts in any_geometry()) {
        if pts.len() < 4 {
            return Ok(());
        }
        let half = pts.len() / 2;
        let a = BBox::of_points(&pts[..half]);
        let b = BBox::of_points(&pts[half..]);
        let d = a.distance(&b);
        for p in &pts[..half] {
            for q in &pts[half..] {
                prop_assert!(d <= h2_tree::dist(p, q) + 1e-12);
            }
        }
    }
}

/// Csp is bounded by a geometry constant independent of N (the paper's
/// sparsity-constant claim, §II.A) — deterministic sweep over sizes.
#[test]
fn csp_saturates_with_n() {
    let csp_at = |n: usize| {
        let pts = uniform_cube(n, 42);
        let tree = ClusterTree::build(&pts, 32);
        let part = Partition::build(&tree, Admissibility::Strong { eta: 0.7 });
        (0..tree.nlevels())
            .map(|l| part.csp_far(&tree, l))
            .chain([part.csp_near(&tree)])
            .max()
            .unwrap()
    };
    let c1 = csp_at(2000);
    let c2 = csp_at(8000);
    // Csp grows toward geometric saturation but must not scale with N:
    // quadrupling N must not quadruple Csp.
    assert!(c2 < 4 * c1.max(8), "Csp {c1} -> {c2} scales with N");
}
