//! Entry and sub-block extraction from an H2 representation, side-generic.
//!
//! The low-rank-update experiment (paper §V.A, third application) needs an
//! entry evaluation function *for an existing H2 matrix*: `batchedGen` must
//! produce `D` and `B` blocks of the recompression from the compressed
//! representation itself. For an index pair `(i, j)` the owning block of the
//! matrix tree is either a dense leaf block (direct lookup) or an admissible
//! block `(s, t)` at some level, where the value is
//! `u_s(i, :) · B_{s,t} · v_t(j, :)ᵀ` with `u_s(i, :)` a row of the
//! *accumulated* row-side basis and `v_t(j, :)` a row of the accumulated
//! column-side basis — computed by climbing the transfer matrices. For
//! symmetric matrices both sides read the same basis tree.

use crate::format::H2Matrix;
use h2_dense::{gemm, matmul, EntryAccess, Mat, MatMut, Op};
use h2_tree::ClusterTree;

/// Rows of an accumulated nested basis for a subset `idx` of cluster `s`.
///
/// At a leaf these are rows of the explicit basis; at an inner node, the
/// children's accumulated rows multiplied by the transfer slices (the
/// nested-basis property, eq. (2)). Works on either basis side.
pub(crate) fn accumulated_basis_rows(
    tree: &ClusterTree,
    basis: &[Mat],
    s: usize,
    idx: &[usize],
) -> Mat {
    let k = basis[s].cols();
    if idx.is_empty() {
        return Mat::zeros(0, k);
    }
    if tree.level_of(s) == tree.leaf_level() {
        let (b, _) = tree.range(s);
        return Mat::from_fn(idx.len(), k, |r, c| basis[s][(idx[r] - b, c)]);
    }
    let (c1, c2) = tree.nodes[s].children.unwrap();
    let split = tree.nodes[c1].end;
    // Partition idx between the children, tracking original positions.
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut pos_left = Vec::new();
    let mut pos_right = Vec::new();
    for (p, &i) in idx.iter().enumerate() {
        if i < split {
            left.push(i);
            pos_left.push(p);
        } else {
            right.push(i);
            pos_right.push(p);
        }
    }
    let k1 = basis[c1].cols();
    let e1 = basis[s].view(0, 0, k1, k);
    let e2 = basis[s].view(k1, 0, basis[s].rows() - k1, k);
    let mut out = Mat::zeros(idx.len(), k);
    for (child, ids, pos, e) in [(c1, &left, &pos_left, e1), (c2, &right, &pos_right, e2)] {
        if ids.is_empty() {
            continue;
        }
        let rows_c = accumulated_basis_rows(tree, basis, child, ids);
        let mut prod = Mat::zeros(ids.len(), k);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            rows_c.rf(),
            e,
            0.0,
            prod.rm(),
        );
        for (r, &p) in pos.iter().enumerate() {
            for c in 0..k {
                out[(p, c)] = prod[(r, c)];
            }
        }
    }
    out
}

impl H2Matrix {
    /// Rows of the accumulated *row-side* basis `U_s` for a subset `idx` of
    /// the cluster `s` (global permuted indices, each in `range(s)`). Shape
    /// `|idx| x k_s`.
    pub fn basis_rows(&self, s: usize, idx: &[usize]) -> Mat {
        accumulated_basis_rows(&self.tree, &self.basis, s, idx)
    }

    /// Rows of the accumulated *column-side* basis `V_s` (the row side when
    /// symmetric).
    pub fn col_basis_rows(&self, s: usize, idx: &[usize]) -> Mat {
        accumulated_basis_rows(&self.tree, self.col_basis(), s, idx)
    }

    /// Extract the sub-block `K(rows, cols)` (global permuted indices) by
    /// recursive descent through the matrix tree.
    pub fn extract_block(&self, rows: &[usize], cols: &[usize]) -> Mat {
        let mut out = Mat::zeros(rows.len(), cols.len());
        self.extract_rec(
            0,
            0,
            rows,
            cols,
            &mut out,
            &mut identity_pos(rows.len()),
            &mut identity_pos(cols.len()),
        );
        out
    }

    fn extract_rec(
        &self,
        s: usize,
        t: usize,
        rows: &[usize],
        cols: &[usize],
        out: &mut Mat,
        row_pos: &mut [usize],
        col_pos: &mut [usize],
    ) {
        if rows.is_empty() || cols.is_empty() {
            return;
        }
        let tree = &self.tree;
        // Admissible pair: low-rank evaluation through the accumulated bases.
        if self.partition.far_of[s].binary_search(&t).is_ok() {
            let (blk, transposed) = self.coupling.get(s, t).expect("coupling block");
            let us = self.basis_rows(s, rows);
            let vt = self.col_basis_rows(t, cols);
            // value = U_s(rows) · op(B) · V_t(cols)ᵀ
            let op = if transposed { Op::Trans } else { Op::NoTrans };
            let tmp = matmul(op, Op::Trans, blk.rf(), vt.rf());
            let val = matmul(Op::NoTrans, Op::NoTrans, us.rf(), tmp.rf());
            for (r, &rp) in row_pos.iter().enumerate() {
                for (c, &cp) in col_pos.iter().enumerate() {
                    out[(rp, cp)] = val[(r, c)];
                }
            }
            return;
        }
        // Dense leaf pair.
        if tree.level_of(s) == tree.leaf_level() {
            debug_assert!(self.partition.near_of[s].binary_search(&t).is_ok());
            let (blk, transposed) = self.dense.get(s, t).expect("dense block");
            let (sb, _) = tree.range(s);
            let (tb, _) = tree.range(t);
            for (r, &rp) in row_pos.iter().enumerate() {
                for (c, &cp) in col_pos.iter().enumerate() {
                    let (li, lj) = (rows[r] - sb, cols[c] - tb);
                    out[(rp, cp)] = if transposed {
                        blk[(lj, li)]
                    } else {
                        blk[(li, lj)]
                    };
                }
            }
            return;
        }
        // Inadmissible inner pair: recurse on the four child pairs.
        let (s1, s2) = tree.nodes[s].children.unwrap();
        let (t1, t2) = tree.nodes[t].children.unwrap();
        let rsplit = tree.nodes[s1].end;
        let csplit = tree.nodes[t1].end;
        let (rl, rl_pos, rr, rr_pos) = split_indexed(rows, row_pos, rsplit);
        let (cl, cl_pos, cr, cr_pos) = split_indexed(cols, col_pos, csplit);
        for (sc, rws, rps) in [(s1, &rl, &rl_pos), (s2, &rr, &rr_pos)] {
            for (tc, cls, cps) in [(t1, &cl, &cl_pos), (t2, &cr, &cr_pos)] {
                self.extract_rec(sc, tc, rws, cls, out, &mut rps.clone(), &mut cps.clone());
            }
        }
    }

    /// Materialize the full dense matrix (tests / tiny problems only).
    pub fn to_dense(&self) -> Mat {
        let n = self.n();
        let all: Vec<usize> = (0..n).collect();
        self.extract_block(&all, &all)
    }
}

fn identity_pos(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Split `(idx, pos)` pairs by `idx < split`.
fn split_indexed(
    idx: &[usize],
    pos: &[usize],
    split: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut l = Vec::new();
    let mut lp = Vec::new();
    let mut r = Vec::new();
    let mut rp = Vec::new();
    for (i, &v) in idx.iter().enumerate() {
        if v < split {
            l.push(v);
            lp.push(pos[i]);
        } else {
            r.push(v);
            rp.push(pos[i]);
        }
    }
    (l, lp, r, rp)
}

impl EntryAccess for H2Matrix {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.extract_block(&[i], &[j])[(0, 0)]
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        let b = self.extract_block(rows, cols);
        out.copy_from(b.rf());
    }
}
