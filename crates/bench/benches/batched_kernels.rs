//! Criterion micro-benchmarks for the batched device kernels — the
//! building blocks whose throughput drives Fig. 5/7 (batched GEMM, QR,
//! CPQR-based ID, transpose/shrink, BSR product) on both backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h2_dense::cpqr::Truncation;
use h2_runtime::{
    batched_row_id, bsr_gemm, gather_rows, gemm_at_x, qr_min_rdiag, rand_mat, shrink_rows,
    BsrBlock, BsrPattern, Runtime, VarBatch,
};

fn batch_of(count: usize, rows: usize, d: usize, rt: &Runtime) -> VarBatch {
    let src = rand_mat(rt, count * rows, d, 42);
    let ranges: Vec<(usize, usize)> = (0..count).map(|i| (i * rows, (i + 1) * rows)).collect();
    gather_rows(rt, &src, &ranges)
}

fn bench_batched_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_qr_convergence_test");
    for &count in &[64usize, 256] {
        for (label, rt) in [("seq", Runtime::sequential()), ("par", Runtime::parallel())] {
            let b = batch_of(count, 64, 32, &rt);
            g.bench_with_input(BenchmarkId::new(label, count), &count, |bench, _| {
                bench.iter(|| qr_min_rdiag(&rt, &b))
            });
        }
    }
    g.finish();
}

fn bench_batched_id(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_row_id");
    g.sample_size(10);
    for &count in &[64usize, 256] {
        for (label, rt) in [("seq", Runtime::sequential()), ("par", Runtime::parallel())] {
            let b = batch_of(count, 64, 32, &rt);
            g.bench_with_input(BenchmarkId::new(label, count), &count, |bench, _| {
                bench.iter(|| batched_row_id(&rt, &b, Truncation::Absolute(1e-8)))
            });
        }
    }
    g.finish();
}

fn bench_batched_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_gemm_upsweep");
    for &count in &[64usize, 256] {
        for (label, rt) in [("seq", Runtime::sequential()), ("par", Runtime::parallel())] {
            let x = batch_of(count, 64, 32, &rt);
            let bases: Vec<h2_dense::Mat> = (0..count)
                .map(|i| h2_dense::gaussian_mat(64, 20, i as u64))
                .collect();
            g.bench_with_input(BenchmarkId::new(label, count), &count, |bench, _| {
                bench.iter(|| gemm_at_x(&rt, &bases, &x))
            });
        }
    }
    g.finish();
}

fn bench_batched_shrink(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_shrink");
    for (label, rt) in [("seq", Runtime::sequential()), ("par", Runtime::parallel())] {
        let b = batch_of(256, 64, 32, &rt);
        let skels: Vec<Vec<usize>> = (0..256).map(|_| (0..20).collect()).collect();
        let refs: Vec<&[usize]> = skels.iter().map(|v| v.as_slice()).collect();
        g.bench_function(label, |bench| bench.iter(|| shrink_rows(&rt, &b, &refs)));
    }
    g.finish();
}

fn bench_bsr_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_bsr_gemm");
    g.sample_size(10);
    for (label, rt) in [("seq", Runtime::sequential()), ("par", Runtime::parallel())] {
        // 128 rows, ring adjacency of degree 8 (Csp = 8 launches).
        let count = 128usize;
        let rows_adj: Vec<Vec<usize>> = (0..count)
            .map(|r| (0..8).map(|k| (r + k * 16) % count).collect())
            .collect();
        let pattern = BsrPattern::from_rows(&rows_adj);
        let owned: Vec<h2_dense::Mat> = (0..pattern.nblocks())
            .map(|i| h2_dense::gaussian_mat(48, 48, i as u64))
            .collect();
        let x = batch_of(count, 48, 32, &rt);
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let blocks: Vec<BsrBlock<'_>> = owned.iter().map(BsrBlock::plain).collect();
                let mut y = batch_of(count, 48, 32, &rt);
                bsr_gemm(&rt, &pattern, &blocks, &x, &mut y, -1.0);
                y
            })
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_batched_qr,
    bench_batched_id,
    bench_batched_gemm,
    bench_batched_shrink,
    bench_bsr_gemm
);
criterion_main!(kernels);
