//! Operator-service benchmark: multi-RHS amortization curves for the
//! fabric-sharded blocked ULV sweep, plus an end-to-end `h2_serve`
//! workload (cache + admission queue) — emitting `BENCH_serve.json`.
//!
//! Reported:
//!
//! * **amortization** — the blocked sweep at k ∈ {1, 2, 4, 8, 16, 32}
//!   RHS columns for D ∈ {1, 4} devices, synchronous and pipelined, under
//!   the A100-class and weak-compute device models. Every row asserts the
//!   PR 2–9 trust invariant (measured fabric bytes exactly equal the
//!   [`h2_runtime::simulate_solve_prec`] prediction at that k) and the
//!   blocked correctness claim (the k-column result is **bit-identical**
//!   to k sequential single-RHS sharded solves). The payoff column is the
//!   amortized per-RHS modeled makespan: the k = 1 sweep is dominated by
//!   per-level launch overhead and link latency that do not scale with k,
//!   so per-RHS cost collapses as k grows (see the `h2_serve` module docs
//!   for the `k / (f + k·(1 − f))` model).
//! * **headline** — `amortized_speedup_at_k32_d4`: serial cost of 32
//!   single-RHS solves over one 32-wide blocked solve on the D = 4
//!   A100-model synchronous row, asserted ≥ 4× in the binary (the same
//!   floor `bench_check --serve` re-checks from the outside).
//! * **serve_sim** — an [`h2_serve::ServeSim`] workload through the
//!   operator cache and admission queue: two operator keys, bursts that
//!   coalesce, a repeat that hits, and a byte budget sized to force
//!   eviction churn. Throughput and p50/p99 latency are **modeled
//!   makespan** under the A100 model — never wall clock, per the
//!   ROADMAP's single-core container rule.
//!
//! Usage: `serve [--n 2048] [--n-serve 512] [--leaf 32]
//! [--out BENCH_serve.json] [--trace serve_trace.json] [--smoke]`
//!
//! `--trace` runs one dedicated pipelined D = 4, k = 32 blocked solve
//! with a tracer attached, writes the Chrome trace, and drops a
//! `<path>.expect` sidecar with the run's exact cross-device byte total
//! for `trace_check`.

use h2_bench::BenchReport;
use h2_core::{sketch_construct, SketchConfig};
use h2_dense::{gaussian_mat, Mat};
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_matrix::H2Matrix;
use h2_obs::Json;
use h2_runtime::{
    simulate_solve_prec, simulate_solve_prec_mode, DeviceModel, PipelineMode, Precision, Runtime,
};
use h2_sched::{
    compare_solve_with_simulator, export_chrome_trace_with_spans, shard_ulv_solve_with_report,
    DeviceFabric,
};
use h2_serve::{AdmissionPolicy, CachedOperator, OpKey, Request, ServeConfig, ServeSim};
use h2_solve::UlvFactor;
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn line_points(n: usize, offset: f64) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| [offset + i as f64 / n as f64, 0.0, 0.0])
        .collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
            h2.dense.resync_demoted(i);
        }
    }
}

/// The two device models shared across the fabric benches: A100-class
/// (latency-dominated sweeps — where blocking pays most) and weak-compute.
fn models() -> (DeviceModel, DeviceModel) {
    let a100 = DeviceModel::default();
    let weak = DeviceModel {
        flops_per_sec: 5.0e11,
        ..DeviceModel::default()
    };
    (a100, weak)
}

/// Build the cached operator pair for an `n`-point line at `offset` — the
/// miss path a deployment's backend constructor would run.
fn build_op(n: usize, leaf: usize, offset: f64) -> CachedOperator {
    let pts = line_points(n, offset);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 3.0);
    let ulv = UlvFactor::new(&h2).expect("ULV factorization");
    CachedOperator {
        h2: Arc::new(h2),
        ulv: Arc::new(ulv),
    }
}

struct AmortRow {
    devices: usize,
    k: usize,
    makespan_a100: f64,
    makespan_weak: f64,
    pipe_makespan_a100: f64,
    pipe_makespan_weak: f64,
    sim_makespan_a100: f64,
    pipe_sim_makespan_a100: f64,
    per_rhs_a100: f64,
    comm_bytes: u64,
    bytes_equal: bool,
}

/// Dedicated traced run: one pipelined D = 4, k = 32 blocked solve with a
/// live tracer, reconciled against the simulator, exported as a Chrome
/// trace plus the `.expect` byte sidecar for `trace_check`.
fn write_trace(path: &str, ulv: &UlvFactor, n: usize) {
    let fabric = DeviceFabric::pipelined(4);
    let tracer = h2_obs::Tracer::new(1 << 20);
    fabric.set_tracer(Some(tracer.clone()));
    let b = gaussian_mat(n, 32, 0x7ACE);
    let (_, report) = shard_ulv_solve_with_report(&fabric, ulv, &b);
    fabric.set_tracer(None);
    let (a100, _) = models();
    let cmp = compare_solve_with_simulator(&report, &ulv.solve_spec(32), &a100);
    assert!(
        cmp.bytes_match(),
        "traced blocked solve must reconcile with the simulator ({} vs {})",
        cmp.measured_bytes,
        cmp.predicted_bytes
    );
    let events = tracer.drain();
    let trace = export_chrome_trace_with_spans(&report, &events);
    trace.write(path).expect("write chrome trace");
    std::fs::write(
        format!("{path}.expect"),
        report.total_comm_bytes().to_string(),
    )
    .expect("write expect sidecar");
    println!(
        "trace: wrote {path} ({} events, comm_bytes {}) and {path}.expect",
        events.len(),
        report.total_comm_bytes()
    );
}

fn main() {
    let args = h2_bench::Args::parse();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", if smoke { 1024 } else { 2048 });
    let n_serve: usize = args.get("n-serve", if smoke { 256 } else { 512 });
    let leaf: usize = args.get("leaf", 32);
    let out_path: String = args.get("out", "BENCH_serve.json".to_string());
    let (a100, weak) = models();

    println!("# serve bench: n={n} n_serve={n_serve} leaf={leaf} smoke={smoke}\n");

    // ---- amortization: blocked sweep vs k sequential single-RHS solves ----
    let op = build_op(n, leaf, 0.0);
    let ulv = op.ulv.clone();
    let nn = ulv.n();
    let mut rows: Vec<AmortRow> = Vec::new();
    for devices in [1usize, 4] {
        for k in [1usize, 2, 4, 8, 16, 32] {
            let b = gaussian_mat(nn, k, 0xB10C ^ ((devices as u64) << 8) ^ k as u64);
            let spec = ulv.solve_spec(k);

            let fabric = DeviceFabric::new(devices);
            let (x_sync, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
            let cmp = compare_solve_with_simulator(&report, &spec, &a100);
            assert!(
                cmp.bytes_match(),
                "D={devices} k={k}: blocked sweep bytes {} vs simulator {}",
                cmp.measured_bytes,
                cmp.predicted_bytes
            );

            let pipe_fabric = DeviceFabric::pipelined(devices);
            let (x_pipe, pipe_report) = shard_ulv_solve_with_report(&pipe_fabric, &ulv, &b);
            let pipe_cmp = compare_solve_with_simulator(&pipe_report, &spec, &a100);
            assert!(
                pipe_cmp.bytes_match(),
                "D={devices} k={k}: pipelined blocked sweep bytes {} vs simulator {}",
                pipe_cmp.measured_bytes,
                pipe_cmp.predicted_bytes
            );
            assert_eq!(
                x_sync.as_slice(),
                x_pipe.as_slice(),
                "D={devices} k={k}: pipelined blocked sweep must be bit-identical"
            );

            // The blocked result must be bit-identical to k sequential
            // single-RHS sharded solves — the claim that lets a service
            // coalesce requests without changing any client's answer.
            for j in 0..k {
                let col: Mat = b.col_block(j, 1).to_mat();
                let single_fabric = DeviceFabric::new(devices);
                let (xj, _) = shard_ulv_solve_with_report(&single_fabric, &ulv, &col);
                assert_eq!(
                    xj.as_slice(),
                    x_sync.col_block(j, 1).to_mat().as_slice(),
                    "D={devices} k={k}: column {j} drifted from its single-RHS solve"
                );
            }

            rows.push(AmortRow {
                devices,
                k,
                makespan_a100: report.modeled_makespan(&a100),
                makespan_weak: report.modeled_makespan(&weak),
                pipe_makespan_a100: pipe_report.modeled_makespan(&a100),
                pipe_makespan_weak: pipe_report.modeled_makespan(&weak),
                sim_makespan_a100: simulate_solve_prec(&spec, devices, &a100, Precision::F64)
                    .makespan,
                pipe_sim_makespan_a100: simulate_solve_prec_mode(
                    &spec,
                    devices,
                    &a100,
                    Precision::F64,
                    PipelineMode::Pipelined,
                )
                .makespan,
                per_rhs_a100: report.modeled_makespan(&a100) / k as f64,
                comm_bytes: report.total_comm_bytes(),
                bytes_equal: cmp.bytes_match() && pipe_cmp.bytes_match(),
            });
        }
    }

    println!("## blocked-sweep amortization (modeled makespan, µs)\n");
    h2_bench::header(&[
        "D",
        "k",
        "sync a100",
        "pipe a100",
        "sim a100",
        "per-RHS a100",
        "sync weak",
        "comm KiB",
        "bytes==sim",
    ]);
    for r in &rows {
        h2_bench::row(&[
            r.devices.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.makespan_a100 * 1e6),
            format!("{:.2}", r.pipe_makespan_a100 * 1e6),
            format!("{:.2}", r.sim_makespan_a100 * 1e6),
            format!("{:.2}", r.per_rhs_a100 * 1e6),
            format!("{:.2}", r.makespan_weak * 1e6),
            format!("{:.1}", r.comm_bytes as f64 / 1024.0),
            r.bytes_equal.to_string(),
        ]);
    }

    // ---- headline: serial 32×(k=1) vs one blocked k=32, D=4, A100 ----
    let find = |d: usize, k: usize| {
        rows.iter()
            .find(|r| r.devices == d && r.k == k)
            .expect("row present")
    };
    let headline = find(4, 1).makespan_a100 * 32.0 / find(4, 32).makespan_a100;
    assert!(
        headline >= 4.0,
        "amortized speedup at k=32 D=4 is {headline:.2}x, below the 4x acceptance floor"
    );
    println!(
        "\nHeadline: one 32-wide blocked solve beats 32 serial single-RHS \
         solves by {headline:.1}x in modeled makespan (D=4, A100 model)."
    );

    // ---- serve_sim: cache + admission queue end to end ----
    // Two operator keys; a burst that coalesces, a repeat that hits, and a
    // byte budget holding one operator so the key alternation churns.
    let serve_ops = [build_op(n_serve, leaf, 0.0), build_op(n_serve, leaf, 10.0)];
    let keys = [
        OpKey::from_hash("exp1d", 0, 1e-9),
        OpKey::from_hash("exp1d", 1, 1e-9),
    ];
    let budget = serve_ops
        .iter()
        .map(|o| o.memory_bytes())
        .max()
        .expect("two ops")
        * 3
        / 2;
    let sn = serve_ops[0].ulv.n();
    let cfg = ServeConfig {
        devices: 4,
        mode: PipelineMode::Pipelined,
        model: a100,
        policy: AdmissionPolicy {
            max_batch: 8,
            max_wait: 1e-3,
        },
        cache_budget_bytes: budget,
    };
    let ops_for_build = serve_ops.clone();
    let mut sim = ServeSim::new(cfg, move |k: &OpKey| {
        ops_for_build[k.geometry as usize].clone()
    });
    let mut requests = Vec::new();
    let mut id = 0u64;
    let mut push = |reqs: &mut Vec<Request>, which: usize, arrival: f64, width: usize| {
        reqs.push(Request {
            id,
            key: keys[which].clone(),
            arrival,
            rhs: gaussian_mat(sn, width, 0x5E17 + id),
        });
        id += 1;
    };
    // Burst on key 0 (fills max_batch = 8 → coalesces, one miss)...
    for w in [2usize, 2, 2, 2] {
        push(&mut requests, 0, 0.0, w);
    }
    // ...a later repeat on key 0 (hit)...
    for w in [1usize, 1, 1, 1] {
        push(&mut requests, 0, 1.0, w);
    }
    // ...then alternate keys under a one-operator budget (miss + evict).
    push(&mut requests, 1, 2.0, 4);
    push(&mut requests, 0, 3.0, 4);
    let (responses, serve) = sim.run(requests);
    assert_eq!(serve.completed, 10);
    assert!(serve.bytes_equal, "serve batches must match the simulator");
    assert!(
        serve.batches < serve.completed,
        "burst requests must coalesce ({} batches for {} requests)",
        serve.batches,
        serve.completed
    );
    assert!(serve.cache_hits >= 1, "repeat key must hit the cache");
    assert!(
        serve.cache_evictions >= 1,
        "one-operator budget must evict under key alternation"
    );
    assert_eq!(responses.len(), 10);

    println!("\n## serve_sim (two keys, coalescing + cache churn)\n");
    h2_bench::header(&[
        "requests",
        "batches",
        "mean width",
        "thr RHS/s",
        "p50 ms",
        "p99 ms",
        "hits",
        "misses",
        "evict",
        "bytes==sim",
    ]);
    h2_bench::row(&[
        serve.completed.to_string(),
        serve.batches.to_string(),
        format!("{:.2}", serve.mean_batch_width),
        format!("{:.1}", serve.throughput_rhs_per_sec),
        format!("{:.3}", serve.p50_latency * 1e3),
        format!("{:.3}", serve.p99_latency * 1e3),
        serve.cache_hits.to_string(),
        serve.cache_misses.to_string(),
        serve.cache_evictions.to_string(),
        serve.bytes_equal.to_string(),
    ]);

    // ---- envelope ----
    let mut rep = BenchReport::new("serve");
    rep.precisions(&[Precision::F64])
        .device_model("weak_compute_0.5TFs", &weak)
        .device_model("a100_10TFs", &a100);
    rep.section(
        "config",
        Json::obj(vec![
            ("n", Json::u64(n as u64)),
            ("n_serve", Json::u64(n_serve as u64)),
            ("leaf", Json::u64(leaf as u64)),
            ("smoke", Json::Bool(smoke)),
        ]),
    );
    rep.section(
        "amortization",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("devices", Json::u64(r.devices as u64)),
                        ("k", Json::u64(r.k as u64)),
                        ("makespan_a100", Json::Num(r.makespan_a100)),
                        ("makespan_weak", Json::Num(r.makespan_weak)),
                        ("pipe_makespan_a100", Json::Num(r.pipe_makespan_a100)),
                        ("pipe_makespan_weak", Json::Num(r.pipe_makespan_weak)),
                        ("sim_makespan_a100", Json::Num(r.sim_makespan_a100)),
                        (
                            "pipe_sim_makespan_a100",
                            Json::Num(r.pipe_sim_makespan_a100),
                        ),
                        ("per_rhs_a100", Json::Num(r.per_rhs_a100)),
                        ("comm_bytes", Json::u64(r.comm_bytes)),
                        ("bytes_equal", Json::Bool(r.bytes_equal)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section("amortized_speedup_at_k32_d4", Json::Num(headline));
    rep.section(
        "serve_sim",
        Json::obj(vec![
            ("completed", Json::u64(serve.completed as u64)),
            ("total_rhs", Json::u64(serve.total_rhs as u64)),
            ("batches", Json::u64(serve.batches as u64)),
            ("mean_batch_width", Json::Num(serve.mean_batch_width)),
            ("makespan", Json::Num(serve.makespan)),
            (
                "throughput_rhs_per_sec",
                Json::Num(serve.throughput_rhs_per_sec),
            ),
            ("p50_latency", Json::Num(serve.p50_latency)),
            ("p99_latency", Json::Num(serve.p99_latency)),
            ("cache_hits", Json::u64(serve.cache_hits as u64)),
            ("cache_misses", Json::u64(serve.cache_misses as u64)),
            ("cache_evictions", Json::u64(serve.cache_evictions as u64)),
            ("solve_bytes", Json::u64(serve.solve_bytes)),
            ("predicted_bytes", Json::u64(serve.predicted_bytes)),
            ("bytes_equal", Json::Bool(serve.bytes_equal)),
            ("factor_seconds", Json::Num(serve.factor_seconds)),
        ]),
    );
    rep.write(&out_path);

    if let Some(path) = args.get_opt("trace") {
        write_trace(&path, &ulv, nn);
    }
}
