//! Householder QR factorization (unblocked, LAPACK `geqrf`-style).
//!
//! The factor is stored compactly: R in the upper triangle, the Householder
//! vectors below the diagonal with implicit unit leading entry, and the
//! scalar factors `tau` separately. This is the work-horse of the adaptive
//! convergence test (Algorithm 1, lines 11/29 — "QR of Y_loc, inspect
//! min |R_ii|") and of sample orthonormalization.

use crate::mat::{Mat, MatMut, MatRef};

/// Compact Householder QR factor of an `m x n` matrix.
pub struct QrFactor {
    /// Packed factor: R upper, Householder vectors lower.
    pub a: Mat,
    /// Householder scalars, length `min(m, n)`.
    pub tau: Vec<f64>,
}

/// Factor `a` in place (consumes and returns the packed factor).
pub fn qr_factor(mut a: Mat) -> QrFactor {
    let tau = qr_in_place(&mut a.rm());
    QrFactor { a, tau }
}

/// In-place Householder QR on a view; returns `tau`.
pub fn qr_in_place(a: &mut MatMut<'_>) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    for k in 0..kmax {
        // Build the Householder reflector for column k.
        let (t, beta) = house_gen(a, k);
        tau[k] = t;
        // Apply (I - tau v v^T) to the trailing columns.
        if t != 0.0 {
            for j in (k + 1)..n {
                let mut s = a.at(k, j);
                for i in (k + 1)..m {
                    s += a.at(i, k) * a.at(i, j);
                }
                s *= t;
                *a.at_mut(k, j) -= s;
                for i in (k + 1)..m {
                    let vik = a.at(i, k);
                    *a.at_mut(i, j) -= s * vik;
                }
            }
        }
        *a.at_mut(k, k) = beta;
    }
    tau
}

/// Generate a Householder reflector for column `k` of `a` (rows `k..m`),
/// storing `v` (unit leading entry implicit) in rows `k+1..m`. Returns
/// `(tau, beta)` where `beta` is the resulting diagonal value of R.
fn house_gen(a: &mut MatMut<'_>, k: usize) -> (f64, f64) {
    let m = a.rows();
    let alpha = a.at(k, k);
    let mut xnorm2 = 0.0;
    for i in (k + 1)..m {
        let v = a.at(i, k);
        xnorm2 += v * v;
    }
    if xnorm2 == 0.0 {
        return (0.0, alpha);
    }
    let norm = (alpha * alpha + xnorm2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in (k + 1)..m {
        *a.at_mut(i, k) *= scale;
    }
    (tau, beta)
}

impl QrFactor {
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    pub fn cols(&self) -> usize {
        self.a.cols()
    }

    /// Absolute values of the diagonal of R (the adaptive convergence
    /// statistic of Algorithm 1).
    pub fn r_diag_abs(&self) -> Vec<f64> {
        (0..self.tau.len()).map(|i| self.a[(i, i)].abs()).collect()
    }

    /// Smallest `|R_ii|`; `None` for an empty factor.
    pub fn min_r_diag_abs(&self) -> Option<f64> {
        self.r_diag_abs()
            .into_iter()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// The upper-triangular factor R (`min(m,n) x n`).
    pub fn r(&self) -> Mat {
        let k = self.tau.len();
        Mat::from_fn(
            k,
            self.a.cols(),
            |i, j| if j >= i { self.a[(i, j)] } else { 0.0 },
        )
    }

    /// The thin orthonormal factor Q (`m x min(m,n)`).
    pub fn q_thin(&self) -> Mat {
        let m = self.a.rows();
        let k = self.tau.len();
        let mut q = Mat::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = 1.0;
        }
        self.apply_q(&mut q.rm());
        q
    }

    /// `c <- Q c` (apply reflectors in reverse order).
    pub fn apply_q(&self, c: &mut MatMut<'_>) {
        let m = self.a.rows();
        assert_eq!(c.rows(), m, "apply_q: row mismatch");
        for k in (0..self.tau.len()).rev() {
            self.apply_reflector(k, c);
        }
    }

    /// `c <- Q^T c` (apply reflectors in forward order).
    pub fn apply_qt(&self, c: &mut MatMut<'_>) {
        let m = self.a.rows();
        assert_eq!(c.rows(), m, "apply_qt: row mismatch");
        for k in 0..self.tau.len() {
            self.apply_reflector(k, c);
        }
    }

    fn apply_reflector(&self, k: usize, c: &mut MatMut<'_>) {
        let t = self.tau[k];
        if t == 0.0 {
            return;
        }
        let m = self.a.rows();
        for j in 0..c.cols() {
            let mut s = c.at(k, j);
            for i in (k + 1)..m {
                s += self.a[(i, k)] * c.at(i, j);
            }
            s *= t;
            *c.at_mut(k, j) -= s;
            for i in (k + 1)..m {
                *c.at_mut(i, j) -= s * self.a[(i, k)];
            }
        }
    }
}

/// Orthonormalize the columns of `a` (thin Q of its QR factorization).
pub fn orthonormalize(a: Mat) -> Mat {
    qr_factor(a).q_thin()
}

/// Compute only `|diag(R)|` of the QR of a view, without keeping the factor.
/// This is the exact statistic the batched convergence test needs.
pub fn r_diag_abs_of(a: MatRef<'_>, work: &mut Mat) -> Vec<f64> {
    if work.rows() != a.rows() || work.cols() != a.cols() {
        *work = Mat::zeros(a.rows(), a.cols());
    }
    work.rm().copy_from(a);
    let tau = qr_in_place(&mut work.rm());
    (0..tau.len()).map(|i| work[(i, i)].abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::rand::gaussian_mat;

    fn reconstruct_err(a: &Mat) -> f64 {
        let f = qr_factor(a.clone());
        let q = f.q_thin();
        let r = f.r();
        let qr = matmul(Op::NoTrans, Op::NoTrans, q.rf(), r.rf());
        let mut d = qr;
        d.axpy(-1.0, a);
        d.norm_max() / a.norm_max().max(1.0)
    }

    #[test]
    fn reconstructs_tall_square_wide() {
        for (m, n) in [(10, 4), (6, 6), (4, 9), (1, 1), (12, 1)] {
            let a = gaussian_mat(m, n, (m * 100 + n) as u64);
            assert!(reconstruct_err(&a) < 1e-13, "QR failed for {m}x{n}");
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let a = gaussian_mat(20, 7, 11);
        let q = qr_factor(a).q_thin();
        let qtq = matmul(Op::Trans, Op::NoTrans, q.rf(), q.rf());
        let mut d = qtq;
        d.axpy(-1.0, &Mat::eye(7));
        assert!(d.norm_max() < 1e-13);
    }

    #[test]
    fn qt_q_roundtrip() {
        let a = gaussian_mat(9, 5, 12);
        let f = qr_factor(a);
        let c0 = gaussian_mat(9, 3, 13);
        let mut c = c0.clone();
        f.apply_qt(&mut c.rm());
        f.apply_q(&mut c.rm());
        let mut d = c;
        d.axpy(-1.0, &c0);
        assert!(d.norm_max() < 1e-13);
    }

    #[test]
    fn rank_deficiency_shows_in_r_diag() {
        // Rank-3 matrix: |R_44| must collapse.
        let a = crate::rand::random_low_rank(12, 8, 3, 0.9, 5);
        let f = qr_factor(a);
        let d = f.r_diag_abs();
        assert!(d[3] < 1e-10 * d[0].max(1e-300));
    }

    #[test]
    fn min_r_diag_matches_helper() {
        let a = gaussian_mat(16, 6, 17);
        let f = qr_factor(a.clone());
        let mut work = Mat::zeros(0, 0);
        let d = r_diag_abs_of(a.rf(), &mut work);
        let want = f.min_r_diag_abs().unwrap();
        let got = d.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((want - got).abs() < 1e-14);
    }

    #[test]
    fn zero_matrix_qr() {
        let a = Mat::zeros(5, 3);
        let f = qr_factor(a);
        assert_eq!(f.min_r_diag_abs().unwrap(), 0.0);
    }
}
