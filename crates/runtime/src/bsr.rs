//! Non-uniform batched block-sparse-row (BSR) matrix product.
//!
//! Algorithm 1 subtracts the inadmissible (leaf) or already-compressed
//! (coupling) contributions from the samples:
//! `Y^loc_τ -= Σ_{b∈N_τ} D_{τ,b} Ω_b`. The blocks form a block-sparse matrix
//! whose per-row block count is bounded by the sparsity constant `Csp`.
//!
//! No GPU library offers a variable-block-size BSR product, so the paper
//! splits the operation into at most `Csp` batched-GEMM launches such that
//! each launch touches **at most one block per row** — making all row updates
//! conflict-free without atomics. [`BsrPattern::slots`] reproduces exactly
//! that decomposition, and [`bsr_gemm`] issues one launch per slot.

use crate::batch::VarBatch;
use crate::multidev::{cost, owner};
use crate::profile::Kernel;
use crate::runtime::Runtime;
use crate::shard::{chunk_bounds, FetchPlanner, PipelineMode, ShardJob, Transfer, TransferKind};
use h2_dense::{gemm, Mat, MatMut, Op};
use std::collections::HashSet;

/// Sparsity pattern of a level's block-sparse matrix, pre-split into
/// conflict-free slots.
pub struct BsrPattern {
    nrows: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// `slot_of[p]` = slot (launch index) of block position `p`.
    slot_of: Vec<usize>,
    /// `slots[s][row]` = block position handled by launch `s` for `row`
    /// (or `usize::MAX` when the row is idle in that launch).
    slots: Vec<Vec<usize>>,
}

impl BsrPattern {
    /// Build from per-row adjacency lists: `rows[r]` holds the x-batch entry
    /// index of each block in row `r`. Block positions are numbered
    /// row-major: row 0's blocks first, then row 1's, …
    pub fn from_rows(rows: &[Vec<usize>]) -> Self {
        let nrows = rows.len();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut slot_of = Vec::new();
        row_ptr.push(0);
        let csp = rows.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut slots = vec![vec![usize::MAX; nrows]; csp];
        for (r, adj) in rows.iter().enumerate() {
            for (s, &c) in adj.iter().enumerate() {
                let pos = col_idx.len();
                col_idx.push(c);
                slot_of.push(s);
                slots[s][r] = pos;
            }
            row_ptr.push(col_idx.len());
        }
        BsrPattern {
            nrows,
            row_ptr,
            col_idx,
            slot_of,
            slots,
        }
    }

    /// Number of block rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Total number of blocks.
    pub fn nblocks(&self) -> usize {
        self.col_idx.len()
    }

    /// The sparsity constant: maximum blocks per row = number of launches.
    pub fn csp(&self) -> usize {
        self.slots.len()
    }

    /// Block positions of row `r`.
    pub fn row_blocks(&self, r: usize) -> &[usize] {
        // positions row_ptr[r]..row_ptr[r+1]
        // (exposed as a range for callers aligning their block arrays)
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// `(start, end)` positions of row `r` in the flat block array.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r], self.row_ptr[r + 1])
    }

    /// x-batch entry of block position `p`.
    pub fn col_of(&self, p: usize) -> usize {
        self.col_idx[p]
    }

    /// Check the slot decomposition invariant: each launch touches each row
    /// at most once and every block is covered exactly once.
    pub fn validate(&self) -> bool {
        let mut seen = vec![false; self.nblocks()];
        for slot in &self.slots {
            for &p in slot.iter().filter(|&&p| p != usize::MAX) {
                if seen[p] {
                    return false;
                }
                seen[p] = true;
            }
        }
        seen.iter().all(|&s| s) && self.slot_of.len() == self.nblocks()
    }
}

/// A reference to one block of the BSR matrix. Symmetric H2 storage keeps
/// only the `s <= t` blocks, so the `(t, s)` side is applied transposed.
#[derive(Clone, Copy)]
pub struct BsrBlock<'a> {
    pub mat: &'a Mat,
    pub transposed: bool,
}

impl<'a> BsrBlock<'a> {
    pub fn plain(mat: &'a Mat) -> Self {
        BsrBlock {
            mat,
            transposed: false,
        }
    }
}

/// `batchedBSRGemm`: `Y_r += alpha * Σ_p op(blocks[p]) * X_{col(p)}` over all
/// block positions `p` in row `r`, issued as `Csp` conflict-free batched
/// launches.
///
/// `op(blocks[p])` must have shape `(Y_r.rows, X_col.rows)`.
pub fn bsr_gemm(
    rt: &Runtime,
    pattern: &BsrPattern,
    blocks: &[BsrBlock<'_>],
    x: &VarBatch,
    y: &mut VarBatch,
    alpha: f64,
) {
    bsr_gemm_stream(rt, pattern, blocks, x, y, alpha, 0)
}

/// [`bsr_gemm`] with an explicit sketch-stream tag (0 = row `Ω`, 1 = column
/// `Ψ`). The tag keys the pipelined fabric's early prefetch hints, so the
/// two streams of the unsymmetric engine never claim each other's fetches.
pub fn bsr_gemm_stream(
    rt: &Runtime,
    pattern: &BsrPattern,
    blocks: &[BsrBlock<'_>],
    x: &VarBatch,
    y: &mut VarBatch,
    alpha: f64,
    stream: u8,
) {
    assert_eq!(
        blocks.len(),
        pattern.nblocks(),
        "bsr_gemm: block array mismatch"
    );
    assert_eq!(y.count(), pattern.nrows(), "bsr_gemm: y batch mismatch");
    if let Some(disp) = rt.shard_dispatch() {
        if disp.mode() == PipelineMode::Pipelined {
            bsr_gemm_pipelined(rt, pattern, blocks, x, y, alpha, stream, disp.as_ref());
        } else {
            bsr_gemm_sharded(rt, pattern, blocks, x, y, alpha, disp.as_ref());
        }
        return;
    }
    let par = rt.is_parallel();
    // Only the parallel path reads the cost closure (for_each_mut_costed
    // falls through to the plain serial loop otherwise).
    let y_rows: Vec<usize> = if par {
        (0..y.count()).map(|r| y.rows_of(r)).collect()
    } else {
        Vec::new()
    };
    for slot in &pattern.slots {
        // One batched-GEMM launch per slot (paper §IV.A: "at most Csp
        // kernels ... only one block from each row in each launch").
        rt.launch(Kernel::BsrGemm);
        // Chunk rows by this slot's modeled flops: idle rows are free, and
        // the few huge coupling blocks stop pinning one chunk.
        let slot_cost = |row: usize| {
            let p = slot[row];
            if p == usize::MAX {
                return 0.0;
            }
            let col = pattern.col_of(p);
            cost::bsr_flops(y_rows[row], x.rows_of(col), x.cols_of(col))
        };
        y.for_each_mut_costed(par, slot_cost, |row, m| {
            let p = slot[row];
            if p == usize::MAX {
                return;
            }
            let xb = x.mat(pattern.col_of(p));
            let b = blocks[p];
            let op = if b.transposed { Op::Trans } else { Op::NoTrans };
            gemm(op, Op::NoTrans, alpha, b.mat.rf(), xb, 1.0, m);
        });
    }
}

/// The device-sharded `batchedBSRGemm`: block rows are divided into the
/// contiguous chunks of §IV.A, each slot launch runs one job per device over
/// its chunk, and the input block `Ω_b` of every off-device partner is
/// fetched once per `(device, partner)` pair for the whole call — exactly
/// the traffic [`crate::multidev::simulate`] models for the level.
fn bsr_gemm_sharded(
    rt: &Runtime,
    pattern: &BsrPattern,
    blocks: &[BsrBlock<'_>],
    x: &VarBatch,
    y: &mut VarBatch,
    alpha: f64,
    disp: &dyn crate::shard::ShardDispatch,
) {
    let devices = disp.devices();
    let n = pattern.nrows();
    let bounds = chunk_bounds(n, devices);

    // Accounting pass: per-device flops (2 m_r m_b d per block) and the
    // deduplicated Ω fetches, both with the simulator's formulas and
    // owner-attributed (the simulator's §IV.A chunks), independent of how
    // execution is chunked below. The per-row totals double as the
    // execution cost estimate.
    let mut flops = vec![0.0f64; devices];
    let mut row_flops = vec![0.0f64; n];
    let mut fetched: HashSet<(usize, usize)> = HashSet::new();
    for r in 0..n {
        let dev = owner(r, n, devices);
        let (b0, b1) = pattern.row_range(r);
        for p in b0..b1 {
            let col = pattern.col_of(p);
            let (mb, d) = (x.rows_of(col), x.cols_of(col));
            let fl = cost::bsr_flops(y.rows_of(r), mb, d);
            flops[dev] += fl;
            row_flops[r] += fl;
            let dev_b = owner(col, x.count().max(n), devices);
            if dev_b != dev && fetched.insert((dev, col)) {
                let wire = disp.wire();
                let bytes = cost::fetch_bytes_p(mb, d, wire);
                disp.push_transfer(Transfer {
                    src: dev_b,
                    dst: dev,
                    bytes,
                    kind: TransferKind::OmegaFetch,
                    prec: wire,
                });
                disp.arena_alloc(dev, bytes as usize);
            }
        }
    }
    for (dev, fl) in flops.into_iter().enumerate() {
        if fl > 0.0 {
            disp.add_flops(dev, fl);
        }
    }

    // Execution chunking: contiguous row runs of ~equal modeled flops,
    // shared by every slot launch of the call.
    let exec_bounds = crate::batch::cost_chunk_bounds(n, devices, |r| row_flops[r]);
    for slot in &pattern.slots {
        // One launch per device per slot, each over its contiguous chunk.
        rt.launch(Kernel::BsrGemm);
        let mut rows = y.split_mut().into_iter();
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
        for dev in 0..devices {
            let chunk: Vec<MatMut<'_>> = rows
                .by_ref()
                .take(exec_bounds[dev + 1] - exec_bounds[dev])
                .collect();
            // Launch accounting keeps the simulator's owner chunks.
            if bounds[dev + 1] > bounds[dev] {
                disp.add_launches(dev, 1);
            }
            let start = exec_bounds[dev];
            jobs.push(Box::new(move || {
                for (k, m) in chunk.into_iter().enumerate() {
                    let p = slot[start + k];
                    if p == usize::MAX {
                        continue;
                    }
                    let xb = x.mat(pattern.col_of(p));
                    let b = blocks[p];
                    let op = if b.transposed { Op::Trans } else { Op::NoTrans };
                    gemm(op, Op::NoTrans, alpha, b.mat.rf(), xb, 1.0, m);
                }
            }));
        }
        disp.run(jobs);
    }
}

/// The pipelined `batchedBSRGemm`: identical arithmetic and accounting to
/// [`bsr_gemm_sharded`], different schedule. The `Ω_b` fetch descriptors are
/// planned first (via the shared [`FetchPlanner`], so the byte totals stay
/// the simulator's) and either **claimed** from the construction's early
/// prefetch hints or issued as fresh prefetches on the copy engine; each
/// device then receives **one** queued job chaining all `Csp` slot launches
/// in slot order — per-row accumulation order is exactly the synchronous
/// path's, so results are bit-identical, but the `Csp − 1` global joins
/// between slots are gone and the owner-attributed work accounting runs on
/// the issuing thread while the devices compute.
#[allow(clippy::too_many_arguments)]
fn bsr_gemm_pipelined(
    rt: &Runtime,
    pattern: &BsrPattern,
    blocks: &[BsrBlock<'_>],
    x: &VarBatch,
    y: &mut VarBatch,
    alpha: f64,
    stream: u8,
    disp: &dyn crate::shard::ShardDispatch,
) {
    let devices = disp.devices();
    let n = pattern.nrows();
    let bounds = chunk_bounds(n, devices);

    // Plan the deduplicated fetches and the per-row flop estimate in one
    // cheap pass, then issue/claim the prefetch tickets before any compute
    // is enqueued.
    let mut planner = FetchPlanner::new(stream, n, x.count(), devices, disp.wire());
    let mut row_flops = vec![0.0f64; n];
    for r in 0..n {
        let (b0, b1) = pattern.row_range(r);
        for p in b0..b1 {
            let col = pattern.col_of(p);
            let (mb, d) = (x.rows_of(col), x.cols_of(col));
            row_flops[r] += cost::bsr_flops(y.rows_of(r), mb, d);
            planner.visit(r, col, mb, d);
        }
    }
    // Tickets are grouped by destination device so a device whose chunk
    // needs no remote partner never stalls behind another device's fetch.
    // (Execution chunks are cost-balanced approximations of the owner
    // chunks the destinations refer to — gating is a timing model, the
    // data never moves, so the approximation cannot affect results.)
    let mut tickets_by_dev: Vec<Vec<u64>> = vec![Vec::new(); devices];
    for (key, t) in planner.into_plan() {
        let tk = disp.claim_or_fetch(key, t);
        if tk != 0 {
            tickets_by_dev[key.dst].push(tk);
        }
    }
    disp.cancel_hints(stream);

    // One queued job per device, chaining every slot over its contiguous
    // cost-balanced chunk, gated on its own fetch tickets.
    let exec_bounds = crate::batch::cost_chunk_bounds(n, devices, |r| row_flops[r]);
    let mut rows = y.split_mut().into_iter();
    for dev in 0..devices {
        let mut chunk: Vec<MatMut<'_>> = rows
            .by_ref()
            .take(exec_bounds[dev + 1] - exec_bounds[dev])
            .collect();
        let start = exec_bounds[dev];
        let job: ShardJob<'_> = Box::new(move || {
            for slot in &pattern.slots {
                for (k, m) in chunk.iter_mut().enumerate() {
                    let p = slot[start + k];
                    if p == usize::MAX {
                        continue;
                    }
                    let xb = x.mat(pattern.col_of(p));
                    let b = blocks[p];
                    let op = if b.transposed { Op::Trans } else { Op::NoTrans };
                    gemm(op, Op::NoTrans, alpha, b.mat.rf(), xb, 1.0, m.rb_mut());
                }
            }
        });
        // SAFETY: flushed below, before `y`/`x`/`blocks` borrows end.
        unsafe { disp.enqueue(dev, &tickets_by_dev[dev], job) };
    }

    // Owner-attributed accounting (the simulator's chunks and formulas),
    // overlapped with the queued compute.
    rt.launches(Kernel::BsrGemm, pattern.csp());
    for dev in 0..devices {
        let (b, e) = (bounds[dev], bounds[dev + 1]);
        if e == b {
            continue;
        }
        let fl: f64 = row_flops[b..e].iter().sum();
        if fl > 0.0 {
            disp.add_flops(dev, fl);
        }
        disp.add_launches(dev, pattern.csp());
    }
    disp.flush();
}

/// Early prefetch hint for the *next* level's `batchedBSRGemm`: the
/// construction engine calls this as soon as the current level's IDs fix
/// the partner block sizes, so the `Ω_b`/`Ψ_b` copies run on the fabric's
/// copy engine behind the current level's `batchedGen`/upsweep compute.
/// Drives the same [`FetchPlanner`] as the kernel itself, so the hinted
/// descriptors match the claims exactly (byte totals unchanged). No-op off
/// the pipelined sharded backend.
pub fn hint_bsr_fetches(rt: &Runtime, stream: u8, adj: &[Vec<usize>], x_rows: &[usize], d: usize) {
    let Some(disp) = rt.shard_dispatch() else {
        return;
    };
    if disp.mode() != PipelineMode::Pipelined {
        return;
    }
    let n = adj.len();
    let mut planner = FetchPlanner::new(stream, n, x_rows.len(), disp.devices(), disp.wire());
    for (r, partners) in adj.iter().enumerate() {
        for &b in partners {
            planner.visit(r, b, x_rows[b], d);
        }
    }
    for (key, t) in planner.into_plan() {
        disp.hint_prefetch(key, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gather_rows;
    use h2_dense::{gaussian_mat, matmul};

    #[test]
    fn pattern_slots_are_valid() {
        let rows = vec![vec![0, 1, 2], vec![1], vec![], vec![0, 2]];
        let p = BsrPattern::from_rows(&rows);
        assert_eq!(p.nrows(), 4);
        assert_eq!(p.nblocks(), 6);
        assert_eq!(p.csp(), 3);
        assert!(p.validate());
        assert_eq!(p.row_blocks(3), &[0, 2]);
    }

    #[test]
    fn empty_pattern() {
        let p = BsrPattern::from_rows(&[vec![], vec![]]);
        assert_eq!(p.csp(), 0);
        assert!(p.validate());
    }

    /// Dense reference: build a block matrix, multiply, compare.
    #[test]
    fn bsr_gemm_matches_dense() {
        for rt in [Runtime::sequential(), Runtime::parallel()] {
            // 3 row-clusters of sizes 2,3,2 and x entries of sizes 2,3,2.
            let sizes = [2usize, 3, 2];
            let starts = [0usize, 2, 5];
            let n = 7;
            let d = 4;
            let adj = vec![vec![0, 1], vec![2], vec![0, 1, 2]];
            let pattern = BsrPattern::from_rows(&adj);
            // Random blocks sized (rows[r], cols[c]).
            let mut owned: Vec<Mat> = Vec::new();
            let mut dense = Mat::zeros(n, n);
            for (r, list) in adj.iter().enumerate() {
                for &c in list {
                    let b = gaussian_mat(sizes[r], sizes[c], (r * 10 + c) as u64);
                    for i in 0..sizes[r] {
                        for j in 0..sizes[c] {
                            dense[(starts[r] + i, starts[c] + j)] = b[(i, j)];
                        }
                    }
                    owned.push(b);
                }
            }
            let blocks: Vec<BsrBlock<'_>> = owned.iter().map(BsrBlock::plain).collect();
            let xg = gaussian_mat(n, d, 99);
            let ranges: Vec<(usize, usize)> = starts
                .iter()
                .zip(sizes.iter())
                .map(|(&s, &z)| (s, s + z))
                .collect();
            let x = gather_rows(&rt, &xg, &ranges);
            let mut y = VarBatch::zeros_uniform_cols(sizes.to_vec(), d);
            bsr_gemm(&rt, &pattern, &blocks, &x, &mut y, -1.0);

            let want = matmul(Op::NoTrans, Op::NoTrans, dense.rf(), xg.rf());
            for (r, &(s, _)) in ranges.iter().enumerate() {
                let got = y.to_mat(r);
                for i in 0..sizes[r] {
                    for j in 0..d {
                        assert!(
                            (got[(i, j)] + want[(s + i, j)]).abs() < 1e-12,
                            "row cluster {r} entry ({i},{j})"
                        );
                    }
                }
            }
            // Launch count == Csp.
            assert_eq!(rt.profile().launches(Kernel::BsrGemm), pattern.csp());
        }
    }

    #[test]
    fn accumulates_into_existing_y() {
        let rt = Runtime::sequential();
        let pattern = BsrPattern::from_rows(&[vec![0]]);
        let eye = Mat::eye(2);
        let blocks = vec![BsrBlock::plain(&eye)];
        let xg = gaussian_mat(2, 2, 1);
        let x = gather_rows(&rt, &xg, &[(0, 2)]);
        let mut y = VarBatch::zeros_uniform_cols(vec![2], 2);
        y.for_each_mut(false, |_, mut m| m.fill(1.0));
        bsr_gemm(&rt, &pattern, &blocks, &x, &mut y, 2.0);
        let got = y.to_mat(0);
        assert!((got[(0, 0)] - (1.0 + 2.0 * xg[(0, 0)])).abs() < 1e-14);
    }
}
