//! Device-sharding plumbing: the dispatch interface the batched kernels use
//! when the runtime executes on a [`crate::Backend::Sharded`] backend, plus
//! the explicit cross-device [`Transfer`] records of §IV.B.
//!
//! The paper's multi-GPU extension divides each level's batches across
//! devices in contiguous node chunks (§IV.A level-contiguous storage makes
//! that the natural decomposition) and communicates only at two points: the
//! `batchedBSRGemm` fetch of off-device partner inputs `Ω_b`, and the
//! line-24 child stacking when a sibling pair straddles a chunk boundary.
//! This module defines:
//!
//! * [`ShardDispatch`] — the object-safe interface a device fabric
//!   implements (the real fabric of worker threads lives in the `h2_sched`
//!   crate; this crate only needs to *drive* it). The batched kernels in
//!   [`crate::ops`] and [`crate::bsr`] shard their per-entry work through
//!   it and account modeled work/traffic with the *same formulas* as the
//!   [`crate::multidev`] simulator, which is what makes measured and
//!   simulated totals directly comparable;
//! * [`Transfer`] — one explicit cross-device copy (what a real multi-GPU
//!   build would issue as a peer-to-peer `cudaMemcpyAsync`);
//! * [`chunk_bounds`] — the contiguous chunk decomposition consistent with
//!   [`crate::multidev::owner`].
//!
//! ## Pipelined dispatch
//!
//! A dispatcher may run in one of two [`PipelineMode`]s. In
//! [`PipelineMode::Synchronous`] every batched kernel is fork-join:
//! [`ShardDispatch::run`] blocks until all per-device jobs complete, and
//! [`ShardDispatch::push_transfer`] services the copy inline (the transfer
//! is *exposed* on the critical path). In [`PipelineMode::Pipelined`] the
//! kernels instead use the ordered per-device queues directly:
//!
//! * [`ShardDispatch::prefetch`] issues a transfer descriptor *ahead* of the
//!   compute that consumes it and returns a ticket; the copy proceeds
//!   asynchronously (a virtual copy engine / DMA stream);
//! * [`ShardDispatch::enqueue`] submits a job to one device's ordered queue
//!   without blocking, gated on a set of prefetch tickets — the device
//!   stalls only if the copy has not landed by the time the job reaches the
//!   head of its queue;
//! * [`ShardDispatch::flush`] is the explicit barrier, issued once per
//!   kernel call (or once per overlapped phase group) instead of once per
//!   launch.
//!
//! The construction level loop additionally *hints* the next level's
//! `Ω_b`-fetch descriptors as soon as the current level's IDs fix the block
//! sizes ([`ShardDispatch::hint_prefetch`]); `batchedBSRGemm` claims the
//! hinted tickets with [`ShardDispatch::claim_or_fetch`], so the copies run
//! behind the current level's `batchedGen`/ID compute. Hints and claims are
//! keyed by [`FetchKey`] and deduplicated per `(device, partner)` by
//! [`FetchPlanner`] — the *same* planner both sides drive, which is what
//! keeps the recorded byte totals exactly equal to the
//! [`crate::multidev::simulate`] prediction whether or not a descriptor was
//! prefetched early.

use crate::multidev::{cost, owner};
use h2_dense::Precision;
use std::collections::HashSet;
use std::sync::Arc;

/// Execution discipline of a [`ShardDispatch`] fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Fork-join per batched kernel; transfers serviced inline (exposed).
    Synchronous,
    /// Ordered per-device queues with asynchronous prefetched transfers;
    /// barriers only at [`ShardDispatch::flush`] points.
    Pipelined,
}

/// Why a cross-device copy happened (the §IV.B communication taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// `batchedBSRGemm` fetching the input block `Ω_b` (or `Ψ_b` for the
    /// column stream) of an off-device partner.
    OmegaFetch,
    /// Line-24 child stacking across a chunk boundary (one sibling's
    /// samples/inputs gathered onto the parent's device).
    ChildGather,
    /// Matvec downsweep/reduction traffic: a device reading a parent's
    /// `ŷ` partial sum owned by another device.
    PartialSum,
    /// Krylov vector staging: scattering an iterate/basis chunk to a device
    /// (or gathering it back) when the solver round-trips whole vectors
    /// through the shared host workspace, plus the boundary slivers and
    /// scalar reductions that remain once shards are device-resident.
    VectorStage,
}

impl TransferKind {
    pub fn name(self) -> &'static str {
        match self {
            TransferKind::OmegaFetch => "omega-fetch",
            TransferKind::ChildGather => "child-gather",
            TransferKind::PartialSum => "partial-sum",
            TransferKind::VectorStage => "vector-stage",
        }
    }

    /// Stable small integer used in fault-site fingerprints.
    fn tag(self) -> u8 {
        match self {
            TransferKind::OmegaFetch => 0,
            TransferKind::ChildGather => 1,
            TransferKind::PartialSum => 2,
            TransferKind::VectorStage => 3,
        }
    }
}

/// One explicit cross-device copy.
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// Device the data is resident on.
    pub src: usize,
    /// Device that needs it.
    pub dst: usize,
    pub bytes: u64,
    pub kind: TransferKind,
    /// Element width the block is shipped at; `bytes` is already expressed
    /// at this width (the descriptor carries the precision so accounting
    /// and assertions can audit the wire format, not to rescale bytes).
    pub prec: Precision,
}

impl Transfer {
    /// Fault-site fingerprint of this descriptor: the identity the
    /// deterministic fault machinery keys its per-occurrence draws on
    /// ([`h2_fault::transfer_fingerprint`]). Interleaving-independent —
    /// two transfers with equal kind, endpoints, bytes, and wire precision
    /// share a fingerprint and are told apart by occurrence index, which
    /// is what lets a closed-form transfer census replay the executor's
    /// exact fault stream.
    pub fn fingerprint(&self) -> u64 {
        h2_fault::transfer_fingerprint(
            self.kind.tag(),
            self.src as u64,
            self.dst as u64,
            self.bytes,
            self.prec.bytes() as u8,
        )
    }
}

/// A unit of work bound for one virtual device's worker thread. Borrows are
/// allowed because [`ShardDispatch::run`] blocks until every job completes
/// (and every [`ShardDispatch::enqueue`] is flushed before its borrows end —
/// the `unsafe` contract of that method).
pub type ShardJob<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Identity of one deduplicated partner fetch, shared between the
/// construction's early *hint* and `batchedBSRGemm`'s *claim*. Including the
/// byte count makes a stale hint (e.g. after an adaptive sampling round
/// changed the block width) miss instead of mis-matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FetchKey {
    /// Sketch stream the fetch serves (0 = row `Ω`, 1 = column `Ψ`).
    pub stream: u8,
    /// Destination device.
    pub dst: usize,
    /// Local index of the fetched partner in the level's column population.
    pub partner: usize,
    /// Size of the fetched block.
    pub bytes: u64,
}

/// Deduplicated `(device, partner)` fetch planning for one `batchedBSRGemm`
/// call — the single source of the Ω/Ψ transfer descriptors, driven
/// identically by the kernel itself and by the construction's early
/// prefetch hint, with the simulator's own owner mapping and byte formula.
pub struct FetchPlanner {
    stream: u8,
    n_rows: usize,
    n_partners: usize,
    devices: usize,
    wire: Precision,
    seen: HashSet<(usize, usize)>,
    plan: Vec<(FetchKey, Transfer)>,
}

impl FetchPlanner {
    pub fn new(
        stream: u8,
        n_rows: usize,
        n_partners: usize,
        devices: usize,
        wire: Precision,
    ) -> Self {
        FetchPlanner {
            stream,
            n_rows,
            n_partners,
            devices,
            wire,
            seen: HashSet::new(),
            plan: Vec::new(),
        }
    }

    /// Owner device of BSR row `row` (the simulator's contiguous chunks).
    pub fn owner_of_row(&self, row: usize) -> usize {
        owner(row, self.n_rows, self.devices)
    }

    /// Visit one `(row, partner)` block: records a fetch descriptor the
    /// first time an off-device partner is needed by a device.
    pub fn visit(&mut self, row: usize, partner: usize, partner_rows: usize, partner_cols: usize) {
        let dev = self.owner_of_row(row);
        let dev_b = owner(partner, self.n_partners.max(self.n_rows), self.devices);
        if dev_b != dev && self.seen.insert((dev, partner)) {
            let bytes = cost::fetch_bytes_p(partner_rows, partner_cols, self.wire);
            self.plan.push((
                FetchKey {
                    stream: self.stream,
                    dst: dev,
                    partner,
                    bytes,
                },
                Transfer {
                    src: dev_b,
                    dst: dev,
                    bytes,
                    kind: TransferKind::OmegaFetch,
                    prec: self.wire,
                },
            ));
        }
    }

    /// The deduplicated fetch plan, in first-need order.
    pub fn into_plan(self) -> Vec<(FetchKey, Transfer)> {
        self.plan
    }
}

/// The interface of a device fabric: N virtual devices, each with a worker
/// thread, a memory arena and a work/traffic account. Implemented by
/// `h2_sched::DeviceFabric`; consumed by the batched kernels.
pub trait ShardDispatch: Send + Sync {
    /// Number of virtual devices.
    fn devices(&self) -> usize;

    /// Execute `jobs[d]` on device `d`'s worker thread (at most
    /// [`ShardDispatch::devices`] jobs) and block until all complete.
    fn run<'a>(&self, jobs: Vec<ShardJob<'a>>);

    /// Enqueue an explicit cross-device transfer on the fabric's queue.
    fn push_transfer(&self, t: Transfer);

    /// Attribute `flops` of modeled batched-kernel work to device `dev`
    /// (the simulator's flop formulas, so totals are comparable).
    fn add_flops(&self, dev: usize, flops: f64);

    /// Attribute `entries` of `batchedGen` entry evaluations to device
    /// `dev` (converted to flop-equivalents by `DeviceModel::entry_cost`).
    fn add_gen_entries(&self, dev: usize, entries: f64);

    /// Record `n` kernel launches on device `dev`.
    fn add_launches(&self, dev: usize, n: usize);

    /// Charge `bytes` of workspace to device `dev`'s arena (freed at the
    /// next epoch boundary, mirroring the per-level single allocation).
    fn arena_alloc(&self, dev: usize, bytes: usize);

    /// Close the current accounting epoch (one construction level / matvec
    /// phase) under `label`, snapshotting per-device counters.
    fn epoch(&self, label: &str);

    /// Wire precision every cross-device block ships at (and the width the
    /// transfer-landing arena charges use). Defaults to the historical f64
    /// so fabrics that predate the precision tier keep their byte totals.
    fn wire(&self) -> Precision {
        Precision::F64
    }

    // ---- pipelined dispatch (defaults degrade to the synchronous path,
    // so a fork-join-only fabric keeps working unchanged) ----

    /// The fabric's execution discipline.
    fn mode(&self) -> PipelineMode {
        PipelineMode::Synchronous
    }

    /// Issue a transfer descriptor ahead of the compute consuming it and
    /// return a completion ticket for [`ShardDispatch::enqueue`] deps
    /// (0 = already complete). The synchronous default services it inline.
    fn prefetch(&self, t: Transfer) -> u64 {
        self.push_transfer(t);
        0
    }

    /// Submit `job` to device `dev`'s ordered queue without blocking, gated
    /// on the tickets in `deps` (prefetch tickets and/or prior jobs'
    /// completion tickets — both live on one board). Returns the job's own
    /// completion ticket (0 when the dispatcher ran it inline).
    ///
    /// # Safety
    ///
    /// The caller must call [`ShardDispatch::flush`] (or, inside a chain
    /// scope, [`ShardDispatch::chain_end`]) before any borrow captured by
    /// `job` ends — the fabric erases the job's lifetime to move it onto
    /// the worker thread. Every batched kernel upholds this by flushing
    /// before it returns (or before the borrowed buffers of an overlapped
    /// phase group go out of scope).
    ///
    /// The synchronous default runs the job inline on the calling thread,
    /// which trivially satisfies the contract.
    unsafe fn enqueue<'a>(&self, dev: usize, deps: &[u64], job: ShardJob<'a>) -> u64 {
        let _ = (dev, deps);
        job();
        0
    }

    /// Kernel-boundary synchronization: a barrier that blocks until every
    /// enqueued job has completed (and propagates any worker panic) —
    /// except inside an open chain scope, where a chaining fabric records a
    /// dependency boundary instead and returns immediately.
    fn flush(&self) {}

    /// Open a cross-kernel chain scope: until [`ShardDispatch::chain_end`],
    /// `flush` records kernel boundaries (the finished kernel's job tickets
    /// become automatic dependencies for the next kernel's jobs on other
    /// devices) instead of blocking the host. No-op by default and on
    /// synchronous fabrics, where every kernel stays fork-join.
    fn chain_begin(&self) {}

    /// Close the chain scope and run the real barrier, discharging the
    /// borrow contract of every `enqueue` issued inside the scope. The
    /// default is a plain flush.
    fn chain_end(&self) {
        self.flush();
    }

    /// Early prefetch hint: start the copy for `key` now (tagged to the
    /// issuing epoch, charged to the destination's *standby* arena bank) so
    /// a later [`ShardDispatch::claim_or_fetch`] with the same key finds it
    /// done. No-op by default.
    fn hint_prefetch(&self, key: FetchKey, t: Transfer) {
        let _ = (key, t);
    }

    /// Claim a previously hinted prefetch, or — on a miss — record the
    /// transfer and charge the destination arena as a fresh fetch. Returns
    /// the completion ticket (0 = complete).
    fn claim_or_fetch(&self, key: FetchKey, t: Transfer) -> u64 {
        let _ = key;
        self.push_transfer(t);
        self.arena_alloc(t.dst, t.bytes as usize);
        0
    }

    /// Drop all unclaimed hints of `stream`, removing their transfer
    /// records so a stale hint (adaptive round changed the sample width)
    /// can never double-count bytes. No-op by default.
    fn cancel_hints(&self, stream: u8) {
        let _ = stream;
    }

    // ---- resilience (defaults describe a fault-free, statically-routed
    // fabric, so existing dispatchers keep working unchanged) ----

    /// The active fault-injection plan, if the fabric is running a seeded
    /// chaos schedule ([`h2_fault::FaultPlan`]). Kernels consult this to
    /// inject/detect output poison at the producing site. Default: none.
    fn fault_plan(&self) -> Option<Arc<h2_fault::FaultPlan>> {
        None
    }

    /// Advance and return the occurrence index of fault site `site`
    /// (a fingerprint from [`h2_fault::poison_site`] or
    /// [`Transfer::fingerprint`]) — the deterministic replay clock.
    /// Default: always 0 (no occurrence tracking).
    fn fault_occurrence(&self, site: u64) -> u32 {
        let _ = site;
        0
    }

    /// Version of the logical-to-physical reshard map. Bumps when a device
    /// fail-stop makes survivors adopt the lost shard's node ownership;
    /// the construction level loop observes a change and replays only the
    /// in-flight level from its last sealed checkpoint. Default: 0
    /// (static map, never resharded).
    fn reshard_version(&self) -> u64 {
        0
    }

    /// Record one bounded-recovery event at a named site (poison
    /// recompute, shard adoption) for the fabric's fault counters and
    /// trace stream. No-op by default.
    fn note_recovery(&self, site: &str) {
        let _ = site;
    }
}

/// Contiguous per-device chunk bounds for `n` items over `devices` devices:
/// device `d` owns items `bounds[d]..bounds[d + 1]`. Consistent with
/// [`crate::multidev::owner`]: `owner(i, n, devices) == d` exactly for `i`
/// in that range.
pub fn chunk_bounds(n: usize, devices: usize) -> Vec<usize> {
    let d = devices.max(1);
    if n == 0 {
        return vec![0; d + 1];
    }
    if d == 1 {
        return vec![0, n];
    }
    (0..=d).map(|dev| (dev * n).div_ceil(d)).collect()
}

/// Shorthand used by the kernels: the dispatcher when the runtime is
/// sharded.
pub type SharedDispatch = Arc<dyn ShardDispatch>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidev::owner;

    #[test]
    fn chunk_bounds_agree_with_owner() {
        for &(n, d) in &[(10usize, 3usize), (7, 7), (2, 7), (0, 4), (16, 1), (5, 8)] {
            let b = chunk_bounds(n, d);
            assert_eq!(b.len(), d + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[d], n);
            for dev in 0..d {
                assert!(b[dev] <= b[dev + 1], "bounds must be monotone");
                for i in b[dev]..b[dev + 1] {
                    assert_eq!(owner(i, n, d), dev, "item {i} of {n} on {d} devices");
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_balanced_within_one() {
        let b = chunk_bounds(10, 3);
        let sizes: Vec<usize> = (0..3).map(|d| b[d + 1] - b[d]).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
