//! Batched kernels over [`VarBatch`] workspaces.
//!
//! Each function is the Rust analogue of one blue-green comment in
//! Algorithm 1 of the paper: it records exactly the kernel launches the GPU
//! implementation would issue, marshals its operands, and runs the per-entry
//! work on the runtime's backend.

use crate::batch::{cost_chunk_bounds, VarBatch};
use crate::multidev::{cost, owner};
use crate::profile::Kernel;
use crate::runtime::Runtime;
use crate::shard::{chunk_bounds, ShardDispatch, ShardJob, Transfer, TransferKind};
use h2_dense::cpqr::{row_id, RowId, Truncation};
use h2_dense::qr::qr_in_place;
use h2_dense::{gemm, EntryAccess, Mat, MatMut, MatRef, Op};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Poison-site family of `batchedRand` columns (see [`h2_fault::poison_site`]).
const RAND_POISON_SALT: u64 = 0x7A9D_0001;
/// Poison-site family of `batchedGen` blocks.
const GEN_POISON_SALT: u64 = 0x7A9D_0002;

/// Debug-mode NaN tripwire at a batched-kernel phase boundary: a poisoned
/// value must be caught and healed at its injection site (the finite
/// checks in [`rand_mat`] / [`batched_gen`]), never propagate silently
/// into the next phase. Host-side scan, so it only runs where the host
/// may read the batch — the callers skip it on a sharded backend, whose
/// chain scopes forbid reading job-written data before the barrier.
#[cfg(debug_assertions)]
pub(crate) fn debug_assert_batch_finite(out: &VarBatch, ctx: &str) {
    for i in 0..out.count() {
        let m = out.mat(i);
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                let v = m.at(r, c);
                assert!(
                    v.is_finite(),
                    "{ctx}: non-finite value {v} at ({r}, {c}) of batch entry {i}"
                );
            }
        }
    }
}

/// Execution-cost estimate for chunking entry `i`: the kernel's modeled
/// flops when it has any, otherwise the entry's scalar footprint (the
/// bandwidth proxy for marshaling kernels, whose flop formula is zero).
fn exec_cost(flops: f64, elems: usize) -> f64 {
    flops.max(elems as f64)
}

/// Run a per-entry mutation over `out` on the runtime's backend.
///
/// Work *accounting* on the sharded backend follows the §IV.A contiguous
/// chunk decomposition ([`chunk_bounds`]): each entry's output bytes and
/// `flops_of(i)` are charged to its [`crate::multidev::owner`] device with
/// the *simulator's* formulas — which is what keeps the executor's measured
/// totals bit-identical to [`crate::multidev::simulate`] predictions. Work
/// *execution* is chunked separately and cost-aware: contiguous runs of
/// roughly equal estimated cost ([`crate::batch::cost_chunk_bounds`]) go to
/// the worker threads, so one device is no longer stuck with the handful of
/// huge top-level entries while the rest idle over leaves. On the threaded
/// backend the same cost chunking feeds the work-stealing pool.
pub(crate) fn batch_for_each_mut<F, C>(rt: &Runtime, out: &mut VarBatch, flops_of: C, f: F)
where
    F: Fn(usize, MatMut<'_>) + Sync + Send,
    C: Fn(usize) -> f64,
{
    batch_for_each_mut_deps(rt, out, &[], flops_of, f)
}

/// [`batch_for_each_mut`] with prefetch-ticket dependencies: on a pipelined
/// sharded backend the per-device jobs are gated on `deps` (transfers
/// issued ahead of this kernel), so a marshaling job stalls only if its
/// inputs' virtual copies have not landed yet.
pub(crate) fn batch_for_each_mut_deps<F, C>(
    rt: &Runtime,
    out: &mut VarBatch,
    deps: &[u64],
    flops_of: C,
    f: F,
) where
    F: Fn(usize, MatMut<'_>) + Sync + Send,
    C: Fn(usize) -> f64,
{
    let Some(disp) = rt.shard_dispatch() else {
        if !rt.is_parallel() || out.count() < 2 {
            // Sequential (or trivial) path: no chunking, no cost vector.
            out.for_each_mut(false, f);
            return;
        }
        let costs: Vec<f64> = (0..out.count())
            .map(|i| exec_cost(flops_of(i), out.rows_of(i) * out.cols_of(i)))
            .collect();
        out.for_each_mut_costed(true, |i| costs[i], f);
        return;
    };
    let devices = disp.devices();
    let n = out.count();
    let bounds = chunk_bounds(n, devices);
    for dev in 0..devices {
        let (b, e) = (bounds[dev], bounds[dev + 1]);
        if e == b {
            continue;
        }
        let bytes: usize = (b..e).map(|i| out.rows_of(i) * out.cols_of(i) * 8).sum();
        disp.arena_alloc(dev, bytes);
        let fl: f64 = (b..e).map(&flops_of).sum();
        if fl > 0.0 {
            disp.add_flops(dev, fl);
        }
        disp.add_launches(dev, 1);
    }
    let exec_bounds = cost_chunk_bounds(n, devices, |i| {
        exec_cost(flops_of(i), out.rows_of(i) * out.cols_of(i))
    });
    // Jobs share ownership of the kernel body: inside a chain scope the
    // closing `flush` records a boundary instead of blocking, so the jobs
    // may outlive this frame — `f` must live on the heap, not here.
    let f = std::sync::Arc::new(f);
    let mut entries = out.split_mut().into_iter();
    for dev in 0..devices {
        let chunk: Vec<MatMut<'_>> = entries
            .by_ref()
            .take(exec_bounds[dev + 1] - exec_bounds[dev])
            .collect();
        let start = exec_bounds[dev];
        let f = f.clone();
        let job: ShardJob<'_> = Box::new(move || {
            for (k, m) in chunk.into_iter().enumerate() {
                f(start + k, m);
            }
        });
        // SAFETY: barriered by the flush below — or, inside a chain scope,
        // by `chain_end` — before the borrows captured by `f`/`chunk` end
        // (the chain caller keeps them alive past `chain_end`).
        unsafe { disp.enqueue(dev, deps, job) };
    }
    disp.flush();
}

/// Per-entry map over a batch on the runtime's backend, with sharded-mode
/// work accounting like [`batch_for_each_mut`] (owner-attributed, the
/// simulator's chunks) and cost-aware execution chunking on the parallel
/// and sharded backends.
pub(crate) fn batch_map<R, F, C>(rt: &Runtime, batch: &VarBatch, flops_of: C, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, MatRef<'_>) -> R + Sync + Send,
    C: Fn(usize) -> f64,
{
    let cost = |i: usize| exec_cost(flops_of(i), batch.rows_of(i) * batch.cols_of(i));
    let Some(disp) = rt.shard_dispatch() else {
        return rt.map_index_costed(batch.count(), cost, |i| f(i, batch.mat(i)));
    };
    let devices = disp.devices();
    let bounds = chunk_bounds(batch.count(), devices);
    for dev in 0..devices {
        let (b, e) = (bounds[dev], bounds[dev + 1]);
        if e == b {
            continue;
        }
        let fl: f64 = (b..e).map(&flops_of).sum();
        if fl > 0.0 {
            disp.add_flops(dev, fl);
        }
        disp.add_launches(dev, 1);
    }
    // map_index_costed shards its jobs over equal-cost chunks; the owner
    // accounting above is untouched by the execution chunking.
    rt.map_index_costed(batch.count(), cost, |i| f(i, batch.mat(i)))
}

/// `batchedRand`: generate a global `n x d` standard-normal block.
///
/// Columns are generated from independent seed-derived streams so the result
/// is identical on both backends (the parallel-safe analogue of cuRAND's
/// counter-based generators).
pub fn rand_mat(rt: &Runtime, n: usize, d: usize, seed: u64) -> Mat {
    rt.launch(Kernel::Rand);
    let mut y = Mat::zeros(n, d);
    // Split into per-column tasks with deterministic seeds.
    let cols: Vec<&mut [f64]> = y.as_mut_slice().chunks_mut(n.max(1)).collect();
    let run = |(j, col): (usize, &mut [f64])| {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(j as u64 + 1)));
        h2_dense::rand::fill_gaussian_slice(col, &mut rng);
    };
    if let Some(disp) = rt.shard_dispatch() {
        // Shard columns in contiguous chunks; per-column seeds keep the
        // result identical to the other backends whatever the chunking.
        let devices = disp.devices();
        let bounds = chunk_bounds(cols.len(), devices);
        let run = &run;
        let mut iter = cols.into_iter().enumerate();
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
        for dev in 0..devices {
            let chunk: Vec<(usize, &mut [f64])> =
                iter.by_ref().take(bounds[dev + 1] - bounds[dev]).collect();
            if !chunk.is_empty() {
                disp.add_launches(dev, 1);
            }
            jobs.push(Box::new(move || chunk.into_iter().for_each(run)));
        }
        disp.run(jobs);
        poison_and_heal_rand(disp.as_ref(), &mut y, n, seed);
    } else if rt.is_parallel() {
        use rayon::prelude::*;
        cols.into_par_iter().enumerate().for_each(run);
    } else {
        cols.into_iter().enumerate().for_each(run);
    }
    y
}

/// Kernel-poison injection + recovery for `batchedRand` under an active
/// [`h2_fault::FaultPlan`]: the plan deterministically NaN-poisons whole
/// columns of the freshly generated block; a finite check over every
/// column detects the damage and each poisoned column is re-sketched by
/// re-running its seed-derived stream — the per-column counter-based
/// seeding makes the recompute *exact*, so the healed block is bit-
/// identical to a fault-free run (the acceptance contract of the chaos
/// tests; a production system would instead draw replacement columns
/// through the adaptive incremental-sampling path). The recompute's cost
/// is not re-charged to the accounts — recovery compute is treated as
/// off-schedule, like the detection scans (a documented modeling
/// simplification; the re-transfer traffic of the fabric layer *is*
/// charged, because bytes are the trust invariant).
fn poison_and_heal_rand(disp: &dyn ShardDispatch, y: &mut Mat, n: usize, seed: u64) {
    let Some(plan) = disp.fault_plan() else {
        return;
    };
    if plan.poison_rate <= 0.0 || n == 0 {
        return;
    }
    let d = y.cols();
    for j in 0..d {
        let site = h2_fault::poison_site(RAND_POISON_SALT, n as u64, j as u64);
        let occ = disp.fault_occurrence(site);
        if plan.poison_hit(site, occ) {
            y[(0, j)] = f64::NAN;
        }
    }
    for (j, col) in y.as_mut_slice().chunks_mut(n).enumerate() {
        if col.iter().all(|v| v.is_finite()) {
            continue;
        }
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(j as u64 + 1)));
        h2_dense::rand::fill_gaussian_slice(col, &mut rng);
        debug_assert!(col.iter().all(|v| v.is_finite()));
        disp.note_recovery("rand_mat");
    }
}

/// Marshal: gather row ranges of a global `n x d` matrix into a batch
/// (`Ω¹_τ = Ω(I_τ, :)`, Algorithm 1 line 5). `ranges[i]` is the contiguous
/// row range of entry `i` (clusters own contiguous index ranges in tree
/// order).
pub fn gather_rows(rt: &Runtime, src: &Mat, ranges: &[(usize, usize)]) -> VarBatch {
    rt.launch(Kernel::PrefixSum);
    rt.launch(Kernel::Marshal);
    let rows: Vec<usize> = ranges.iter().map(|&(b, e)| e - b).collect();
    let d = src.cols();
    let mut out = VarBatch::zeros_uniform_cols(rows, d);
    batch_for_each_mut(
        rt,
        &mut out,
        |_| 0.0,
        move |i, mut m| {
            let (b, _e) = ranges[i];
            m.copy_from(src.view(b, 0, m.rows(), d));
        },
    );
    out
}

/// Marshal: stack pairs (or singletons) of child entries into parent entries
/// (`Y^l_τ = [Y^l_ν1; Y^l_ν2]`, Algorithm 1 line 24).
/// `children[p]` lists the child entry indices of parent `p`.
pub fn stack_children(rt: &Runtime, child: &VarBatch, children: &[Vec<usize>]) -> VarBatch {
    rt.launch(Kernel::PrefixSum);
    rt.launch(Kernel::Marshal);
    let d = if child.count() > 0 {
        child.cols_of(0)
    } else {
        0
    };
    let rows: Vec<usize> = children
        .iter()
        .map(|cs| cs.iter().map(|&c| child.rows_of(c)).sum())
        .collect();
    let mut out = VarBatch::zeros_uniform_cols(rows, d);
    let mut deps: Vec<u64> = Vec::new();
    if let Some(disp) = rt.shard_dispatch() {
        // Line-24 boundary gathers: a child owned by a different device than
        // its parent is copied over (the simulator's sibling-merge traffic).
        // On the pipelined fabric these become prefetch descriptors issued
        // ahead of the stacking jobs, which are then gated on the tickets.
        let pipelined = disp.mode() == crate::shard::PipelineMode::Pipelined;
        let devices = disp.devices();
        let (np, nc) = (children.len(), child.count());
        for (p, cs) in children.iter().enumerate() {
            let dp = owner(p, np, devices);
            for &c in cs {
                let dc = owner(c, nc, devices);
                if dc != dp {
                    let wire = disp.wire();
                    let bytes = cost::fetch_bytes_p(child.rows_of(c), d, wire);
                    let t = Transfer {
                        src: dc,
                        dst: dp,
                        bytes,
                        kind: TransferKind::ChildGather,
                        prec: wire,
                    };
                    if pipelined {
                        let ticket = disp.prefetch(t);
                        if ticket != 0 {
                            deps.push(ticket);
                        }
                    } else {
                        disp.push_transfer(t);
                    }
                    disp.arena_alloc(dp, bytes as usize);
                }
            }
        }
    }
    batch_for_each_mut_deps(
        rt,
        &mut out,
        &deps,
        |_| 0.0,
        move |p, mut m| {
            let mut off = 0;
            for &c in &children[p] {
                let cm = child.mat(c);
                m.rb_mut()
                    .into_view(off, 0, cm.rows(), cm.cols())
                    .copy_from(cm);
                off += cm.rows();
            }
        },
    );
    out
}

/// Batched QR convergence statistic: per entry, `min_i |R_ii|` of the
/// Householder QR of the entry (Algorithm 1 lines 11/29). Entries with zero
/// rows or columns report `0.0` (trivially converged).
pub fn qr_min_rdiag(rt: &Runtime, batch: &VarBatch) -> Vec<f64> {
    rt.launch(Kernel::Qr);
    // The shared convergence-QR cost formula.
    let flops = |i: usize| cost::qr_flops(batch.rows_of(i), batch.cols_of(i));
    batch_map(rt, batch, flops, |_, m| {
        if m.rows() == 0 || m.cols() == 0 {
            return 0.0;
        }
        let mut work = m.to_mat();
        let tau = qr_in_place(&mut work.rm());
        (0..tau.len())
            .map(|i| work[(i, i)].abs())
            .fold(f64::INFINITY, f64::min)
    })
}

/// `batchedID`: batched row interpolative decomposition.
///
/// The GPU implementation first batch-transposes the samples for coalesced
/// access and then runs a batched column-pivoted QR; we record both launches
/// and return the per-entry [`RowId`]s.
pub fn batched_row_id(rt: &Runtime, batch: &VarBatch, rule: Truncation) -> Vec<RowId> {
    rt.launch(Kernel::Transpose);
    rt.launch(Kernel::Id);
    // The shared batched-ID cost formula.
    let flops = |i: usize| cost::id_flops(batch.rows_of(i), batch.cols_of(i));
    batch_map(rt, batch, flops, |_, m| row_id(&m.to_mat(), rule))
}

/// `batchedShrink`: gather skeleton rows, `Y^{l+1}_τ = Y^loc_τ(J_τ, :)`
/// (Algorithm 1 lines 17/35). On the GPU this is a column swap on the
/// transposed samples plus a transpose back; we record the same launches.
pub fn shrink_rows(rt: &Runtime, batch: &VarBatch, skels: &[&[usize]]) -> VarBatch {
    assert_eq!(batch.count(), skels.len());
    rt.launch(Kernel::Shrink);
    rt.launch(Kernel::Transpose);
    let d = if batch.count() > 0 {
        batch.cols_of(0)
    } else {
        0
    };
    let rows: Vec<usize> = skels.iter().map(|s| s.len()).collect();
    let mut out = VarBatch::zeros_uniform_cols(rows, d);
    batch_for_each_mut(
        rt,
        &mut out,
        |_| 0.0,
        move |i, mut m| {
            let src = batch.mat(i);
            for (r, &j) in skels[i].iter().enumerate() {
                for c in 0..d {
                    *m.at_mut(r, c) = src.at(j, c);
                }
            }
        },
    );
    out
}

/// `batchedGemm` (transposed-A form): per entry `out_i = A_i^T X_i`
/// (`Ω^{l+1}_τ = U_τ^T Ω^l_τ` / `E^T Ω`, Algorithm 1 lines 18/36).
pub fn gemm_at_x(rt: &Runtime, a: &[Mat], x: &VarBatch) -> VarBatch {
    assert_eq!(a.len(), x.count());
    rt.launch(Kernel::Gemm);
    let d = if x.count() > 0 { x.cols_of(0) } else { 0 };
    let rows: Vec<usize> = a.iter().map(|m| m.cols()).collect();
    let mut out = VarBatch::zeros_uniform_cols(rows, d);
    // The shared upsweep-GEMM cost formula.
    let flops = |i: usize| cost::upsweep_flops(a[i].rows(), a[i].cols(), d);
    batch_for_each_mut(rt, &mut out, flops, move |i, m| {
        gemm(Op::Trans, Op::NoTrans, 1.0, a[i].rf(), x.mat(i), 0.0, m);
    });
    // Phase-boundary tripwire: upsweep outputs feed the next level's
    // sketches, so a NaN here means a poison escaped its injection-site
    // heal. Host-readable only off the sharded backend (chain scopes).
    #[cfg(debug_assertions)]
    if rt.shard_dispatch().is_none() {
        debug_assert_batch_finite(&out, "upsweep gemm");
    }
    out
}

/// Horizontal concatenation of two batches with matching entry row counts:
/// the sample-widening step of adaptive construction (`updateSamples`).
pub fn hcat_batches(rt: &Runtime, a: &VarBatch, b: &VarBatch) -> VarBatch {
    assert_eq!(a.count(), b.count(), "hcat: batch count mismatch");
    rt.launch(Kernel::PrefixSum);
    rt.launch(Kernel::Marshal);
    let rows: Vec<usize> = (0..a.count()).map(|i| a.rows_of(i)).collect();
    let cols: Vec<usize> = (0..a.count())
        .map(|i| a.cols_of(i) + b.cols_of(i))
        .collect();
    let mut out = VarBatch::zeros(rows, cols);
    batch_for_each_mut(
        rt,
        &mut out,
        |_| 0.0,
        move |i, mut m| {
            assert_eq!(a.rows_of(i), b.rows_of(i), "hcat: entry {i} row mismatch");
            let (ca, cb) = (a.cols_of(i), b.cols_of(i));
            m.rb_mut()
                .into_view(0, 0, a.rows_of(i), ca)
                .copy_from(a.mat(i));
            m.rb_mut()
                .into_view(0, ca, b.rows_of(i), cb)
                .copy_from(b.mat(i));
        },
    );
    // Phase-boundary tripwire: widened samples enter the adaptive
    // convergence QR next; see the note in [`gemm_at_x`].
    #[cfg(debug_assertions)]
    if rt.shard_dispatch().is_none() {
        debug_assert_batch_finite(&out, "sample widening hcat");
    }
    out
}

/// Specification of one block to evaluate with `batchedGen`.
pub struct GenBlock {
    /// Global (permuted) row indices.
    pub rows: Vec<usize>,
    /// Global (permuted) column indices.
    pub cols: Vec<usize>,
}

/// `batchedGen`: evaluate a batch of sub-blocks of the matrix with a single
/// launch (Algorithm 1 lines 8/41).
pub fn batched_gen(rt: &Runtime, gen: &dyn EntryAccess, blocks: &[GenBlock]) -> Vec<Mat> {
    rt.launch(Kernel::Gen);
    let Some(disp) = rt.shard_dispatch() else {
        return rt.map_index(blocks.len(), |i| {
            gen.block_mat(&blocks[i].rows, &blocks[i].cols)
        });
    };
    // Generator blocks are distributed round-robin like the simulator (the
    // generator itself is device-resident, §IV.A — no communication).
    let devices = disp.devices();
    for (i, b) in blocks.iter().enumerate() {
        let dev = i % devices;
        disp.add_gen_entries(dev, cost::gen_entries(b.rows.len(), b.cols.len()));
        disp.arena_alloc(dev, b.rows.len() * b.cols.len() * 8);
    }
    let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
    {
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
        for (dev, slot) in results.iter_mut().enumerate() {
            if dev < blocks.len() {
                disp.add_launches(dev, 1);
            }
            jobs.push(Box::new(move || {
                let mut i = dev;
                while i < blocks.len() {
                    slot.push((i, gen.block_mat(&blocks[i].rows, &blocks[i].cols)));
                    i += devices;
                }
            }));
        }
        disp.run(jobs);
    }
    let mut out: Vec<Option<Mat>> = (0..blocks.len()).map(|_| None).collect();
    for (i, m) in results.into_iter().flatten() {
        out[i] = Some(m);
    }
    let mut mats: Vec<Mat> = out
        .into_iter()
        .map(|o| o.expect("every block generated"))
        .collect();
    poison_and_heal_gen(disp.as_ref(), gen, blocks, &mut mats);
    mats
}

/// Kernel-poison injection + recovery for `batchedGen`, mirroring
/// [`poison_and_heal_rand`]: whole generated blocks are NaN-poisoned by
/// the plan, detected by a finite scan, and healed by re-evaluating the
/// block's entries — the generator is pure, so the recompute is exact and
/// the healed batch is bit-identical to a fault-free run. Recovery
/// compute is off-schedule (not re-charged as `gen_entries`).
fn poison_and_heal_gen(
    disp: &dyn ShardDispatch,
    gen: &dyn EntryAccess,
    blocks: &[GenBlock],
    out: &mut [Mat],
) {
    let Some(plan) = disp.fault_plan() else {
        return;
    };
    if plan.poison_rate <= 0.0 {
        return;
    }
    for (i, b) in blocks.iter().enumerate() {
        let site = h2_fault::poison_site(
            GEN_POISON_SALT,
            i as u64,
            ((b.rows.len() as u64) << 32) | b.cols.len() as u64,
        );
        let occ = disp.fault_occurrence(site);
        if plan.poison_hit(site, occ) && !b.rows.is_empty() && !b.cols.is_empty() {
            out[i][(0, 0)] = f64::NAN;
        }
    }
    for (i, b) in blocks.iter().enumerate() {
        if out[i].find_nonfinite().is_none() {
            continue;
        }
        out[i] = gen.block_mat(&b.rows, &b.cols);
        debug_assert!(out[i].find_nonfinite().is_none());
        disp.note_recovery("batched_gen");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Backend;
    use h2_dense::{gaussian_mat, DenseOp};

    fn rts() -> [Runtime; 2] {
        [
            Runtime::new(Backend::Sequential),
            Runtime::new(Backend::Parallel),
        ]
    }

    #[test]
    fn rand_mat_deterministic_across_backends() {
        let a = rand_mat(&Runtime::sequential(), 40, 8, 3);
        let b = rand_mat(&Runtime::parallel(), 40, 8, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn gather_rows_extracts_ranges() {
        for rt in rts() {
            let src = Mat::from_fn(10, 3, |i, j| (i * 10 + j) as f64);
            let b = gather_rows(&rt, &src, &[(0, 2), (5, 9)]);
            assert_eq!(b.count(), 2);
            assert_eq!(b.mat(0).at(1, 2), 12.0);
            assert_eq!(b.mat(1).at(0, 0), 50.0);
            assert_eq!(b.mat(1).rows(), 4);
        }
    }

    #[test]
    fn stack_children_concatenates() {
        for rt in rts() {
            let src = Mat::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
            let child = gather_rows(&rt, &src, &[(0, 2), (2, 3), (3, 6)]);
            let parent = stack_children(&rt, &child, &[vec![0, 1], vec![2]]);
            assert_eq!(parent.rows_of(0), 3);
            assert_eq!(parent.mat(0).at(2, 1), 5.0); // row 2 of src
            assert_eq!(parent.mat(1).at(0, 0), 6.0); // row 3 of src
        }
    }

    #[test]
    fn qr_min_rdiag_detects_rank_deficiency() {
        for rt in rts() {
            let full = gaussian_mat(8, 4, 1);
            let lowrank = h2_dense::random_low_rank(8, 4, 2, 0.5, 2);
            let mut b = VarBatch::zeros_uniform_cols(vec![8, 8], 4);
            b.set(0, full.rf());
            b.set(1, lowrank.rf());
            let mins = qr_min_rdiag(&rt, &b);
            assert!(
                mins[0] > 1e-3,
                "full-rank sample should have large min rdiag"
            );
            assert!(mins[1] < 1e-10, "rank-2 sample must collapse by column 3");
        }
    }

    #[test]
    fn batched_row_id_reconstructs() {
        for rt in rts() {
            let a0 = h2_dense::random_low_rank(10, 6, 3, 0.4, 5);
            let a1 = h2_dense::random_low_rank(7, 6, 2, 0.4, 6);
            let mut b = VarBatch::zeros(vec![10, 7], vec![6, 6]);
            b.set(0, a0.rf());
            b.set(1, a1.rf());
            let ids = batched_row_id(&rt, &b, Truncation::Relative(1e-12));
            for (i, src) in [a0, a1].iter().enumerate() {
                let sk = src.select_rows(&ids[i].skel);
                let rec = h2_dense::matmul(Op::NoTrans, Op::NoTrans, ids[i].u.rf(), sk.rf());
                let mut d = rec;
                d.axpy(-1.0, src);
                assert!(d.norm_max() < 1e-9);
            }
        }
    }

    #[test]
    fn shrink_selects_rows() {
        for rt in rts() {
            let src = Mat::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
            let mut b = VarBatch::zeros_uniform_cols(vec![5], 2);
            b.set(0, src.rf());
            let skel: Vec<&[usize]> = vec![&[4, 0]];
            let out = shrink_rows(&rt, &b, &skel);
            assert_eq!(out.mat(0).at(0, 0), 8.0);
            assert_eq!(out.mat(0).at(1, 1), 1.0);
        }
    }

    #[test]
    fn gemm_at_x_computes_transposed_product() {
        for rt in rts() {
            let u = gaussian_mat(6, 2, 7);
            let x = gaussian_mat(6, 3, 8);
            let mut b = VarBatch::zeros_uniform_cols(vec![6], 3);
            b.set(0, x.rf());
            let out = gemm_at_x(&rt, std::slice::from_ref(&u), &b);
            let want = h2_dense::matmul(Op::Trans, Op::NoTrans, u.rf(), x.rf());
            let mut d = out.to_mat(0);
            d.axpy(-1.0, &want);
            assert!(d.norm_max() < 1e-13);
        }
    }

    #[test]
    fn hcat_widens_batch() {
        for rt in rts() {
            let mut a = VarBatch::zeros_uniform_cols(vec![3, 2], 2);
            let mut b = VarBatch::zeros_uniform_cols(vec![3, 2], 1);
            a.for_each_mut(false, |_, mut m| m.fill(1.0));
            b.for_each_mut(false, |_, mut m| m.fill(2.0));
            let c = hcat_batches(&rt, &a, &b);
            assert_eq!(c.cols_of(0), 3);
            assert_eq!(c.mat(0).at(0, 1), 1.0);
            assert_eq!(c.mat(1).at(1, 2), 2.0);
        }
    }

    #[test]
    fn batched_gen_evaluates_blocks() {
        for rt in rts() {
            let a = Mat::from_fn(8, 8, |i, j| (i * 8 + j) as f64);
            let op = DenseOp::new(a);
            let blocks = vec![
                GenBlock {
                    rows: vec![0, 1],
                    cols: vec![2, 3],
                },
                GenBlock {
                    rows: vec![7],
                    cols: vec![0],
                },
            ];
            let out = batched_gen(&rt, &op, &blocks);
            assert_eq!(out[0][(0, 0)], 2.0);
            assert_eq!(out[0][(1, 1)], 11.0);
            assert_eq!(out[1][(0, 0)], 56.0);
        }
    }

    #[test]
    fn launch_accounting() {
        let rt = Runtime::parallel();
        let src = gaussian_mat(8, 2, 9);
        let _ = gather_rows(&rt, &src, &[(0, 4), (4, 8)]);
        assert_eq!(rt.profile().launches(Kernel::Marshal), 1);
        assert_eq!(rt.profile().launches(Kernel::PrefixSum), 1);
        let b = gather_rows(&rt, &src, &[(0, 8)]);
        let _ = qr_min_rdiag(&rt, &b);
        assert_eq!(rt.profile().launches(Kernel::Qr), 1);
    }
}
