//! Volume integral equation compression: the paper's second application
//! (Helmholtz kernel cos(k|x-y|)/|x-y|, k = 3, eq. (9)).
//!
//! Demonstrates the effect of the admissibility parameter η on the
//! partition and compares fixed-sample vs adaptive construction — then
//! solves a scattering-style linear system with CG using the fast H2 matvec.
//!
//! ```sh
//! cargo run --release --example integral_equation
//! ```

use h2sketch::dense::{relative_error_2, LinOp, Mat};
use h2sketch::kernels::{HelmholtzKernel, KernelMatrix};
use h2sketch::matrix::{direct_construct, DirectConfig, H2Matrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    let n = 6000;
    let points = uniform_cube(n, 11);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let kernel = KernelMatrix::new(HelmholtzKernel::paper(n), tree.points.clone());

    // η controls how much of the matrix is admissible (paper Fig. 4).
    for eta in [0.5, 0.7, 1.0] {
        let part = Partition::build(&tree, Admissibility::Strong { eta });
        let far_total: usize = (0..tree.nlevels()).map(|l| part.far_count(&tree, l)).sum();
        println!(
            "eta={eta}: {} admissible blocks, {} dense blocks, Csp(dense)={}",
            far_total,
            part.near_count(&tree),
            part.csp_near(&tree)
        );
    }

    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let sampler = direct_construct(
        &kernel,
        tree.clone(),
        partition.clone(),
        &DirectConfig {
            tol: 1e-9,
            ..Default::default()
        },
    );

    // Fixed-sample vs adaptive construction (paper Table II comparison).
    for (label, d0, block, adaptive) in [
        ("fixed d=128", 128usize, 128usize, false),
        ("adaptive d=32", 64, 32, true),
    ] {
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: d0,
            sample_block: block,
            adaptive,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(
            &sampler,
            &kernel,
            tree.clone(),
            partition.clone(),
            &rt,
            &cfg,
        );
        let err = relative_error_2(&kernel, &h2, 12, 5);
        println!(
            "{label}: {:.3}s, samples {}, rank range {:?}, rel err {err:.2e}",
            stats.elapsed.as_secs_f64(),
            stats.total_samples,
            h2.rank_range(),
        );
        if adaptive {
            solve_with_cg(&h2, n);
        }
    }
}

/// Solve (K) u = f with conjugate gradients on the compressed operator —
/// the reason IE practitioners build H2 matrices in the first place.
fn solve_with_cg(h2: &H2Matrix, n: usize) {
    let f = Mat::from_fn(n, 1, |i, _| (i as f64 * 0.01).sin());
    let mut u = vec![0.0; n];
    let mut r: Vec<f64> = f.col(0).to_vec();
    let mut p = r.clone();
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let rs0 = rs;
    let mut iters = 0;
    for _ in 0..200 {
        iters += 1;
        let pm = Mat::from_vec(n, 1, p.clone());
        let mut ap = Mat::zeros(n, 1);
        h2.apply(pm.rf(), ap.rm());
        let ap = ap.col(0);
        let denom: f64 = p.iter().zip(ap).map(|(a, b)| a * b).sum();
        let alpha = rs / denom;
        for i in 0..n {
            u[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new < 1e-18 * rs0 {
            break;
        }
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
    }
    // Residual check through the operator itself.
    let um = Mat::from_vec(n, 1, u);
    let mut ku = Mat::zeros(n, 1);
    h2.apply(um.rf(), ku.rm());
    let mut res = 0.0f64;
    let mut nrm = 0.0f64;
    for i in 0..n {
        let d: f64 = ku[(i, 0)] - f[(i, 0)];
        res += d * d;
        nrm += f[(i, 0)] * f[(i, 0)];
    }
    println!(
        "  CG solve: {iters} iterations, relative residual {:.2e}",
        (res / nrm).sqrt()
    );
}
