//! Property-based tests (proptest) over the core data structures and the
//! construction invariants.

use h2sketch::dense::{
    col_id, matmul, qr_factor, relative_error_2, row_id, svd, EntryAccess, Mat, Op, Truncation,
};
use h2sketch::kernels::{ExponentialKernel, KernelMatrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// QR reconstructs arbitrary small matrices.
    #[test]
    fn prop_qr_reconstructs(m in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let a = h2sketch::dense::gaussian_mat(m, n, seed);
        let f = qr_factor(a.clone());
        let rec = matmul(Op::NoTrans, Op::NoTrans, f.q_thin().rf(), f.r().rf());
        let mut d = rec;
        d.axpy(-1.0, &a);
        prop_assert!(d.norm_max() < 1e-11 * a.norm_max().max(1.0));
    }

    /// Row ID: skeleton rows reproduce the matrix within the rank budget.
    #[test]
    fn prop_row_id_identity_on_skeleton(m in 2usize..20, n in 2usize..20, seed in 0u64..1000) {
        let a = h2sketch::dense::gaussian_mat(m, n, seed);
        let id = row_id(&a, Truncation::Relative(1e-13));
        // U(skel, :) must be the identity.
        for (p, &r) in id.skel.iter().enumerate() {
            for c in 0..id.rank() {
                let want = if c == p { 1.0 } else { 0.0 };
                prop_assert!((id.u[(r, c)] - want).abs() < 1e-12);
            }
        }
        // Full-rank ID of a random matrix reconstructs it.
        if id.rank() == m.min(n) {
            let rec = matmul(Op::NoTrans, Op::NoTrans, id.u.rf(), a.select_rows(&id.skel).rf());
            let mut d = rec;
            d.axpy(-1.0, &a);
            prop_assert!(d.norm_max() < 1e-8 * a.norm_max().max(1.0));
        }
    }

    /// Column ID skeleton indices are unique and within bounds.
    #[test]
    fn prop_col_id_skeleton_valid(m in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
        let a = h2sketch::dense::gaussian_mat(m, n, seed);
        let id = col_id(a, Truncation::Relative(1e-10));
        let mut seen = std::collections::HashSet::new();
        for &s in &id.skel {
            prop_assert!(s < n);
            prop_assert!(seen.insert(s), "duplicate skeleton column");
        }
    }

    /// SVD singular values are non-negative and sorted; reconstruction holds.
    #[test]
    fn prop_svd_invariants(m in 1usize..16, n in 1usize..16, seed in 0u64..1000) {
        let a = h2sketch::dense::gaussian_mat(m, n, seed);
        let f = svd(&a);
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(f.s.iter().all(|&s| s >= 0.0));
        let mut d = f.reconstruct();
        d.axpy(-1.0, &a);
        prop_assert!(d.norm_max() < 1e-10 * a.norm_max().max(1.0));
    }

    /// Cluster trees are valid for arbitrary sizes and leaf sizes.
    #[test]
    fn prop_cluster_tree_valid(n in 1usize..800, leaf in 1usize..64, seed in 0u64..1000) {
        let pts = uniform_cube(n, seed);
        let tree = ClusterTree::build(&pts, leaf);
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.max_leaf_size() <= leaf);
    }

    /// Partitions tile the matrix exactly once and are symmetric, for any
    /// admissibility parameter.
    #[test]
    fn prop_partition_complete(n in 32usize..600, eta in 0.3f64..1.5, seed in 0u64..1000) {
        let pts = uniform_cube(n, seed);
        let tree = ClusterTree::build(&pts, 16);
        let part = Partition::build(&tree, Admissibility::Strong { eta });
        prop_assert!(part.is_complete(&tree));
        prop_assert!(part.is_symmetric());
    }

    /// The far-field interval decomposition is exact for every node.
    #[test]
    fn prop_far_field_ranges(n in 64usize..500, seed in 0u64..1000) {
        let pts = uniform_cube(n, seed);
        let tree = ClusterTree::build(&pts, 16);
        let part = Partition::build(&tree, Admissibility::Strong { eta: 0.7 });
        for id in 0..tree.nodes.len() {
            let far = part.far_field_ranges(&tree, id);
            let far_len: usize = far.iter().map(|&(b, e)| e - b).sum();
            let inadm_len: usize = part.inadm_of[id].iter().map(|&b| tree.nodes[b].len()).sum();
            prop_assert_eq!(far_len + inadm_len, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Construction invariant: for random geometry seeds, the constructed H2
    /// matrix validates structurally and meets tolerance (the headline
    /// correctness property of Algorithm 1).
    #[test]
    fn prop_construction_meets_tolerance(seed in 0u64..100) {
        let pts = uniform_cube(1200, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        prop_assume!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-5, initial_samples: 48, seed, ..Default::default() };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        prop_assert!(h2.validate().is_ok());
        let err = relative_error_2(&km, &h2, 15, seed ^ 1);
        prop_assert!(err < 1e-4, "err {} at seed {}", err, seed);
    }

    /// Entry extraction agrees with the matvec representation on random
    /// index pairs.
    #[test]
    fn prop_entry_extraction_consistent(seed in 0u64..100) {
        let pts = uniform_cube(800, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        prop_assume!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-7, initial_samples: 64, seed, ..Default::default() };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        // Unit vector probes: column j of the operator equals extraction.
        let j = (seed as usize * 37) % 800;
        let mut e = Mat::zeros(800, 1);
        e[(j, 0)] = 1.0;
        let col = h2.apply_permuted_mat(&e);
        let rows: Vec<usize> = (0..800).step_by(61).collect();
        let block = h2.extract_block(&rows, &[j]);
        for (ii, &i) in rows.iter().enumerate() {
            prop_assert!((block[(ii, 0)] - col[(i, 0)]).abs() < 1e-10);
        }
        // And both approximate the kernel entry.
        prop_assert!((h2.entry(rows[1], j) - km.entry(rows[1], j)).abs() < 1e-4);
    }
}
