//! Configuration and statistics for the sketching construction.

use h2_runtime::{Kernel, Phase, Profile};
use std::time::Duration;

/// Per-level tolerance schedule for the interpolative decompositions
/// ("ID with ε_l", Algorithm 1 lines 16/34).
///
/// The paper's "simple error compensation scheme" keeps per-level truncation
/// close to the target while errors accumulate up the tree; we expose the
/// schedule so the Table II trade-off can be reproduced and explored.
#[derive(Clone, Copy, Debug)]
pub enum TolSchedule {
    /// Same absolute threshold `ε·‖K‖` at every level.
    Constant,
    /// Tighten by `factor^h` at height `h` above the leaves (factor < 1
    /// compensates for upsweep error accumulation).
    PerLevel { factor: f64 },
}

impl TolSchedule {
    /// Scaling applied to the base threshold at `height` levels above leaves.
    pub fn scale(&self, height: usize) -> f64 {
        match *self {
            TolSchedule::Constant => 1.0,
            TolSchedule::PerLevel { factor } => factor.powi(height as i32),
        }
    }
}

/// Configuration of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Relative compression tolerance ε (paper: 1e-6).
    pub tol: f64,
    /// Initial number of sample vectors (paper: 256).
    pub initial_samples: usize,
    /// Sample block size `d` added per adaptation round (paper: 32 or the
    /// leaf size — Table II).
    pub sample_block: usize,
    /// Enable the adaptive while-loops (lines 11/29). With `false`, the
    /// fixed-sample variant of §III.A runs with `initial_samples` vectors.
    pub adaptive: bool,
    /// Hard cap on total samples.
    pub max_samples: usize,
    /// Hard cap on per-node rank.
    pub max_rank: usize,
    /// Power-iteration count for the `‖K‖₂` estimate backing the relative
    /// threshold (§III.B).
    pub norm_est_iters: usize,
    /// Per-level ID tolerance schedule.
    pub schedule: TolSchedule,
    /// Safety factor applied to the absolute threshold (`ε_eff = safety·ε·‖K‖`).
    /// Truncation at exactly `ε·‖K‖` accumulates per-level and per-block
    /// errors to a multiple of ε; a conservative factor keeps the measured
    /// error at or below the requested tolerance, matching the paper's
    /// reported errors (Table II shows measured errors 2-25x *below* ε).
    pub safety: f64,
    /// RNG seed (all sketching randomness derives from it).
    pub seed: u64,
    /// Storage precision requested for finished basis/coupling/dense
    /// blocks. With [`h2_runtime::Precision::F32`] the construction demotes
    /// each level's blocks as the level completes, under the norm-aware
    /// rule (`h2_matrix::H2Matrix::demote_level`): a block only narrows
    /// when the f32 rounding error stays below the construction tolerance.
    /// Arithmetic is f64 either way.
    pub storage: h2_runtime::Precision,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            sample_block: 32,
            adaptive: true,
            max_samples: 2048,
            max_rank: 512,
            norm_est_iters: 10,
            schedule: TolSchedule::Constant,
            safety: 1.0 / 30.0,
            seed: 0xC0FFEE,
            storage: h2_runtime::Precision::F64,
        }
    }
}

impl SketchConfig {
    /// The paper's headline configuration (Fig. 5): ε=1e-6, 256 initial
    /// samples.
    pub fn paper() -> Self {
        SketchConfig {
            tol: 1e-6,
            initial_samples: 256,
            sample_block: 32,
            ..Default::default()
        }
    }
}

/// Outcome statistics of one construction (the data behind Fig. 5 labels,
/// Fig. 7 and Table II).
#[derive(Clone, Debug, Default)]
pub struct SketchStats {
    /// Total random vectors consumed by sketching (initial + adaptive).
    pub total_samples: usize,
    /// Adaptive rounds taken (extra `Kblk` invocations).
    pub rounds: usize,
    /// Adaptive rounds per level (leaf first).
    pub rounds_per_level: Vec<usize>,
    /// Estimated `‖K‖₂` backing the relative threshold.
    pub norm_estimate: f64,
    /// Wall-clock construction time.
    pub elapsed: Duration,
    /// Per-phase timing snapshot (Fig. 7).
    pub phase_seconds: Vec<(&'static str, f64)>,
    /// Batched-kernel launch counts (§IV.B analysis). The dense layer's
    /// per-call counters (`gemv`, `gemmPack`) ride along in the summary but
    /// are excluded from [`SketchStats::total_launches`] — they count CPU
    /// kernel invocations, not batched device launches.
    pub launches: Vec<(&'static str, usize)>,
    /// Bytes staged through the blocked-GEMM packing buffers.
    pub pack_bytes: u64,
    /// Per-level construction checkpoints sealed (one per processed level
    /// on a sharded backend; 0 off-fabric). The checkpoint ledger is what
    /// bounds device-loss recovery to replaying the in-flight level.
    pub checkpoints: usize,
    /// Recovery actions the construction observed: reshard-map version
    /// changes absorbed at level checkpoints (device loss mid-construction
    /// resumes from the last sealed level, not from scratch).
    pub recoveries: usize,
}

impl SketchStats {
    /// Capture phase timings and launch counts from a runtime profile.
    pub fn capture_profile(&mut self, profile: &Profile) {
        self.phase_seconds = Phase::ALL
            .iter()
            .map(|&p| (p.name(), profile.phase_time(p).as_secs_f64()))
            .collect();
        self.launches = profile.launch_summary();
        self.pack_bytes = profile.pack_bytes();
    }

    /// Total phase-attributed seconds.
    pub fn phase_total(&self) -> f64 {
        self.phase_seconds.iter().map(|(_, s)| s).sum()
    }

    /// Total batched device launches (the O(L·Csp) budget of §IV.B). The
    /// dense layer's per-call counters are excluded via
    /// [`Kernel::device_launch`] — the same predicate
    /// `Profile::total_launches` uses, so the two totals cannot drift.
    pub fn total_launches(&self) -> usize {
        self.launches
            .iter()
            .filter(|(name, _)| {
                Kernel::ALL
                    .iter()
                    .any(|k| k.device_launch() && k.name() == *name)
            })
            .map(|(_, n)| n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_scales() {
        assert_eq!(TolSchedule::Constant.scale(5), 1.0);
        let s = TolSchedule::PerLevel { factor: 0.5 };
        assert_eq!(s.scale(0), 1.0);
        assert_eq!(s.scale(2), 0.25);
    }

    #[test]
    fn defaults_sane() {
        let c = SketchConfig::default();
        assert!(c.adaptive);
        assert!(c.initial_samples <= c.max_samples);
        let p = SketchConfig::paper();
        assert_eq!(p.initial_samples, 256);
        assert_eq!(p.tol, 1e-6);
    }
}
