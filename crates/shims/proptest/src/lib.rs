//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest its property tests use:
//! strategies over integer/float ranges, tuples, `prop_map` /
//! `prop_flat_map`, `collection::vec`, `bool::ANY`, and the `proptest!` /
//! `prop_assert*` macros. Cases are generated from a deterministic per-test
//! RNG; there is no shrinking — a failing case panics with the sampled
//! values available via the assertion message.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a generated case did not run to completion (mirrors proptest's
    /// type so test bodies can `return Ok(())` / reject via `prop_assume!`).
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject,
    }

    /// Deterministic case RNG (SplitMix64 seeded from the test name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn uniform_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; returns 0 for `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always-`value` strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.start >= self.end {
                        return self.start; // degenerate range: fixed value
                    }
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo >= hi {
                        return lo;
                    }
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.start >= self.end {
                        return self.start;
                    }
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i64, i32, i16, i8, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.uniform_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            *self.start() + rng.uniform_f64() * (*self.end() - *self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G),
        (A, B, C, D, E, G, H),
        (A, B, C, D, E, G, H, I),
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run each property as `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __run = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                // Rejected (prop_assume) and completed cases both just move
                // on; failed assertions panic the test.
                let _ = __run();
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Assertion macros matching proptest's names (they simply panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its sampled inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0u64..5, x in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_len(v in crate::collection::vec((0usize..4, 0usize..4), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v)));
        let mut rng = crate::test_runner::TestRng::deterministic("flat_map");
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
