//! O(N) H2 matrix-vector and matrix-block products, side-generic.
//!
//! The classical three-pass algorithm: an upward pass compressing the input
//! through the nested *input-side* bases (`x̂_τ = V_τᵀ x_τ`), coupling
//! products (`ŷ_s += B_{s,t} x̂_t`), and a downward pass expanding through
//! the *output-side* bases (`y_τ += U_τ ŷ_τ`), plus the dense near-field.
//! This is the fast black-box sampler `Kblk(·)` used by the construction
//! experiments (the paper uses H2Opus's matvec for the same purpose).
//!
//! One implementation serves all four products: `K x` reads input side `V`,
//! output side `U`; `Kᵀ x` swaps the sides and reads every block through
//! [`crate::format::BlockStore::get_op`] with the transpose flag — for a
//! symmetric matrix both sides alias the same basis tree and the two
//! products coincide bitwise.
//!
//! The per-node work of each pass is factored into [`ApplyPhases`] so that
//! two executors can drive the same numerics: the in-process rayon path
//! below ([`H2Matrix::apply_permuted`]) and the device-sharded executor of
//! the `h2_sched` crate, which runs the same phase kernels level by level
//! over contiguous node chunks with explicit cross-device transfers.

use crate::format::H2Matrix;
use h2_dense::{gemm, gemm_mixed, Mat, MatMut, MatRef, Op};
use rayon::prelude::*;

/// Side-resolved per-node kernels of the three-pass matvec.
///
/// Holds the input/output basis resolution for a forward (`K x`) or
/// transposed (`Kᵀ x`) product; each method is the body of one batched
/// kernel of one pass, operating on a single node. The caller owns the
/// `x̂`/`ŷ` arrays and the scheduling (rayon, sequential, or sharded).
pub struct ApplyPhases<'a> {
    h2: &'a H2Matrix,
    transpose: bool,
    in_basis: &'a [Mat],
    out_basis: &'a [Mat],
}

impl H2Matrix {
    /// The phase kernels of `K x` (`transpose == false`) or `Kᵀ x`.
    pub fn apply_phases(&self, transpose: bool) -> ApplyPhases<'_> {
        // For K:  input side = V (column), output side = U (row).
        // For Kᵀ: input side = U, output side = V.
        let (in_basis, out_basis) = if transpose {
            (&self.basis[..], self.col_basis())
        } else {
            (self.col_basis(), &self.basis[..])
        };
        ApplyPhases {
            h2: self,
            transpose,
            in_basis,
            out_basis,
        }
    }
}

impl<'a> ApplyPhases<'a> {
    /// Bases compressing the input (`V` for `K x`).
    pub fn in_basis(&self) -> &'a [Mat] {
        self.in_basis
    }

    /// Bases expanding the output (`U` for `K x`).
    pub fn out_basis(&self) -> &'a [Mat] {
        self.out_basis
    }

    /// Upsweep kernel for one node: `x̂_id = V_idᵀ ·` (leaf rows of `x`, or
    /// the stacked child `x̂`s). `None` when the node carries no input
    /// basis. Children with rank 0 (empty far field) contribute zero rows.
    pub fn upsweep_node(&self, id: usize, x: MatRef<'_>, xhat: &[Mat]) -> Option<Mat> {
        let v = &self.in_basis[id];
        if v.cols() == 0 {
            return None;
        }
        let tree = &self.h2.tree;
        let d = x.cols();
        let mut out = Mat::zeros(v.cols(), d);
        if tree.level_of(id) == tree.leaf_level() {
            let (b, e) = tree.range(id);
            gemm(
                Op::Trans,
                Op::NoTrans,
                1.0,
                v.rf(),
                x.view(b, 0, e - b, d),
                0.0,
                out.rm(),
            );
        } else {
            let (c1, c2) = tree.nodes[id].children.unwrap();
            let (k1, k2) = (self.in_basis[c1].cols(), self.in_basis[c2].cols());
            let mut stacked = Mat::zeros(k1 + k2, d);
            if xhat[c1].rows() == k1 && xhat[c1].cols() == d && k1 > 0 {
                stacked.view_mut(0, 0, k1, d).copy_from(xhat[c1].rf());
            }
            if xhat[c2].rows() == k2 && xhat[c2].cols() == d && k2 > 0 {
                stacked.view_mut(k1, 0, k2, d).copy_from(xhat[c2].rf());
            }
            gemm(
                Op::Trans,
                Op::NoTrans,
                1.0,
                v.rf(),
                stacked.rf(),
                0.0,
                out.rm(),
            );
        }
        Some(out)
    }

    /// Coupling kernel for one node: `ŷ_s = Σ_t op(B_{s,t}) x̂_t` over the
    /// far field of `s`. `None` when `s` has no admissible partners.
    /// Rank-0 partners contribute nothing (zero-dimensional blocks).
    pub fn coupling_node(&self, s: usize, xhat: &[Mat], d: usize) -> Option<Mat> {
        if self.h2.partition.far_of[s].is_empty() {
            return None;
        }
        let ks = self.out_basis[s].cols();
        let mut acc = Mat::zeros(ks, d);
        for &t in &self.h2.partition.far_of[s] {
            if ks == 0 || self.in_basis[t].cols() == 0 {
                continue;
            }
            // Demoted blocks read their f32 storage through the
            // promote-on-pack path — bitwise identical to the f64 working
            // copy (see the format module docs), but it exercises the wire
            // representation the fabric ships.
            if let Some((b32, tr)) = self.h2.coupling.get_op32(s, t, self.transpose) {
                let op = if tr { Op::Trans } else { Op::NoTrans };
                gemm_mixed(op, Op::NoTrans, 1.0, b32, xhat[t].rf(), 1.0, acc.rm());
                continue;
            }
            let (blk, transposed) = self
                .h2
                .coupling
                .get_op(s, t, self.transpose)
                .expect("coupling block");
            let op = if transposed { Op::Trans } else { Op::NoTrans };
            gemm(op, Op::NoTrans, 1.0, blk.rf(), xhat[t].rf(), 1.0, acc.rm());
        }
        Some(acc)
    }

    /// Downsweep kernel for one child: its transfer slice applied to the
    /// parent's `ŷ` (`E_child ŷ_parent`), to be accumulated into
    /// `ŷ_child`. `None` when the parent carries nothing.
    pub fn downsweep_child(&self, child: usize, yhat: &[Mat], d: usize) -> Option<Mat> {
        let tree = &self.h2.tree;
        let parent = tree.nodes[child].parent?;
        if yhat[parent].rows() == 0 || self.out_basis[parent].cols() == 0 {
            return None;
        }
        let (c1, _c2) = tree.nodes[parent].children.unwrap();
        let kc = self.out_basis[child].cols();
        let kp = self.out_basis[parent].cols();
        let off = if child == c1 {
            0
        } else {
            self.out_basis[c1].cols()
        };
        let e = self.out_basis[parent].view(off, 0, kc, kp);
        let mut out = Mat::zeros(kc, d);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            e,
            yhat[parent].rf(),
            0.0,
            out.rm(),
        );
        Some(out)
    }

    /// Leaf kernel: the output rows owned by leaf `s` — basis expansion of
    /// `ŷ_s` plus the dense near-field products. Returns
    /// `(row_start, block)`; leaf row ranges are disjoint, so per-device
    /// partial outputs assemble without reduction conflicts.
    pub fn leaf_node(&self, s: usize, x: MatRef<'_>, yhat: &[Mat]) -> (usize, Mat) {
        let tree = &self.h2.tree;
        let d = x.cols();
        let (b, e) = tree.range(s);
        let m = e - b;
        let mut out = Mat::zeros(m, d);
        if yhat[s].rows() > 0 && self.out_basis[s].cols() > 0 {
            gemm(
                Op::NoTrans,
                Op::NoTrans,
                1.0,
                self.out_basis[s].rf(),
                yhat[s].rf(),
                1.0,
                out.rm(),
            );
        }
        for &t in &self.h2.partition.near_of[s] {
            let (tb, te) = tree.range(t);
            if let Some((b32, tr)) = self.h2.dense.get_op32(s, t, self.transpose) {
                let op = if tr { Op::Trans } else { Op::NoTrans };
                gemm_mixed(
                    op,
                    Op::NoTrans,
                    1.0,
                    b32,
                    x.view(tb, 0, te - tb, d),
                    1.0,
                    out.rm(),
                );
                continue;
            }
            let (blk, transposed) = self
                .h2
                .dense
                .get_op(s, t, self.transpose)
                .expect("dense block");
            let op = if transposed { Op::Trans } else { Op::NoTrans };
            gemm(
                op,
                Op::NoTrans,
                1.0,
                blk.rf(),
                x.view(tb, 0, te - tb, d),
                1.0,
                out.rm(),
            );
        }
        (b, out)
    }
}

impl H2Matrix {
    /// `y = K x` for a block of vectors, in tree-permuted coordinates.
    pub fn apply_permuted(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_impl(x, y, false);
    }

    /// `y = Kᵀ x`: the basis sides swap and blocks are read transposed
    /// (`Kᵀ`'s block `(s, t)` is `K(I_t, I_s)ᵀ`). Identical to
    /// [`H2Matrix::apply_permuted`] for symmetric matrices.
    pub fn apply_transpose_permuted(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_impl(x, y, true);
    }

    fn apply_impl(&self, x: MatRef<'_>, mut y: MatMut<'_>, transpose: bool) {
        let n = self.n();
        let d = x.cols();
        assert_eq!(x.rows(), n, "apply: x rows");
        assert_eq!(y.rows(), n, "apply: y rows");
        assert_eq!(y.cols(), d, "apply: y cols");
        y.fill(0.0);

        let ph = self.apply_phases(transpose);
        let tree = &self.tree;
        let nnodes = tree.nodes.len();
        let leaf_level = tree.leaf_level();

        // ---- upward pass through the input basis: x̂_τ ----
        let mut xhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
        for l in (0..tree.nlevels()).rev() {
            let ids: Vec<usize> = tree.level(l).collect();
            let level_res: Vec<(usize, Mat)> = ids
                .par_iter()
                .filter_map(|&id| ph.upsweep_node(id, x, &xhat).map(|m| (id, m)))
                .collect();
            for (id, m) in level_res {
                xhat[id] = m;
            }
        }

        // ---- coupling products: ŷ_s = Σ_t op(B) x̂_t ----
        let yhat_res: Vec<(usize, Mat)> = (0..nnodes)
            .into_par_iter()
            .filter_map(|s| ph.coupling_node(s, &xhat, d).map(|m| (s, m)))
            .collect();
        let mut yhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
        for (s, m) in yhat_res {
            yhat[s] = m;
        }

        // ---- downward pass through the output basis ----
        for l in 0..tree.nlevels() {
            if l == leaf_level {
                break;
            }
            let ids: Vec<usize> = tree.level(l + 1).collect();
            let contrib: Vec<(usize, Mat)> = ids
                .par_iter()
                .filter_map(|&child| ph.downsweep_child(child, &yhat, d).map(|m| (child, m)))
                .collect();
            for (child, m) in contrib {
                if yhat[child].rows() == 0 {
                    yhat[child] = m;
                } else {
                    yhat[child].axpy(1.0, &m);
                }
            }
        }

        // ---- expand at leaves + dense near field ----
        let leaf_ids: Vec<usize> = tree.level(leaf_level).collect();
        // Disjoint leaf row ranges of y: compute contributions in parallel.
        let leaf_out: Vec<(usize, Mat)> = leaf_ids
            .par_iter()
            .map(|&s| ph.leaf_node(s, x, &yhat))
            .collect();
        for (b, m) in leaf_out {
            y.rb_mut().into_view(b, 0, m.rows(), d).copy_from(m.rf());
        }
    }

    /// Convenience: allocate and return `K x` (permuted coordinates).
    pub fn apply_permuted_mat(&self, x: &Mat) -> Mat {
        let mut y = Mat::zeros(self.n(), x.cols());
        self.apply_permuted(x.rf(), y.rm());
        y
    }

    /// Convenience: allocate and return `Kᵀ x` (permuted coordinates).
    pub fn apply_transpose_permuted_mat(&self, x: &Mat) -> Mat {
        let mut y = Mat::zeros(self.n(), x.cols());
        self.apply_transpose_permuted(x.rf(), y.rm());
        y
    }

    /// `y = K x` in the *original* (pre-permutation) index ordering.
    pub fn apply_original(&self, x: &Mat) -> Mat {
        let n = self.n();
        assert_eq!(x.rows(), n);
        let xp = Mat::from_fn(n, x.cols(), |i, j| x[(self.tree.perm[i], j)]);
        let yp = self.apply_permuted_mat(&xp);
        Mat::from_fn(n, x.cols(), |i, j| yp[(self.tree.iperm[i], j)])
    }
}

impl h2_dense::LinOp for H2Matrix {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    /// Operates in tree-permuted coordinates, like every operator in this
    /// workspace.
    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_permuted(x, y);
    }

    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_transpose_permuted(x, y);
    }
}
