//! The device runtime: backend selection plus profiling.
//!
//! The paper runs one code base on both CPU and GPU (Thrust backends).
//! [`Runtime`] mirrors that: every batched kernel takes a `&Runtime` and
//! executes its per-entry work either sequentially ([`Backend::Sequential`],
//! the paper's "CPU" configuration) or with work-stealing parallelism across
//! batch entries ([`Backend::Parallel`], the "GPU" configuration — batch
//! entries play the role of thread blocks).

use crate::profile::{Kernel, Phase, Profile};
use crate::shard::{chunk_bounds, ShardDispatch, ShardJob};
use rayon::prelude::*;
use std::sync::Arc;

/// Execution backend for batched kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One thread, entries processed in order (paper's CPU baseline used
    /// OpenMP loops; use `Parallel` for that — `Sequential` is the
    /// single-thread reference).
    Sequential,
    /// Entries processed by the rayon pool (paper's GPU batched execution).
    Parallel,
    /// Entries sharded in contiguous chunks across the virtual devices of a
    /// [`ShardDispatch`] fabric (the §IV.B multi-GPU decomposition). Use
    /// [`Runtime::sharded`] — this backend needs a dispatcher.
    Sharded,
}

/// Shared handle passed to every batched operation.
pub struct Runtime {
    backend: Backend,
    profile: Profile,
    shard: Option<Arc<dyn ShardDispatch>>,
    tracer: Option<Arc<h2_obs::Tracer>>,
}

impl Runtime {
    pub fn new(backend: Backend) -> Self {
        assert!(
            backend != Backend::Sharded,
            "Backend::Sharded needs a device fabric; use Runtime::sharded"
        );
        Runtime {
            backend,
            profile: Profile::new(),
            shard: None,
            tracer: None,
        }
    }

    pub fn sequential() -> Self {
        Runtime::new(Backend::Sequential)
    }

    pub fn parallel() -> Self {
        Runtime::new(Backend::Parallel)
    }

    /// A runtime executing every batched kernel sharded across the virtual
    /// devices of `dispatch` (implemented by `h2_sched::DeviceFabric`).
    pub fn sharded(dispatch: Arc<dyn ShardDispatch>) -> Self {
        Runtime {
            backend: Backend::Sharded,
            profile: Profile::new(),
            shard: Some(dispatch),
            tracer: None,
        }
    }

    /// Attach an observability tracer: [`Runtime::phase`] and the batched
    /// drivers (construction level loop, ULV per-level phases) emit scoped
    /// spans into it. `None` (the default) costs nothing on any hot path.
    pub fn set_tracer(&mut self, tracer: Arc<h2_obs::Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Builder form of [`Runtime::set_tracer`].
    pub fn with_tracer(mut self, tracer: Arc<h2_obs::Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<h2_obs::Tracer>> {
        self.tracer.as_ref()
    }

    /// Open a scoped span when a tracer is attached (the name closure only
    /// runs then, so untraced runs pay nothing for the formatting).
    pub fn trace_span(
        &self,
        cat: &'static str,
        name: impl FnOnce() -> String,
    ) -> Option<h2_obs::SpanGuard<'_>> {
        self.tracer.as_ref().map(|t| t.span(cat, name()))
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn is_parallel(&self) -> bool {
        self.backend == Backend::Parallel
    }

    /// The device fabric of a sharded runtime (`None` otherwise).
    pub fn shard_dispatch(&self) -> Option<&Arc<dyn ShardDispatch>> {
        self.shard.as_ref()
    }

    /// Whether the runtime executes on a fabric running in
    /// [`crate::PipelineMode::Pipelined`] — gates the construction engine's
    /// early prefetch hints so other backends pay nothing for them.
    pub fn shard_is_pipelined(&self) -> bool {
        self.shard
            .as_ref()
            .is_some_and(|d| d.mode() == crate::PipelineMode::Pipelined)
    }

    /// Close the fabric's current accounting epoch (no-op unless sharded).
    /// The construction level loop calls this once per processed level so
    /// per-epoch stats line up with the simulator's per-level costs.
    pub fn shard_epoch(&self, label: &str) {
        if let Some(d) = &self.shard {
            d.epoch(label);
        }
    }

    /// Open a cross-kernel chain scope on the fabric (no-op unless sharded
    /// and pipelined): until [`Runtime::shard_chain_end`], each kernel's
    /// closing `flush` records a dependency boundary instead of blocking,
    /// so consecutive batched kernels run back-to-back per device, ordered
    /// by job-completion tickets across devices.
    pub fn shard_chain_begin(&self) {
        if let Some(d) = &self.shard {
            d.chain_begin();
        }
    }

    /// Close the chain scope and run the real barrier (no-op unless
    /// sharded). Every host-side read of job-produced data must sit after
    /// this point.
    pub fn shard_chain_end(&self) {
        if let Some(d) = &self.shard {
            d.chain_end();
        }
    }

    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Record a kernel launch (the unit the paper's §IV.B analysis counts).
    pub fn launch(&self, k: Kernel) {
        self.profile.record_launch(k);
    }

    pub fn launches(&self, k: Kernel, n: usize) {
        self.profile.record_launches(k, n);
    }

    /// Time a phase of the construction. Each phase boundary also drains
    /// the dense layer's packing/gemv counters into the profile, so the
    /// blocked-GEMM structure shows up in the launch accounting without the
    /// dense crate depending on this one.
    pub fn phase<R>(&self, p: Phase, f: impl FnOnce() -> R) -> R {
        let _span = self.tracer.as_ref().map(|t| t.span("phase", p.name()));
        let r = self.profile.time(p, f);
        self.profile.drain_dense_stats();
        r
    }

    /// Run an indexed loop on the chosen backend (generic batched "kernel
    /// body"; the caller records the launch).
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        match self.backend {
            Backend::Sequential => (0..n).for_each(f),
            Backend::Parallel => (0..n).into_par_iter().for_each(f),
            Backend::Sharded => {
                let disp = self.shard.as_ref().expect("sharded runtime has a fabric");
                let bounds = chunk_bounds(n, disp.devices());
                let f = &f;
                let jobs: Vec<ShardJob<'_>> = (0..disp.devices())
                    .map(|dev| {
                        let (b, e) = (bounds[dev], bounds[dev + 1]);
                        Box::new(move || (b..e).for_each(f)) as ShardJob<'_>
                    })
                    .collect();
                disp.run(jobs);
            }
        }
    }

    /// Cost-aware indexed map: like [`Runtime::map_index`], but the
    /// parallel and sharded backends cut the index range into contiguous
    /// chunks of ~equal estimated `cost` ([`crate::batch::cost_chunk_bounds`])
    /// instead of equal count, so skewed per-entry work (top-level blocks
    /// vs. leaves) stops serializing behind the biggest chunk. Results come
    /// back in index order on every backend.
    pub fn map_index_costed<R, F, C>(&self, n: usize, cost: C, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
        C: Fn(usize) -> f64,
    {
        match self.backend {
            Backend::Sequential => (0..n).map(f).collect(),
            Backend::Parallel => {
                let parts = (rayon::current_num_threads() * 4).min(n.max(1));
                let bounds = crate::batch::cost_chunk_bounds(n, parts, cost);
                let chunks: Vec<(usize, usize)> = (0..parts)
                    .map(|d| (bounds[d], bounds[d + 1]))
                    .filter(|&(b, e)| e > b)
                    .collect();
                let f = &f;
                chunks
                    .into_par_iter()
                    .map(|(b, e)| (b..e).map(f).collect::<Vec<R>>())
                    .collect::<Vec<Vec<R>>>()
                    .into_iter()
                    .flatten()
                    .collect()
            }
            Backend::Sharded => {
                let disp = self.shard.as_ref().expect("sharded runtime has a fabric");
                let bounds = crate::batch::cost_chunk_bounds(n, disp.devices(), cost);
                self.map_with_bounds(n, &bounds, f)
            }
        }
    }

    /// Sharded slot-filling map over explicit chunk bounds (shared by
    /// [`Runtime::map_index`] and [`Runtime::map_index_costed`]).
    fn map_with_bounds<R, F>(&self, n: usize, bounds: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        let disp = self.shard.as_ref().expect("sharded runtime has a fabric");
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        {
            let f = &f;
            let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(disp.devices());
            let mut rest: &mut [Option<R>] = &mut out;
            for dev in 0..disp.devices() {
                let len = bounds[dev + 1] - bounds[dev];
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                let start = bounds[dev];
                jobs.push(Box::new(move || {
                    for (k, slot) in head.iter_mut().enumerate() {
                        *slot = Some(f(start + k));
                    }
                }));
            }
            disp.run(jobs);
        }
        out.into_iter()
            .map(|o| o.expect("every chunk filled its slots"))
            .collect()
    }

    /// Indexed map on the chosen backend, preserving order.
    pub fn map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        match self.backend {
            Backend::Sequential => (0..n).map(f).collect(),
            Backend::Parallel => (0..n).into_par_iter().map(f).collect(),
            Backend::Sharded => {
                let disp = self.shard.as_ref().expect("sharded runtime has a fabric");
                let bounds = chunk_bounds(n, disp.devices());
                self.map_with_bounds(n, &bounds, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn both_backends_cover_all_indices() {
        for backend in [Backend::Sequential, Backend::Parallel] {
            let rt = Runtime::new(backend);
            let hits = AtomicUsize::new(0);
            rt.for_each_index(100, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn map_preserves_order() {
        let rt = Runtime::parallel();
        let v = rt.map_index(50, |i| i * i);
        assert_eq!(v[7], 49);
        assert_eq!(v.len(), 50);
    }

    #[test]
    fn launches_visible_via_profile() {
        let rt = Runtime::sequential();
        rt.launch(Kernel::Gemm);
        rt.launches(Kernel::BsrGemm, 4);
        assert_eq!(rt.profile().launches(Kernel::Gemm), 1);
        assert_eq!(rt.profile().launches(Kernel::BsrGemm), 4);
    }
}
