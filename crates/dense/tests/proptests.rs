//! Property-based tests for the dense LA substrate.

use h2_dense::*;
use proptest::prelude::*;

fn mat_strategy(max: usize) -> impl Strategy<Value = Mat> {
    (1..max, 1..max, 0u64..10_000).prop_map(|(m, n, seed)| gaussian_mat(m, n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (A B) C == A (B C) within roundoff.
    #[test]
    fn gemm_associative(seed in 0u64..1000, m in 1usize..12, k in 1usize..12, n in 1usize..12, p in 1usize..12) {
        let a = gaussian_mat(m, k, seed);
        let b = gaussian_mat(k, n, seed + 1);
        let c = gaussian_mat(n, p, seed + 2);
        let ab_c = matmul(Op::NoTrans, Op::NoTrans, matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf()).rf(), c.rf());
        let a_bc = matmul(Op::NoTrans, Op::NoTrans, a.rf(), matmul(Op::NoTrans, Op::NoTrans, b.rf(), c.rf()).rf());
        let mut d = ab_c;
        d.axpy(-1.0, &a_bc);
        prop_assert!(d.norm_max() < 1e-10);
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn gemm_transpose_identity(seed in 0u64..1000, m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        let a = gaussian_mat(m, k, seed);
        let b = gaussian_mat(k, n, seed + 7);
        let abt = matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf()).transpose();
        let btat = matmul(Op::Trans, Op::Trans, b.rf(), a.rf());
        let mut d = abt;
        d.axpy(-1.0, &btat);
        prop_assert!(d.norm_max() < 1e-12);
    }

    /// Triangular solves invert triangular products for well-conditioned T.
    #[test]
    fn tri_solve_roundtrip(seed in 0u64..1000, n in 1usize..14, k in 1usize..6) {
        let g = gaussian_mat(n, n, seed);
        let t = Mat::from_fn(n, n, |i, j| {
            if i < j { 0.0 } else if i == j { 2.0 + g[(i, j)].abs() } else { 0.25 * g[(i, j)] }
        });
        let x0 = gaussian_mat(n, k, seed + 3);
        let mut b = matmul(Op::NoTrans, Op::NoTrans, t.rf(), x0.rf());
        solve_triangular_left(Triangle::Lower, Diag::NonUnit, t.rf(), &mut b.rm());
        let mut d = b;
        d.axpy(-1.0, &x0);
        prop_assert!(d.norm_max() < 1e-9);
    }

    /// LU solves random nonsingular systems.
    #[test]
    fn lu_solves_random(seed in 0u64..1000, n in 1usize..16) {
        let mut a = gaussian_mat(n, n, seed);
        for i in 0..n {
            a[(i, i)] += 4.0; // keep comfortably nonsingular
        }
        let x0 = gaussian_mat(n, 2, seed + 5);
        let b = matmul(Op::NoTrans, Op::NoTrans, a.rf(), x0.rf());
        let f = lu_factor(a).expect("nonsingular");
        let x = f.solve(&b);
        let mut d = x;
        d.axpy(-1.0, &x0);
        prop_assert!(d.norm_max() < 1e-8);
    }

    /// Cholesky of G Gᵀ + c I succeeds and solves.
    #[test]
    fn cholesky_spd_random(seed in 0u64..1000, n in 1usize..16) {
        let g = gaussian_mat(n, n, seed);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let x0 = gaussian_mat(n, 1, seed + 11);
        let mut b = matmul(Op::NoTrans, Op::NoTrans, a.rf(), x0.rf());
        let mut f = a;
        prop_assert!(cholesky_in_place(&mut f.rm()).is_ok());
        cholesky_solve(f.rf(), &mut b.rm());
        let mut d = b;
        d.axpy(-1.0, &x0);
        prop_assert!(d.norm_max() < 1e-8);
    }

    /// CPQR pivots never repeat, rdiag non-increasing.
    #[test]
    fn cpqr_pivots_valid(a in mat_strategy(16)) {
        let n = a.cols();
        let (_, jpvt, rdiag) = cpqr_factor(a);
        let mut seen = vec![false; n];
        for &p in &jpvt {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        for w in rdiag.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    /// ID error is controlled by the discarded diagonal of R.
    #[test]
    fn id_error_tracks_truncation(seed in 0u64..500, m in 4usize..20, n in 4usize..20) {
        let a = random_low_rank(m, n, 3.min(m).min(n), 0.3, seed);
        let id = row_id(&a, Truncation::Absolute(1e-10));
        let sk = a.select_rows(&id.skel);
        let rec = matmul(Op::NoTrans, Op::NoTrans, id.u.rf(), sk.rf());
        let mut d = rec;
        d.axpy(-1.0, &a);
        prop_assert!(d.norm_fro() < 1e-6 * a.norm_fro().max(1e-12) + 1e-8);
    }

    /// Norm estimate is within a factor of the true spectral norm.
    #[test]
    fn norm_estimate_bounds(seed in 0u64..200, n in 2usize..20) {
        let a = gaussian_mat(n, n, seed);
        let exact = spectral_norm(&a);
        let est = estimate_norm_2(&DenseOp::new(a), 25, seed + 1);
        prop_assert!(est <= exact * 1.001);
        prop_assert!(est >= 0.5 * exact, "est {} exact {}", est, exact);
    }

    /// Views never alias incorrectly: writing a sub-view touches only its
    /// block.
    #[test]
    fn view_writes_are_local(m in 2usize..12, n in 2usize..12, seed in 0u64..100) {
        let mut a = gaussian_mat(m, n, seed);
        let orig = a.clone();
        let (r0, c0) = (m / 2, n / 2);
        a.view_mut(r0, c0, m - r0, n - c0).fill(7.0);
        for i in 0..m {
            for j in 0..n {
                if i >= r0 && j >= c0 {
                    prop_assert_eq!(a[(i, j)], 7.0);
                } else {
                    prop_assert_eq!(a[(i, j)], orig[(i, j)]);
                }
            }
        }
    }

    /// hcat/vcat shapes and contents.
    #[test]
    fn cat_contents(m in 1usize..8, n1 in 1usize..8, n2 in 1usize..8, seed in 0u64..100) {
        let a = gaussian_mat(m, n1, seed);
        let b = gaussian_mat(m, n2, seed + 1);
        let h = a.hcat(&b);
        prop_assert_eq!(h.cols(), n1 + n2);
        prop_assert_eq!(h[(m - 1, n1 + n2 - 1)], b[(m - 1, n2 - 1)]);
        let v = a.transpose().vcat(&b.transpose());
        prop_assert_eq!(v.rows(), n1 + n2);
        prop_assert_eq!(v[(n1, 0)], b[(0, 0)]);
    }
}
