//! Observability acceptance tests: the Chrome-trace export of a pipelined
//! D=4 construction carries exactly [`ExecReport::total_comm_bytes`] in
//! its transfer events (equal to the simulator's byte prediction) at both
//! wire precisions, per-track timestamps are monotone, the sim-drift
//! tables' per-epoch shares sum to the observed makespan ratio, and live
//! tracer spans merge into the trace without double-counting transfers.

use h2_core::{level_specs, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_matrix::H2Matrix;
use h2_obs::Json;
use h2_runtime::{DeviceModel, PipelineMode, Precision, Runtime};
use h2_sched::{
    compare_matvec_with_simulator, compare_solve_with_simulator, compare_with_simulator,
    drift_construct, drift_matvec, drift_solve, export_chrome_trace,
    export_chrome_trace_with_spans, shard_construct, shard_matvec_with_report,
    shard_ulv_solve_with_report, simulate_matvec, DeviceFabric, Tracer,
};
use h2_solve::{pcg_with, KrylovWorkspace, UlvFactor};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        adaptive: false,
        ..Default::default()
    }
}

/// HSS-flavored problem for the solver arm (weak admissibility, 1-D line).
fn hss_matrix(n: usize, leaf: usize) -> H2Matrix {
    let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let scfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = h2_core::sketch_construct(&km, &km, tree, part, &rt, &scfg);
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 2.0;
            }
        }
    }
    h2
}

/// Parse a trace and return its event array (panics on malformed JSON —
/// the well-formedness half of the check).
fn parse_events(trace: &h2_sched::ChromeTrace) -> Vec<Json> {
    let text = trace.to_json().dump();
    let json = Json::parse(&text).expect("trace JSON must be well-formed");
    json.get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array")
        .to_vec()
}

/// Sum the `bytes` payload over all transfer-category events.
fn transfer_bytes(events: &[Json]) -> u64 {
    events
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("transfer"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(|b| b.as_u64())
                .expect("transfer event must carry a bytes payload")
        })
        .sum()
}

/// Assert timestamps are monotone non-decreasing within every (pid, tid)
/// track, in array order (metadata events carry no `ts` and are skipped).
fn assert_monotone_tracks(events: &[Json]) {
    use std::collections::HashMap;
    let mut last: HashMap<(u64, u64), f64> = HashMap::new();
    for e in events {
        let Some(ts) = e.get("ts").and_then(|t| t.as_f64()) else {
            continue;
        };
        if e.get("ph").and_then(|p| p.as_str()) == Some("M") {
            continue;
        }
        let pid = e.get("pid").and_then(|p| p.as_u64()).unwrap_or(0);
        let tid = e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        let prev = last.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "track (pid {pid}, tid {tid}): ts {ts} after {prev}"
        );
        *prev = ts;
    }
}

fn shares_sum(table: &h2_sched::DriftTable) -> f64 {
    table.shares().iter().sum()
}

/// The PR's acceptance bar: a pipelined 4-device construction's exported
/// Chrome trace sums its transfer-event bytes to exactly the report total
/// and the simulator prediction, at both wire precisions — and the drift
/// table's shares sum to the observed makespan ratio.
#[test]
fn chrome_trace_bytes_reconcile_exactly_at_both_wires() {
    let (tree, part, km) = sym_problem(1200, 16, 95);
    let model = DeviceModel::default();
    for wire in [Precision::F64, Precision::F32] {
        let fabric = DeviceFabric::with_config(4, PipelineMode::Pipelined, Default::default());
        fabric.set_wire(wire);
        let (h2, _, report) =
            shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        let specs = level_specs(&h2);
        let cmp = compare_with_simulator(&report, &specs, 64, &model);
        assert!(
            cmp.bytes_match(),
            "wire={wire}: executor vs simulator bytes"
        );

        let trace = export_chrome_trace(&report);
        let events = parse_events(&trace);
        assert_monotone_tracks(&events);
        let summed = transfer_bytes(&events);
        assert!(summed > 0, "D=4 must move bytes");
        assert_eq!(
            summed,
            report.total_comm_bytes(),
            "wire={wire}: trace bytes vs report"
        );
        assert_eq!(
            summed, cmp.predicted_bytes,
            "wire={wire}: trace bytes vs simulator"
        );
        // One transfer event per recorded message.
        let n_transfers = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("transfer"))
            .count();
        assert_eq!(n_transfers, report.total_comm_messages());

        let table = drift_construct(&report, &specs, 64, &model);
        assert_eq!(
            table.measured_total(),
            report.modeled_makespan(&model),
            "wire={wire}: drift measured total must be the modeled makespan"
        );
        assert_eq!(
            table.predicted_total(),
            cmp.predicted_makespan,
            "wire={wire}: drift predicted total must be the simulator makespan"
        );
        assert_eq!(table.ratio(), cmp.makespan_ratio(), "wire={wire}");
        let ratio = cmp.makespan_ratio();
        assert!(
            (shares_sum(&table) - ratio).abs() <= 1e-12 * ratio.abs().max(1.0),
            "wire={wire}: per-epoch shares must sum to the makespan ratio"
        );
        assert!(!table.render().is_empty());
    }
}

#[test]
fn matvec_drift_table_matches_simulator_comparison() {
    let (tree, part, km) = sym_problem(1200, 16, 96);
    let rt = Runtime::parallel();
    let (h2, _) = h2_core::sketch_construct(&km, &km, tree, part, &rt, &cfg());
    let x = gaussian_mat(h2.n(), 4, 97);
    let model = DeviceModel::default();
    for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
        let fabric = DeviceFabric::with_config(4, mode, Default::default());
        let (_, report) = shard_matvec_with_report(&fabric, &h2, &x, false);
        let cmp = compare_matvec_with_simulator(&report, &h2, 4, false, &model);
        let sim = simulate_matvec(&h2, 4, 4, mode, report.wire, false);
        let table = drift_matvec(&report, &sim, &model);
        assert_eq!(table.measured_total(), report.modeled_makespan(&model));
        assert_eq!(
            table.predicted_total(),
            sim.makespan(&model),
            "{mode:?}: per-epoch predictions must decompose the sim makespan"
        );
        assert_eq!(table.ratio(), cmp.makespan_ratio(), "{mode:?}");
        assert!(
            (table.ratio() - 1.0).abs() < 1e-9,
            "{mode:?}: executor and simulator model the same schedule"
        );
        // Labels pair up row by row (same epoch order on both sides).
        assert_eq!(table.rows.len(), report.epochs.len().max(sim.epochs.len()));
        for (row, e) in table.rows.iter().zip(report.epochs.iter()) {
            assert!(
                row.label.starts_with(&e.label),
                "{mode:?}: row '{}' vs epoch '{}'",
                row.label,
                e.label
            );
        }
    }
}

#[test]
fn solve_drift_table_matches_simulator_comparison() {
    let h2 = hss_matrix(640, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let b = gaussian_mat(h2.n(), 2, 98);
    let spec = ulv.solve_spec(2);
    let model = DeviceModel::default();
    let fabric = DeviceFabric::with_config(4, PipelineMode::Pipelined, Default::default());
    let (_, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
    let cmp = compare_solve_with_simulator(&report, &spec, &model);
    assert!(cmp.bytes_match());
    let table = drift_solve(&report, &spec, &model);
    assert_eq!(table.measured_total(), report.modeled_makespan(&model));
    assert_eq!(table.predicted_total(), cmp.predicted_makespan);
    assert_eq!(table.ratio(), cmp.makespan_ratio());
    let ratio = cmp.makespan_ratio();
    assert!((shares_sum(&table) - ratio).abs() <= 1e-12 * ratio.abs().max(1.0));
    // The ranked view orders rows by modeled excess without panicking.
    assert_eq!(table.ranked().len(), table.rows.len());
}

/// End-to-end live tracing: one tracer attached to the fabric covers the
/// host-side phase/level spans (via `sharded_runtime`), device job spans,
/// and transfer instants; the merged export keeps link bytes
/// single-counted and stays monotone per track.
#[test]
fn live_spans_merge_without_double_counting_transfers() {
    let (tree, part, km) = sym_problem(1200, 16, 99);
    let fabric = DeviceFabric::with_config(2, PipelineMode::Pipelined, Default::default());
    let tracer = Tracer::new(1 << 16);
    fabric.set_tracer(Some(tracer.clone()));
    let (_, _, report) = shard_construct(&fabric, &km, &km, tree, part, &cfg());
    fabric.set_tracer(None);
    let events = tracer.drain();
    assert!(!events.is_empty(), "traced run must record events");
    for cat in ["phase", "construct", "job", "fabric", "transfer"] {
        assert!(
            events.iter().any(|e| e.cat == cat),
            "expected at least one '{cat}' event"
        );
    }
    // Construction level spans carry the level in the name.
    assert!(events
        .iter()
        .any(|e| e.cat == "construct" && e.name.starts_with("construct L")));
    // Tracer transfer instants agree with the report's queue one-for-one.
    let traced_transfers = events.iter().filter(|e| e.cat == "transfer").count();
    assert_eq!(traced_transfers, report.total_comm_messages());

    let trace = export_chrome_trace_with_spans(&report, &events);
    let merged = parse_events(&trace);
    assert_monotone_tracks(&merged);
    // The tracer's transfer instants are filtered out of the merge, so the
    // byte payloads appear exactly once (on the synthesized link rows).
    let n_transfer_events = merged
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("transfer"))
        .count();
    assert_eq!(n_transfer_events, report.total_comm_messages());
    assert_eq!(transfer_bytes(&merged), report.total_comm_bytes());
}

/// Krylov iterations emit per-iteration instants through the workspace
/// tracer, riding the same fabric-sharded operator stack.
#[test]
fn krylov_iterations_are_traced() {
    let h2 = hss_matrix(640, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let fabric = DeviceFabric::with_config(2, PipelineMode::Pipelined, Default::default());
    let op = h2_sched::FabricOp::new(&fabric, &h2);
    let pre = h2_sched::UlvFabricPrecond::new(&fabric, &ulv);
    let b = vec![1.0; h2.n()];
    let tracer = Tracer::new(1 << 14);
    let mut ws = KrylovWorkspace::new(h2.n()).with_tracer(tracer.clone());
    let res = pcg_with(&op, &pre, &b, 50, 1e-10, &mut ws);
    assert!(res.converged, "pcg must converge on the shifted HSS matrix");
    let events = tracer.drain();
    let spans = events
        .iter()
        .filter(|e| e.cat == "krylov" && e.name == "pcg")
        .count();
    assert_eq!(spans, 1, "one solve span");
    let iters = events
        .iter()
        .filter(|e| e.cat == "krylov" && e.name == "pcg iter")
        .count();
    assert_eq!(iters, res.iterations, "one instant per iteration");
}

/// The tiling + projection invariants hold for the trace-bearing run too
/// (guards against the exporter reading a report shape it doesn't expect).
#[test]
fn exported_epoch_row_durations_match_report_spans() {
    let (tree, part, km) = sym_problem(1200, 16, 100);
    let fabric = DeviceFabric::with_config(4, PipelineMode::Pipelined, Default::default());
    let (_, _, report) = shard_construct(&fabric, &km, &km, tree, part, &cfg());
    let events = parse_events(&export_chrome_trace(&report));
    let epoch_rows: Vec<&Json> = events
        .iter()
        .filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("epoch")
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
        })
        .collect();
    assert_eq!(epoch_rows.len(), report.epochs.len());
    for (row, e) in epoch_rows.iter().zip(report.epochs.iter()) {
        assert_eq!(
            row.get("name").and_then(|n| n.as_str()),
            Some(e.label.as_str())
        );
        assert_eq!(
            row.get("args")
                .and_then(|a| a.get("comm_bytes"))
                .and_then(|b| b.as_u64()),
            Some(e.comm_bytes)
        );
    }
    // Summed epoch-row durations equal the summed report spans (µs).
    let total_us: f64 = epoch_rows
        .iter()
        .map(|r| r.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0))
        .sum();
    let want_us: f64 = report
        .epochs
        .iter()
        .map(|e| e.span.as_nanos() as f64 / 1000.0)
        .sum();
    assert!((total_us - want_us).abs() <= 1e-6 * want_us.max(1.0));
}
