//! Kernel-launch accounting and per-phase timing.
//!
//! The paper's performance story rests on two measurements we reproduce
//! exactly: the number of kernel launches (their batched design needs only
//! O(log N) of them — §IV.B) and the breakdown of construction time into
//! phases (Fig. 7: sampling, BSR product, entry generation, convergence
//! test, ID, and miscellaneous/marshaling).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The batched kernels of the implementation (comments in Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `batchedRand`: fill random blocks.
    Rand,
    /// `batchedGen`: batched entry generation (dense `D` and coupling `B`).
    Gen,
    /// `batchedBSRGemm`: block-sparse-row product (one launch per slot).
    BsrGemm,
    /// `batchedGemm`: plain variable-size batched GEMM.
    Gemm,
    /// Batched Householder QR (convergence test).
    Qr,
    /// `batchedID`: batched transpose + column-pivoted QR interpolative
    /// decomposition.
    Id,
    /// Batched transpose.
    Transpose,
    /// `batchedShrink`: skeleton-row gather.
    Shrink,
    /// Marshaling gathers/scatters (Thrust in the paper).
    Marshal,
    /// Parallel prefix sum for workspace sizing.
    PrefixSum,
}

pub const KERNEL_COUNT: usize = 10;

impl Kernel {
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::Rand,
        Kernel::Gen,
        Kernel::BsrGemm,
        Kernel::Gemm,
        Kernel::Qr,
        Kernel::Id,
        Kernel::Transpose,
        Kernel::Shrink,
        Kernel::Marshal,
        Kernel::PrefixSum,
    ];

    fn index(self) -> usize {
        match self {
            Kernel::Rand => 0,
            Kernel::Gen => 1,
            Kernel::BsrGemm => 2,
            Kernel::Gemm => 3,
            Kernel::Qr => 4,
            Kernel::Id => 5,
            Kernel::Transpose => 6,
            Kernel::Shrink => 7,
            Kernel::Marshal => 8,
            Kernel::PrefixSum => 9,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Rand => "batchedRand",
            Kernel::Gen => "batchedGen",
            Kernel::BsrGemm => "batchedBSRGemm",
            Kernel::Gemm => "batchedGemm",
            Kernel::Qr => "batchedQR",
            Kernel::Id => "batchedID",
            Kernel::Transpose => "batchedTranspose",
            Kernel::Shrink => "batchedShrink",
            Kernel::Marshal => "marshal",
            Kernel::PrefixSum => "prefixSum",
        }
    }
}

/// Construction phases matching the Fig. 7 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Black-box sampling `Y = K Ω` (time spent in `Kblk`).
    Sampling,
    /// Random block generation.
    Rand,
    /// BSR products subtracting dense/coupling contributions.
    BsrGemm,
    /// Dense and coupling entry generation.
    EntryGen,
    /// Convergence test (batched QR + diagonal inspection).
    ConvergenceTest,
    /// Interpolative decompositions.
    Id,
    /// Sample/ Ω upsweep (shrink + GEMM).
    Upsweep,
    /// Marshaling, workspace allocation, bookkeeping.
    Misc,
}

pub const PHASE_COUNT: usize = 8;

impl Phase {
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Sampling,
        Phase::Rand,
        Phase::BsrGemm,
        Phase::EntryGen,
        Phase::ConvergenceTest,
        Phase::Id,
        Phase::Upsweep,
        Phase::Misc,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Sampling => 0,
            Phase::Rand => 1,
            Phase::BsrGemm => 2,
            Phase::EntryGen => 3,
            Phase::ConvergenceTest => 4,
            Phase::Id => 5,
            Phase::Upsweep => 6,
            Phase::Misc => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Sampling => "sampling",
            Phase::Rand => "rand",
            Phase::BsrGemm => "bsr_gemm",
            Phase::EntryGen => "entry_gen",
            Phase::ConvergenceTest => "convergence_test",
            Phase::Id => "id",
            Phase::Upsweep => "upsweep",
            Phase::Misc => "misc",
        }
    }
}

/// Thread-safe accumulator for launches and phase times.
#[derive(Default)]
pub struct Profile {
    launches: [AtomicUsize; KERNEL_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
}

impl Profile {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_launch(&self, k: Kernel) {
        self.launches[k.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_launches(&self, k: Kernel, n: usize) {
        self.launches[k.index()].fetch_add(n, Ordering::Relaxed);
    }

    pub fn launches(&self, k: Kernel) -> usize {
        self.launches[k.index()].load(Ordering::Relaxed)
    }

    pub fn total_launches(&self) -> usize {
        self.launches
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    pub fn add_phase(&self, p: Phase, d: Duration) {
        self.phase_nanos[p.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn phase_time(&self, p: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos[p.index()].load(Ordering::Relaxed))
    }

    pub fn total_phase_time(&self) -> Duration {
        Phase::ALL.iter().map(|&p| self.phase_time(p)).sum()
    }

    /// Time a closure, attributing the elapsed wall time to `p`.
    pub fn time<R>(&self, p: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add_phase(p, t0.elapsed());
        r
    }

    pub fn reset(&self) {
        for a in &self.launches {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.phase_nanos {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Per-phase percentages of the total (Fig. 7 rows).
    pub fn phase_percentages(&self) -> Vec<(Phase, f64)> {
        let total = self.total_phase_time().as_secs_f64();
        Phase::ALL
            .iter()
            .map(|&p| {
                let t = self.phase_time(p).as_secs_f64();
                (p, if total > 0.0 { 100.0 * t / total } else { 0.0 })
            })
            .collect()
    }

    /// Summary of launch counts keyed by kernel name.
    pub fn launch_summary(&self) -> Vec<(&'static str, usize)> {
        Kernel::ALL
            .iter()
            .map(|&k| (k.name(), self.launches(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launches_accumulate() {
        let p = Profile::new();
        p.record_launch(Kernel::Gemm);
        p.record_launches(Kernel::Gemm, 2);
        p.record_launch(Kernel::Qr);
        assert_eq!(p.launches(Kernel::Gemm), 3);
        assert_eq!(p.launches(Kernel::Qr), 1);
        assert_eq!(p.total_launches(), 4);
    }

    #[test]
    fn phase_timer_accumulates() {
        let p = Profile::new();
        p.time(Phase::Id, || std::thread::sleep(Duration::from_millis(5)));
        p.time(Phase::Id, || std::thread::sleep(Duration::from_millis(5)));
        assert!(p.phase_time(Phase::Id) >= Duration::from_millis(9));
        assert_eq!(p.phase_time(Phase::Sampling), Duration::ZERO);
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = Profile::new();
        p.add_phase(Phase::Sampling, Duration::from_millis(30));
        p.add_phase(Phase::Id, Duration::from_millis(70));
        let total: f64 = p.phase_percentages().iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let p = Profile::new();
        p.record_launch(Kernel::Rand);
        p.add_phase(Phase::Misc, Duration::from_millis(1));
        p.reset();
        assert_eq!(p.total_launches(), 0);
        assert_eq!(p.total_phase_time(), Duration::ZERO);
    }
}
