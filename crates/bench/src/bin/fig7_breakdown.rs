//! Fig. 7: breakdown of construction time by phase, CPU vs GPU-sim, for
//! varying problem sizes of the 3-D covariance matrix.
//!
//! Phases match the paper's categories: sampling (`Kblk`), BSR product,
//! entry generation, convergence test (batched QR), ID, upsweep, random
//! generation, and miscellaneous (marshaling + workspace allocation).
//! A second table reports the kernel structure underneath the phases —
//! launch counts per batched kernel plus the blocked-GEMM packing passes
//! (`gemmPack` launches / staged MiB) and `gemv` calls of the dense layer.
//! A final table runs the smallest size on the 4-device fabric in both
//! schedules and prints the per-device time attribution the pipelined
//! executor measures: busy, idle, exposed stall, and overlapped transfer
//! time.
//!
//! Usage: `--sizes 8192,16384,32768 [--leaf 64] [--tol 1e-6]
//!         [--trace trace.json]`

use h2_bench::{build_problem, header, reference_h2, row, App, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig};
use h2_runtime::{Backend, DeviceModel, PipelineMode, Runtime};
use h2_sched::{shard_construct, DeviceFabric, LinkModel};

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[4096, 8192, 16384]);
    let leaf: usize = args.get("leaf", 64);
    let tol: f64 = args.get("tol", 1e-6);
    let sink = TraceSink::from_args(&args);

    println!("# Fig. 7: construction-time phase breakdown (covariance, leaf={leaf}, tol={tol})\n");

    for (backend, label) in [(Backend::Sequential, "CPU"), (Backend::Parallel, "GPU-sim")] {
        println!("## {label}\n");
        let mut kernel_rows: Vec<(usize, h2_core::SketchStats)> = Vec::new();
        header(&[
            "N",
            "sampling %",
            "bsr_gemm %",
            "entry_gen %",
            "conv_test %",
            "id %",
            "upsweep %",
            "rand %",
            "misc %",
            "total (s)",
        ]);
        for &n in &sizes {
            let problem = build_problem(App::Covariance, n, leaf, 0.7, 0xF7);
            let reference = reference_h2(&problem, tol * 1e-2);
            let rt = Runtime::new(backend);
            let cfg = SketchConfig {
                tol,
                initial_samples: 128,
                ..Default::default()
            };
            let (_, stats) = sketch_construct(
                &reference,
                &problem.kernel,
                problem.tree.clone(),
                problem.partition.clone(),
                &rt,
                &cfg,
            );
            let total = stats.phase_total();
            let pct = |name: &str| {
                let s: f64 = stats
                    .phase_seconds
                    .iter()
                    .filter(|(p, _)| *p == name)
                    .map(|(_, s)| *s)
                    .sum();
                format!("{:.1}", 100.0 * s / total.max(1e-12))
            };
            row(&[
                n.to_string(),
                pct("sampling"),
                pct("bsr_gemm"),
                pct("entry_gen"),
                pct("convergence_test"),
                pct("id"),
                pct("upsweep"),
                pct("rand"),
                pct("misc"),
                format!("{total:.3}"),
            ]);
            kernel_rows.push((n, stats));
        }
        // The launch structure underneath the phases: the batched kernels
        // of §IV.B plus the dense layer's packing and gemv activity.
        println!("\n### Kernel structure ({label})\n");
        header(&[
            "N",
            "batchedGemm",
            "batchedBSRGemm",
            "gemmPack",
            "pack MiB",
            "gemv",
            "total launches",
        ]);
        for (n, stats) in &kernel_rows {
            let count = |name: &str| {
                stats
                    .launches
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map(|(_, c)| *c)
                    .unwrap_or(0)
            };
            row(&[
                n.to_string(),
                count("batchedGemm").to_string(),
                count("batchedBSRGemm").to_string(),
                count("gemmPack").to_string(),
                format!("{:.1}", h2_bench::mib(stats.pack_bytes as usize)),
                count("gemv").to_string(),
                stats.total_launches().to_string(),
            ]);
        }
        println!();
    }
    // ---- fabric schedule breakdown: where the makespan went ----
    // The smallest size on 4 virtual devices, synchronous vs pipelined,
    // over a CPU-scale virtual link so transfer time is visible: busy is
    // kernel execution, stall is exposed communication, overlap is the
    // transfer time hidden behind compute, idle is the rest of the epoch
    // windows (join latency + driver-side marshaling).
    let n0 = sizes[0];
    println!("## Device fabric schedule breakdown (N={n0}, D=4)\n");
    header(&[
        "mode",
        "modeled makespan (ms)",
        "busy max/dev (ms)",
        "idle (ms)",
        "stall (ms)",
        "overlap (ms)",
    ]);
    let problem = build_problem(App::Covariance, n0, leaf, 0.7, 0xF7);
    let reference = reference_h2(&problem, tol * 1e-2);
    let cfg = SketchConfig {
        tol,
        initial_samples: 128,
        ..Default::default()
    };
    let model = DeviceModel::default();
    for (mode, label) in [
        (PipelineMode::Synchronous, "synchronous"),
        (PipelineMode::Pipelined, "pipelined"),
    ] {
        let fabric = DeviceFabric::with_config(4, mode, LinkModel::cpu_scale());
        sink.attach(&fabric);
        let (_, _, report) = shard_construct(
            &fabric,
            &reference,
            &problem.kernel,
            problem.tree.clone(),
            problem.partition.clone(),
            &cfg,
        );
        let busy_max = report
            .busy_per_device()
            .into_iter()
            .map(|b| b.as_secs_f64())
            .fold(0.0, f64::max);
        row(&[
            label.to_string(),
            format!("{:.3}", report.modeled_makespan(&model) * 1e3),
            format!("{:.1}", busy_max * 1e3),
            format!("{:.1}", report.idle_total().as_secs_f64() * 1e3),
            format!("{:.1}", report.stall_total().as_secs_f64() * 1e3),
            format!("{:.1}", report.overlapped_total().as_secs_f64() * 1e3),
        ]);
    }
    println!();
    println!("(Paper observation to compare: BSR product + sampling dominate on both backends;\n entry generation 10-20%; ID 5-10%; convergence test relatively larger on the batched backend at small N.)");
    sink.finish();
}
