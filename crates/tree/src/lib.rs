//! # h2-tree
//!
//! Geometric clustering substrate: points and bounding boxes, complete KD
//! cluster trees with level-contiguous storage (the paper's flattened-tree
//! GPU layout), the general admissibility condition (paper eq. (1)), and the
//! dual-tree traversal producing the block partition / matrix tree with its
//! sparsity constants.

pub mod cluster;
pub mod geometry;
pub mod partition;

pub use cluster::{Cluster, ClusterTree};
pub use geometry::{
    anisotropic_box, annulus, clustered_blobs, dist, grid_cube, grid_plane, helix, uniform_cube,
    uniform_sphere, BBox, Point,
};
pub use partition::{Admissibility, LevelStats, Partition};
