//! Extraction of multi-device [`LevelSpec`]s from a constructed H2 matrix.
//!
//! §IV.B of the paper outlines the multi-GPU extension of Algorithm 1; the
//! quantitative model lives in [`h2_runtime::multidev`]. This module bridges
//! the two: given a *concrete* construction result (whose node sizes, ranks
//! and block structure ground the cost model in a real instance), it emits
//! one [`LevelSpec`] per processed level, mirroring the exact kernel
//! sequence `sketch_construct` executes.

use h2_matrix::H2Matrix;
use h2_runtime::{LevelSpec, StreamSpec};

/// Build per-level execution specs for the construction that produced `h2`.
///
/// Returns one spec per processed level, leaf first — the order Algorithm 1
/// runs them. Returns an empty vector for all-dense (tiny) partitions,
/// which never launch a batched sketching kernel.
///
/// For an unsymmetric matrix (`h2.col.is_some()`) the spec additionally
/// carries the column stream's populations (`LevelSpec::col_stream`) and
/// its `gen_blocks` enumerate every *ordered* pair — exactly the kernel
/// populations the two-stream engine executes, so one spec set feeds both
/// the [`h2_runtime::simulate`] cost model and the real `h2_sched`
/// executor in both symmetry regimes.
pub fn level_specs(h2: &H2Matrix) -> Vec<LevelSpec> {
    let tree = &h2.tree;
    let partition = &h2.partition;
    let symmetric = h2.is_symmetric();
    let leaf_level = tree.leaf_level();
    let Some(top) = partition.top_far_level(tree) else {
        return Vec::new();
    };

    let mut specs = Vec::with_capacity(leaf_level - top + 1);
    for l in (top..=leaf_level).rev() {
        let node_ids: Vec<usize> = tree.level(l).collect();
        let mut spec = LevelSpec::default();
        let mut col = StreamSpec::default();

        if l == leaf_level {
            // BSR population = ID population = the leaves.
            spec.rows = node_ids.iter().map(|&id| tree.nodes[id].len()).collect();
            spec.col_rows = spec.rows.clone();
            spec.adj = node_ids
                .iter()
                .map(|&s| {
                    partition.near_of[s]
                        .iter()
                        .map(|&t| tree.local_index(t))
                        .collect()
                })
                .collect();
            spec.id_rows = spec.rows.clone();
            col.rows = spec.rows.clone();
            col.id_rows = spec.rows.clone();
            // Dense near blocks are generated at this level (line 8):
            // unordered pairs when symmetric, every ordered pair otherwise.
            for &s in &node_ids {
                for &t in partition.near_of[s]
                    .iter()
                    .filter(|&&t| !symmetric || s <= t)
                {
                    spec.gen_blocks
                        .push((tree.nodes[s].len(), tree.nodes[t].len()));
                }
            }
        } else {
            // BSR population = the children (level l+1), subtracting the
            // coupling blocks generated one iteration earlier (line 27).
            let child_ids: Vec<usize> = tree.level(l + 1).collect();
            spec.rows = child_ids.iter().map(|&id| h2.rank(id)).collect();
            // The row stream's partner inputs `Ω_b` were compressed by the
            // *column* basis (`Ω ← Vᵀ Ω`), so their row counts are the
            // column-side ranks — which alias the row side when symmetric.
            spec.col_rows = child_ids.iter().map(|&id| h2.col_rank(id)).collect();
            spec.adj = child_ids
                .iter()
                .map(|&s| {
                    partition.far_of[s]
                        .iter()
                        .map(|&t| tree.local_index(t))
                        .collect()
                })
                .collect();
            // Line-24 merges: sibling pairs of the child population.
            spec.merges = node_ids
                .iter()
                .map(|&p| {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    (tree.local_index(c1), tree.local_index(c2))
                })
                .collect();
            spec.id_rows = node_ids
                .iter()
                .map(|&p| {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    h2.rank(c1) + h2.rank(c2)
                })
                .collect();
            col.rows = child_ids.iter().map(|&id| h2.col_rank(id)).collect();
            col.id_rows = node_ids
                .iter()
                .map(|&p| {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    h2.col_rank(c1) + h2.col_rank(c2)
                })
                .collect();
        }

        // ...and the level's coupling blocks (line 41): `B_{s,t}` has shape
        // (row rank of s) × (column rank of t).
        for &s in &node_ids {
            for &t in partition.far_of[s]
                .iter()
                .filter(|&&t| !symmetric || s <= t)
            {
                spec.gen_blocks.push((h2.rank(s), h2.col_rank(t)));
            }
        }
        spec.ranks = node_ids.iter().map(|&id| h2.rank(id)).collect();
        if !symmetric {
            col.ranks = node_ids.iter().map(|&id| h2.col_rank(id)).collect();
            spec.col_stream = Some(col);
        }
        specs.push(spec);
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sketch_construct, SketchConfig};
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_runtime::{simulate, DeviceModel, Runtime};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn built(n: usize, seed: u64) -> H2Matrix {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        sketch_construct(&km, &km, tree, part, &rt, &cfg).0
    }

    #[test]
    fn specs_cover_processed_levels() {
        let h2 = built(2000, 601);
        let specs = level_specs(&h2);
        let top = h2.partition.top_far_level(&h2.tree).unwrap();
        assert_eq!(specs.len(), h2.tree.leaf_level() - top + 1);
        // Leaf spec populations coincide.
        let leaf = &specs[0];
        assert_eq!(leaf.rows, leaf.id_rows);
        assert!(leaf.merges.is_empty());
        // Inner specs merge children pairwise.
        for s in &specs[1..] {
            assert_eq!(s.merges.len(), s.id_rows.len());
            assert_eq!(s.rows.len(), 2 * s.id_rows.len());
        }
    }

    #[test]
    fn adjacency_indices_in_range() {
        let h2 = built(2000, 602);
        for spec in level_specs(&h2) {
            for (i, partners) in spec.adj.iter().enumerate() {
                assert!(i < spec.rows.len());
                for &b in partners {
                    assert!(b < spec.col_rows.len(), "partner {b} out of range");
                }
            }
        }
    }

    #[test]
    fn id_rows_match_stacked_child_ranks() {
        let h2 = built(2000, 603);
        let specs = level_specs(&h2);
        for spec in &specs[1..] {
            for (&(a, b), &m) in spec.merges.iter().zip(&spec.id_rows) {
                assert_eq!(spec.rows[a] + spec.rows[b], m);
            }
        }
    }

    #[test]
    fn all_dense_partition_has_no_specs() {
        let h2 = built(40, 604);
        assert!(level_specs(&h2).is_empty());
    }

    fn built_unsym(n: usize, seed: u64) -> H2Matrix {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = h2_kernels::UnsymKernelMatrix::new(
            h2_kernels::ConvectionKernel::default(),
            tree.points.clone(),
        );
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        crate::sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg).0
    }

    #[test]
    fn symmetric_specs_have_no_col_stream() {
        let h2 = built(2000, 609);
        assert!(level_specs(&h2).iter().all(|s| s.col_stream.is_none()));
    }

    #[test]
    fn unsym_specs_carry_col_stream_populations() {
        let h2 = built_unsym(2000, 610);
        let specs = level_specs(&h2);
        assert!(!specs.is_empty());
        for (i, s) in specs.iter().enumerate() {
            let cs = s.col_stream.as_ref().expect("col stream populated");
            assert_eq!(cs.rows.len(), s.rows.len(), "BSR populations align");
            assert_eq!(cs.id_rows.len(), s.id_rows.len(), "ID populations align");
            assert_eq!(cs.ranks.len(), s.ranks.len());
            if i == 0 {
                // Leaf: both streams see the cluster sizes.
                assert_eq!(cs.rows, s.rows);
            }
        }
    }

    #[test]
    fn unsym_gen_blocks_enumerate_ordered_pairs() {
        let h2 = built_unsym(1500, 611);
        let tree = &h2.tree;
        let part = &h2.partition;
        let leaf = tree.leaf_level();
        // Exact expectation: the leaf spec's gen blocks are all *ordered*
        // near pairs plus all ordered leaf-level far pairs — the two-stream
        // engine generates K(I_s, I_t) and K(I_t, I_s) separately.
        let mut ordered = 0usize;
        let mut unordered = 0usize;
        for s in tree.level(leaf) {
            for &t in part.near_of[s].iter().chain(part.far_of[s].iter()) {
                ordered += 1;
                if s <= t {
                    unordered += 1;
                }
            }
        }
        let leaf_spec = &level_specs(&h2)[0];
        assert_eq!(
            leaf_spec.gen_blocks.len(),
            ordered,
            "leaf gen blocks must enumerate every ordered pair"
        );
        assert!(
            ordered > unordered,
            "test geometry must have off-diagonal pairs"
        );
    }

    #[test]
    fn unsym_simulation_costs_exceed_symmetric_shape() {
        // Two streams cost more than one on the same structure: zero out the
        // col stream of a real unsym spec set and the simulated makespan
        // must drop.
        let h2 = built_unsym(2000, 612);
        let specs = level_specs(&h2);
        let mut row_only = specs.clone();
        for s in &mut row_only {
            s.col_stream = None;
        }
        let m = DeviceModel::default();
        let full = simulate(&specs, 48, 2, &m);
        let half = simulate(&row_only, 48, 2, &m);
        assert!(
            full.compute_total() > half.compute_total(),
            "col stream must add compute"
        );
        assert!(
            full.total_comm_bytes >= half.total_comm_bytes,
            "col stream cannot reduce traffic"
        );
    }

    #[test]
    fn simulated_speedup_in_compute_bound_regime() {
        // With a compute-bound device model (weak compute, fast links) the
        // level-parallel decomposition must scale.
        let h2 = built(4000, 605);
        let specs = level_specs(&h2);
        let m = DeviceModel {
            flops_per_sec: 1.0e10,
            link_bandwidth: 1.0e12,
            link_latency: 1.0e-7,
            launch_overhead: 1.0e-7,
            entry_cost: 20.0,
        };
        let t1 = simulate(&specs, 256, 1, &m).makespan;
        let t2 = simulate(&specs, 256, 2, &m).makespan;
        let t4 = simulate(&specs, 256, 4, &m).makespan;
        assert!(t2 < t1, "2 devices must beat 1: {t2} vs {t1}");
        assert!(t4 < t2, "4 devices must beat 2: {t4} vs {t2}");
    }

    #[test]
    fn small_problems_are_comm_bound_on_fast_devices() {
        // The flip side (and the reason the paper's evaluation is
        // single-GPU at these sizes): with A100-class compute, an N=4000
        // problem gains nothing from a second device.
        let h2 = built(4000, 608);
        let specs = level_specs(&h2);
        let m = DeviceModel::default();
        let t1 = simulate(&specs, 256, 1, &m).makespan;
        let t2 = simulate(&specs, 256, 2, &m).makespan;
        assert!(
            t2 > 0.9 * t1,
            "tiny problems must not show fake multi-GPU wins"
        );
    }

    #[test]
    fn single_device_no_comm_for_real_problem() {
        let h2 = built(3000, 606);
        let specs = level_specs(&h2);
        let rep = simulate(&specs, 256, 1, &DeviceModel::default());
        assert_eq!(rep.total_comm_bytes, 0);
    }

    #[test]
    fn comm_appears_with_multiple_devices() {
        let h2 = built(3000, 607);
        let specs = level_specs(&h2);
        let rep = simulate(&specs, 256, 4, &DeviceModel::default());
        assert!(rep.total_comm_bytes > 0, "BSR Ω traffic must appear at D=4");
    }
}
