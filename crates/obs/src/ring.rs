//! A bounded lock-free MPMC ring buffer (Vyukov's sequence-stamped array
//! queue) — the tracer's sink. Producers on device worker threads push
//! without taking a lock; when the buffer is full, pushes are counted and
//! dropped rather than blocking the instrumented hot path.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    /// Sequence stamp: `pos` when empty and claimable by the producer at
    /// `pos`, `pos + 1` when full and claimable by the consumer at `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

pub struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots hand values across threads, protected by the seq protocol.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Capacity is rounded up to a power of two (minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let buf = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            buf,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Push without blocking; returns `false` (and bumps the drop counter)
    /// when the ring is full.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this producer the slot's sole
                        // owner until the seq store publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest element, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this consumer the slot's sole
                        // owner; the slot holds an initialized value.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of pushes rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity_and_drop_on_full() {
        let ring = Ring::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(i));
        }
        assert!(!ring.push(99), "fifth push must be rejected");
        assert_eq!(ring.dropped(), 1);
        assert_eq!(
            (0..4).map(|_| ring.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(ring.pop().is_none());
        // Freed capacity is reusable.
        assert!(ring.push(7));
        assert_eq!(ring.pop(), Some(7));
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let ring = Arc::new(Ring::with_capacity(1 << 12));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        assert!(ring.push(t as u64 * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(v) = ring.pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 4 * 512);
        assert_eq!(ring.dropped(), 0);
        // Per-producer order is preserved.
        for t in 0..4u64 {
            let mine: Vec<u64> = seen.iter().copied().filter(|v| v / 1000 == t).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
