//! Binary persistence for compressed H2 matrices.
//!
//! Compressing a large operator costs minutes; reusing it across runs
//! (solver pipelines, parameter studies) should not require
//! reconstruction. This module provides a versioned, framed little-endian
//! binary format for [`H2Matrix`] — including its cluster tree and
//! partition, so a loaded matrix is fully self-contained — written with
//! `std::io` only (no serialization-framework dependency).
//!
//! Format: magic `b"H2SK"` (symmetric) or `b"H2SU"` (unsymmetric), a format
//! version, then length-prefixed sections (points, permutations, tree
//! nodes, partition lists, bases, skeletons, block stores; the unsymmetric
//! magic adds the column-side basis/skeleton sections). All integers are
//! `u64` little-endian; floats are `f64` bit patterns. One reader accepts
//! both magics and reconstructs the matching [`H2Matrix`] side layout.

use crate::format::{BasisSide, BlockStore, H2Matrix, StoreLayout};
use h2_dense::Mat;
use h2_tree::{Admissibility, BBox, Cluster, ClusterTree, Partition};
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC_SYM: &[u8; 4] = b"H2SK";
const MAGIC_UNSYM: &[u8; 4] = b"H2SU";
const VERSION: u64 = 1;

// ------------------------------------------------------------ primitives

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_usize(w: &mut impl Write, v: usize) -> io::Result<()> {
    write_u64(w, v as u64)
}

fn read_usize(r: &mut impl Read) -> io::Result<usize> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "usize overflow"))
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_usize_slice(w: &mut impl Write, s: &[usize]) -> io::Result<()> {
    write_usize(w, s.len())?;
    for &v in s {
        write_usize(w, v)?;
    }
    Ok(())
}

fn read_usize_vec(r: &mut impl Read) -> io::Result<Vec<usize>> {
    let n = read_usize(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_usize(r)?);
    }
    Ok(out)
}

fn write_mat(w: &mut impl Write, m: &Mat) -> io::Result<()> {
    write_usize(w, m.rows())?;
    write_usize(w, m.cols())?;
    for &v in m.as_slice() {
        write_f64(w, v)?;
    }
    Ok(())
}

fn read_mat(r: &mut impl Read) -> io::Result<Mat> {
    let rows = read_usize(r)?;
    let cols = read_usize(r)?;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(read_f64(r)?);
    }
    Ok(Mat::from_vec(rows, cols, data))
}

fn write_block_store(w: &mut impl Write, s: &BlockStore) -> io::Result<()> {
    write_usize(w, s.pairs.len())?;
    for (i, &(a, b)) in s.pairs.iter().enumerate() {
        write_usize(w, a)?;
        write_usize(w, b)?;
        write_mat(w, &s.blocks[i])?;
    }
    Ok(())
}

fn read_block_store(r: &mut impl Read, layout: StoreLayout) -> io::Result<BlockStore> {
    let n = read_usize(r)?;
    let mut s = match layout {
        StoreLayout::Symmetric => BlockStore::symmetric(),
        StoreLayout::Ordered => BlockStore::ordered(),
    };
    for _ in 0..n {
        let a = read_usize(r)?;
        let b = read_usize(r)?;
        if layout == StoreLayout::Symmetric && a > b {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unordered symmetric pair",
            ));
        }
        if s.get(a, b).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("duplicate block pair ({a},{b})"),
            ));
        }
        let m = read_mat(r)?;
        s.insert(a, b, m);
    }
    Ok(s)
}

fn write_basis_section(w: &mut impl Write, basis: &[Mat]) -> io::Result<()> {
    write_usize(w, basis.len())?;
    for b in basis {
        write_mat(w, b)?;
    }
    Ok(())
}

fn read_basis_section(r: &mut impl Read) -> io::Result<Vec<Mat>> {
    let nb = read_usize(r)?;
    let mut basis = Vec::with_capacity(nb);
    for _ in 0..nb {
        basis.push(read_mat(r)?);
    }
    Ok(basis)
}

fn write_skel_section(w: &mut impl Write, skels: &[Vec<usize>]) -> io::Result<()> {
    write_usize(w, skels.len())?;
    for s in skels {
        write_usize_slice(w, s)?;
    }
    Ok(())
}

fn read_skel_section(r: &mut impl Read) -> io::Result<Vec<Vec<usize>>> {
    let ns = read_usize(r)?;
    let mut skel = Vec::with_capacity(ns);
    for _ in 0..ns {
        skel.push(read_usize_vec(r)?);
    }
    Ok(skel)
}

// ------------------------------------------------------------- tree bits

fn write_tree(w: &mut impl Write, t: &ClusterTree) -> io::Result<()> {
    write_usize(w, t.points.len())?;
    for p in &t.points {
        for &c in p {
            write_f64(w, c)?;
        }
    }
    write_usize_slice(w, &t.perm)?;
    write_usize_slice(w, &t.iperm)?;
    write_usize_slice(w, &t.level_ptr)?;
    write_usize(w, t.nodes.len())?;
    for c in &t.nodes {
        write_usize(w, c.begin)?;
        write_usize(w, c.end)?;
        for &v in &c.bbox.min {
            write_f64(w, v)?;
        }
        for &v in &c.bbox.max {
            write_f64(w, v)?;
        }
        match c.children {
            Some((a, b)) => {
                write_u64(w, 1)?;
                write_usize(w, a)?;
                write_usize(w, b)?;
            }
            None => write_u64(w, 0)?,
        }
        match c.parent {
            Some(p) => {
                write_u64(w, 1)?;
                write_usize(w, p)?;
            }
            None => write_u64(w, 0)?,
        }
    }
    Ok(())
}

fn read_tree(r: &mut impl Read) -> io::Result<ClusterTree> {
    let npts = read_usize(r)?;
    let mut points = Vec::with_capacity(npts);
    for _ in 0..npts {
        let mut p = [0.0; 3];
        for c in p.iter_mut() {
            *c = read_f64(r)?;
        }
        points.push(p);
    }
    let perm = read_usize_vec(r)?;
    let iperm = read_usize_vec(r)?;
    let level_ptr = read_usize_vec(r)?;
    let nnodes = read_usize(r)?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        let begin = read_usize(r)?;
        let end = read_usize(r)?;
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for v in min.iter_mut() {
            *v = read_f64(r)?;
        }
        for v in max.iter_mut() {
            *v = read_f64(r)?;
        }
        let children = if read_u64(r)? == 1 {
            Some((read_usize(r)?, read_usize(r)?))
        } else {
            None
        };
        let parent = if read_u64(r)? == 1 {
            Some(read_usize(r)?)
        } else {
            None
        };
        nodes.push(Cluster {
            begin,
            end,
            bbox: BBox { min, max },
            children,
            parent,
        });
    }
    let tree = ClusterTree {
        points,
        perm,
        iperm,
        nodes,
        level_ptr,
    };
    tree.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(tree)
}

fn write_partition(w: &mut impl Write, p: &Partition) -> io::Result<()> {
    match p.rule {
        Admissibility::Strong { eta } => {
            write_u64(w, 0)?;
            write_f64(w, eta)?;
        }
        Admissibility::Weak => write_u64(w, 1)?,
    }
    write_usize(w, p.nlevels)?;
    for lists in [&p.far_of, &p.near_of, &p.inadm_of] {
        write_usize(w, lists.len())?;
        for l in lists {
            write_usize_slice(w, l)?;
        }
    }
    Ok(())
}

fn read_partition(r: &mut impl Read) -> io::Result<Partition> {
    let rule = match read_u64(r)? {
        0 => Admissibility::Strong { eta: read_f64(r)? },
        1 => Admissibility::Weak,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad admissibility tag",
            ))
        }
    };
    let nlevels = read_usize(r)?;
    let mut lists: Vec<Vec<Vec<usize>>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let n = read_usize(r)?;
        let mut outer = Vec::with_capacity(n);
        for _ in 0..n {
            outer.push(read_usize_vec(r)?);
        }
        lists.push(outer);
    }
    let inadm_of = lists.pop().unwrap();
    let near_of = lists.pop().unwrap();
    let far_of = lists.pop().unwrap();
    Ok(Partition {
        rule,
        far_of,
        near_of,
        inadm_of,
        nlevels,
    })
}

// --------------------------------------------------------------- matrix

impl H2Matrix {
    /// Serialize the matrix (including its tree and partition) to a writer.
    /// Symmetric matrices use the `H2SK` frame, unsymmetric ones `H2SU`
    /// with the extra column-side sections.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(if self.is_symmetric() {
            MAGIC_SYM
        } else {
            MAGIC_UNSYM
        })?;
        write_u64(w, VERSION)?;
        write_tree(w, &self.tree)?;
        write_partition(w, &self.partition)?;
        write_basis_section(w, &self.basis)?;
        if let Some(c) = &self.col {
            write_basis_section(w, &c.basis)?;
        }
        write_skel_section(w, &self.skel)?;
        if let Some(c) = &self.col {
            write_skel_section(w, &c.skel)?;
        }
        write_block_store(w, &self.coupling)?;
        write_block_store(w, &self.dense)?;
        Ok(())
    }

    /// Deserialize a matrix written by [`H2Matrix::write_to`] — either side
    /// layout. The result is structurally validated before being returned.
    pub fn read_from(r: &mut impl Read) -> io::Result<H2Matrix> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        let symmetric = match &magic {
            m if m == MAGIC_SYM => true,
            m if m == MAGIC_UNSYM => false,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an h2sketch file",
                ))
            }
        };
        let version = read_u64(r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported format version {version}"),
            ));
        }
        let tree = Arc::new(read_tree(r)?);
        let partition = Arc::new(read_partition(r)?);
        let basis = read_basis_section(r)?;
        let col_basis = if symmetric {
            None
        } else {
            Some(read_basis_section(r)?)
        };
        let skel = read_skel_section(r)?;
        let col_skel = if symmetric {
            None
        } else {
            Some(read_skel_section(r)?)
        };
        let layout = if symmetric {
            StoreLayout::Symmetric
        } else {
            StoreLayout::Ordered
        };
        let coupling = read_block_store(r, layout)?;
        let dense = read_block_store(r, layout)?;
        let col = match (col_basis, col_skel) {
            (Some(basis), Some(skel)) => Some(BasisSide {
                prec: vec![h2_dense::Precision::F64; basis.len()],
                basis,
                skel,
            }),
            _ => None,
        };
        let basis_prec = vec![h2_dense::Precision::F64; basis.len()];
        let h2 = H2Matrix {
            tree,
            partition,
            basis,
            skel,
            basis_prec,
            col,
            coupling,
            dense,
        };
        h2.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(h2)
    }

    /// Serialize into an in-memory buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("in-memory write cannot fail");
        buf
    }

    /// Deserialize from an in-memory buffer.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<H2Matrix> {
        let mut cursor = bytes;
        Self::read_from(&mut cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::{direct_construct, DirectConfig};
    use h2_kernels::{ExponentialKernel, KernelMatrix};

    fn sample_h2(n: usize, seed: u64) -> H2Matrix {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        direct_construct(&km, tree, part, &DirectConfig::default())
    }

    #[test]
    fn roundtrip_preserves_matrix_exactly() {
        let h2 = sample_h2(800, 901);
        let bytes = h2.to_bytes();
        let back = H2Matrix::from_bytes(&bytes).unwrap();
        back.validate().unwrap();
        assert!(back.is_symmetric());
        // Bitwise-identical representation: dense materializations agree
        // exactly, as do memory accounting and rank structure.
        let mut d = h2.to_dense();
        d.axpy(-1.0, &back.to_dense());
        assert_eq!(d.norm_max(), 0.0);
        assert_eq!(h2.memory_bytes(), back.memory_bytes());
        assert_eq!(h2.rank_range(), back.rank_range());
        // Matvec through the loaded representation agrees bitwise.
        let x = h2_dense::gaussian_mat(800, 2, 902);
        let y1 = h2.apply_permuted_mat(&x);
        let y2 = back.apply_permuted_mat(&x);
        let mut dy = y1;
        dy.axpy(-1.0, &y2);
        assert_eq!(dy.norm_max(), 0.0);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(H2Matrix::from_bytes(b"not a file").is_err());
        let h2 = sample_h2(200, 903);
        let bytes = h2.to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(H2Matrix::from_bytes(&bad).is_err());
        // Truncated payload.
        assert!(H2Matrix::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(H2Matrix::from_bytes(&bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let h2 = sample_h2(300, 904);
        let path = std::env::temp_dir().join("h2sketch_io_test.h2");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            h2.write_to(&mut f).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let back = H2Matrix::read_from(&mut f).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(h2.rank_range(), back.rank_range());
        let mut d = h2.to_dense();
        d.axpy(-1.0, &back.to_dense());
        assert_eq!(d.norm_max(), 0.0);
    }

    #[test]
    fn weak_partition_roundtrip() {
        let pts = h2_tree::uniform_cube(300, 905);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 2.0 }, tree.points.clone());
        let cfg = DirectConfig {
            tol: 1e-8,
            n_proxy: 200,
            max_rank: 128,
            seed: 9,
        };
        let h2 = direct_construct(&km, tree, part, &cfg);
        let back = H2Matrix::from_bytes(&h2.to_bytes()).unwrap();
        assert!(matches!(back.partition.rule, Admissibility::Weak));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &back.to_dense());
        assert_eq!(d.norm_max(), 0.0);
    }
}
