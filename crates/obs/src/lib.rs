//! # h2-obs
//!
//! The unified observability layer: a span/event tracer, a metrics
//! registry, a Chrome trace-event exporter and a sim-drift attributor —
//! zero external dependencies, so every crate in the workspace can emit
//! without pulling anything into the offline build.
//!
//! The stack previously measured itself through four disconnected
//! surfaces: `h2_runtime::Profile` launch/phase counters, the fabric's
//! `EpochLog`, the process-global `h2_dense::gemm::stats`, and per-binary
//! printing. This crate is the one place they reconcile: the same
//! accounting records that back the simulator-equality tests render as a
//! per-device timeline, and the metric totals are **exact** (u64 sums),
//! so `metrics.counter("fabric.comm_bytes") == ExecReport::total_comm_bytes()`
//! is an equality, not an approximation.
//!
//! ## Span taxonomy
//!
//! Spans carry a `cat` (category) naming the layer that emitted them:
//!
//! | `cat` | emitted by | meaning |
//! |---|---|---|
//! | `phase` | `Runtime::phase` | one profiled runtime phase (Sketch, QR, ID, …) |
//! | `construct` | `h2_core::construct` | one level of Algorithm 1's bottom-up loop |
//! | `ulv` | `h2_solve::ulv` | one per-level batched factor phase (rotate/eliminate/pass-up) |
//! | `krylov` | `h2_solve::krylov` | one Krylov iteration (instant, with the residual) |
//! | `job` | fabric workers | one enqueued job on a device track (wait + run) |
//! | `fabric` | fabric control path | enqueue/flush/epoch-close instants |
//! | `transfer` | fabric transfer paths | one cross-device copy (bytes, kind, precision) |
//! | `arena` | fabric epoch boundary | standby-bank rotation instants |
//!
//! Thread-track spans nest through a thread-local scope stack; the parent
//! span id is preserved in the export (`args.parent`).
//!
//! ## Loading a trace in Perfetto
//!
//! Write a trace with `--trace out.json` on any bench binary (or
//! `h2_sched::trace::export_chrome_trace`), open
//! <https://ui.perfetto.dev>, and drag the file in — `chrome://tracing`
//! accepts the same file. Process rows group the tracks: "fabric
//! devices" holds one row per virtual device (busy/stall/overlapped/idle
//! slices per epoch tile the epoch span exactly), "fabric links" holds
//! the per-destination transfer instants with `bytes`/`kind`/`prec`
//! arguments, and "host threads" holds the `Runtime::phase`-level spans.
//!
//! ## Drift attribution and the §IV.B cost model
//!
//! The simulator (`h2_runtime::multidev`) prices each construction level
//! with the paper's §IV.B terms: batched-kernel compute at the device
//! flop rate, cross-device traffic at link bandwidth + per-message
//! latency, and `active·(6 + Csp)` kernel launches at a fixed overhead.
//! The executor projects its *measured* per-epoch counters through the
//! same `DeviceModel`-priced formula. A
//! [`DriftTable`] pairs the two per epoch and decomposes the makespan
//! ratio: each row's `share = measured_e / predicted_total` sums exactly
//! to the observed ratio, and each row splits into the model's own
//! compute/comm/launch terms — so a 1.8x band reads as e.g. "0.6 of the
//! ratio is the leaf level's launch overhead", mapped one-to-one onto
//! the cost model's vocabulary.

pub mod chrome;
pub mod drift;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;

pub use chrome::{ns_to_us, ChromeTrace};
pub use drift::{DriftPart, DriftRow, DriftTable};
pub use json::Json;
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, Registry};
pub use ring::Ring;
pub use span::{current_thread_track, ArgValue, Event, SpanGuard, Tracer, Track};
