//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! No network access to crates.io is available in this build environment,
//! so the workspace vendors the tiny slice of `rand` it uses: a seedable
//! small RNG (`SmallRng`, here SplitMix64 — statistically solid for test
//! and sketching purposes, 64-bit state, trivially seedable), `random::<T>()`
//! for `f64`/`bool`/integers and `random_range` over integer ranges.
//! Determinism per seed is the property the workspace relies on.

pub mod rngs {
    /// A small, fast, seedable RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

use rngs::SmallRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable from uniform bits (subset of rand's standard
/// distribution).
pub trait Standard: Sized {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn from_bits(bits: u64) -> usize {
        bits as usize
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                self.start + (next() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: any value.
                    return lo.wrapping_add(next() as $t);
                }
                lo + (next() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        self.start + f64::from_bits_uniform(next()) * (self.end - self.start)
    }
}

trait F64Uniform {
    fn from_bits_uniform(bits: u64) -> f64;
}

impl F64Uniform for f64 {
    #[inline]
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Random-value interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..17);
            assert!((5..17).contains(&v));
        }
    }
}
