//! Blocked multi-RHS sweep acceptance grid: for k ∈ {1, 3, 8, 32} RHS
//! columns, D ∈ {1, 2, 4} devices, both pipeline modes and both symmetry
//! regimes, the fabric-sharded blocked solve must be **bit-identical**
//! per column to a single-RHS solve of that column alone, and its
//! transfer byte totals must equal the `simulate_solve` prediction at
//! that k — the multi-RHS extension of the solver-arm simulator
//! equivalence (`solver_sweep.rs`).

use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
use h2_dense::{gaussian_mat, Mat};
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{DeviceModel, PipelineMode, Runtime};
use h2_sched::{
    compare_solve_with_simulator, shard_ulv_solve, shard_ulv_solve_with_report, DeviceFabric,
};
use h2_solve::UlvFactor;
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn line_points(n: usize) -> Vec<[f64; 3]> {
    (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
        }
    }
}

fn sym_hss(n: usize, leaf: usize) -> H2Matrix {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 2.0);
    h2
}

fn unsym_hss(n: usize, leaf: usize) -> H2Matrix {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-10,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 3.0);
    h2
}

/// The full grid. Per-column references are in-process single-RHS solves
/// (`UlvFactor::solve` on one column); `solver_sweep.rs` pins the sharded
/// single-RHS path bit-identical to the in-process one, so equality here
/// extends the chain to "blocked sharded == k separate single-RHS solves"
/// at every grid point.
#[test]
fn blocked_sweep_grid_bit_identical_and_bytes_equal() {
    let sym = sym_hss(640, 32);
    let unsym = unsym_hss(512, 32);
    let model = DeviceModel::default();
    for (h2, n, tag) in [(&sym, 640usize, "sym"), (&unsym, 512usize, "unsym")] {
        let ulv = UlvFactor::new(h2).unwrap();
        for k in [1usize, 3, 8, 32] {
            let b = gaussian_mat(n, k, 0xB0 + k as u64);
            let refs: Vec<Mat> = (0..k)
                .map(|j| ulv.solve(&b.col_block(j, 1).to_mat()))
                .collect();
            let spec = ulv.solve_spec(k);
            for devices in [1usize, 2, 4] {
                for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
                    let fabric = match mode {
                        PipelineMode::Pipelined => DeviceFabric::pipelined(devices),
                        _ => DeviceFabric::new(devices),
                    };
                    let (x, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
                    for (j, want) in refs.iter().enumerate() {
                        assert_eq!(
                            x.col_block(j, 1).to_mat().as_slice(),
                            want.as_slice(),
                            "{tag} k={k} D={devices} {mode:?}: column {j} diverged \
                             from its single-RHS solve"
                        );
                    }
                    let cmp = compare_solve_with_simulator(&report, &spec, &model);
                    assert!(
                        cmp.bytes_match(),
                        "{tag} k={k} D={devices} {mode:?}: blocked sweep bytes {} \
                         vs simulator {}",
                        cmp.measured_bytes,
                        cmp.predicted_bytes
                    );
                }
            }
        }
    }
}

/// The acceptance criterion verbatim: one 32-wide blocked sharded solve
/// vs 32 sequential single-RHS sharded solves, same device count, all
/// through the fabric.
#[test]
fn blocked_k32_matches_32_sequential_sharded_solves() {
    let h2 = sym_hss(640, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let b = gaussian_mat(640, 32, 0xC0FE);
    let fabric = DeviceFabric::new(4);
    let x = shard_ulv_solve(&fabric, &ulv, &b);
    for j in 0..32 {
        let col = b.col_block(j, 1).to_mat();
        let single = DeviceFabric::new(4);
        let xj = shard_ulv_solve(&single, &ulv, &col);
        assert_eq!(
            xj.as_slice(),
            x.col_block(j, 1).to_mat().as_slice(),
            "column {j} of the blocked solve differs from its sequential solve"
        );
    }
}
