//! Minimal CSR sparse matrices and the 3-D Poisson model problem.
//!
//! The paper's third experiment extracts frontal matrices "from the
//! multifrontal factorization of a uniform-grid discretized 3D Poisson
//! problem" (§V.A). This module provides the 7-point finite-difference
//! operator on an `nx x ny x nz` grid with homogeneous Dirichlet conditions
//! (diagonal 6, off-diagonals -1 — strictly diagonally dominant, SPD).

use h2_dense::Mat;

/// Compressed sparse row symmetric matrix (full pattern stored).
pub struct CsrMatrix {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Entries of row `i` as `(col, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[r.clone()]
            .iter()
            .copied()
            .zip(self.vals[r].iter().copied())
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Entry lookup (O(row degree)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i)
            .find(|&(c, _)| c == j)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// `y = A x` for a single vector.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut s = 0.0;
            for (j, v) in self.row(i) {
                s += v * x[j];
            }
            y[i] = s;
        }
    }

    /// Dense copy (tests only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.n);
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                m[(i, j)] = v;
            }
        }
        m
    }
}

/// Regular-grid helper: index of grid point `(x, y, z)`.
#[derive(Clone, Copy, Debug)]
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Grid3 {
    pub fn cube(n: usize) -> Self {
        Grid3 {
            nx: n,
            ny: n,
            nz: n,
        }
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        (x, y, z)
    }

    /// Physical coordinates of grid point `i` in the unit cube.
    pub fn point(&self, i: usize) -> [f64; 3] {
        let (x, y, z) = self.coords(i);
        [
            (x as f64 + 0.5) / self.nx as f64,
            (y as f64 + 0.5) / self.ny as f64,
            (z as f64 + 0.5) / self.nz as f64,
        ]
    }
}

/// Assemble the 7-point Laplacian on the grid (Dirichlet, diagonal 6).
pub fn poisson3d(grid: Grid3) -> CsrMatrix {
    let n = grid.len();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let (x, y, z) = grid.coords(i);
        let mut push = |c: usize, v: f64| {
            col_idx.push(c);
            vals.push(v);
        };
        // CSR rows kept sorted by column.
        if z > 0 {
            push(grid.index(x, y, z - 1), -1.0);
        }
        if y > 0 {
            push(grid.index(x, y - 1, z), -1.0);
        }
        if x > 0 {
            push(grid.index(x - 1, y, z), -1.0);
        }
        push(i, 6.0);
        if x + 1 < grid.nx {
            push(grid.index(x + 1, y, z), -1.0);
        }
        if y + 1 < grid.ny {
            push(grid.index(x, y + 1, z), -1.0);
        }
        if z + 1 < grid.nz {
            push(grid.index(x, y, z + 1), -1.0);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        n,
        row_ptr,
        col_idx,
        vals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_index_roundtrip() {
        let g = Grid3 {
            nx: 3,
            ny: 4,
            nz: 5,
        };
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn poisson_is_symmetric_and_diagonally_dominant() {
        let a = poisson3d(Grid3::cube(4));
        let d = a.to_dense();
        for i in 0..a.n {
            for j in 0..a.n {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
            let off: f64 = (0..a.n).filter(|&j| j != i).map(|j| d[(i, j)].abs()).sum();
            assert!(d[(i, i)] > off - 1e-12, "row {i} not dominant");
        }
    }

    #[test]
    fn poisson_row_counts() {
        let g = Grid3::cube(3);
        let a = poisson3d(g);
        // Center point has 7 entries, corner has 4.
        assert_eq!(a.row(g.index(1, 1, 1)).count(), 7);
        assert_eq!(a.row(g.index(0, 0, 0)).count(), 4);
        assert_eq!(a.get(0, 0), 6.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn poisson_is_spd() {
        let a = poisson3d(Grid3::cube(4)).to_dense();
        let mut f = a;
        assert!(h2_dense::cholesky_in_place(&mut f.rm()).is_ok());
    }

    #[test]
    fn matvec_matches_dense() {
        let a = poisson3d(Grid3 {
            nx: 3,
            ny: 2,
            nz: 4,
        });
        let d = a.to_dense();
        let x: Vec<f64> = (0..a.n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; a.n];
        a.matvec(&x, &mut y);
        for i in 0..a.n {
            let want: f64 = (0..a.n).map(|j| d[(i, j)] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12);
        }
    }
}
