//! Run every paper experiment at reduced (container-friendly) sizes and
//! record the outputs under `results/`.
//!
//! This is the one-command reproduction driver:
//!
//! ```sh
//! cargo run --release -p h2-bench --bin run_all
//! ```
//!
//! Pass `--full` to use the per-binary default sizes instead of the quick
//! ones (slower; closer to the recorded EXPERIMENTS.md numbers). Pass
//! `--trace` to forward a per-experiment `--trace <dir>/<name>.trace.json`
//! to every child, collecting one Chrome trace per experiment.

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let trace = std::env::args().any(|a| a == "--trace");
    // Quick runs land in results/quick/ so they never clobber the recorded
    // full-size outputs that EXPERIMENTS.md cites.
    let dir = if full { "results" } else { "results/quick" };
    std::fs::create_dir_all(dir).expect("create results dir");

    // (binary, quick args, output file)
    let experiments: &[(&str, &[&str], &str)] = &[
        ("fig4_partition", &["--n", "8192"], "fig4_partition.out"),
        (
            "fig5_construction",
            &["--app", "cov", "--sizes", "2048,4096"],
            "fig5_cov.out",
        ),
        (
            "fig5_construction",
            &["--app", "ie", "--sizes", "2048,4096"],
            "fig5_ie.out",
        ),
        (
            "fig5_construction",
            &["--app", "update", "--sizes", "2048,4096"],
            "fig5_update.out",
        ),
        (
            "fig6a_memory",
            &["--sizes", "2048,4096,8192"],
            "fig6a_memory.out",
        ),
        ("fig6b_frontal", &[], "fig6b_frontal.out"),
        (
            "fig7_breakdown",
            &["--sizes", "2048,4096"],
            "fig7_breakdown.out",
        ),
        ("table2_adaptive", &["--n", "4096"], "table2_adaptive.out"),
        ("ablation", &["--n", "2048"], "ablation.out"),
        (
            "ablation_multidevice",
            &["--n", "8192"],
            "ablation_multidevice.out",
        ),
    ];

    let mut failures = 0usize;
    for (bin, quick_args, out) in experiments {
        let mut args: Vec<String> = if full {
            Vec::new()
        } else {
            quick_args.iter().map(|s| s.to_string()).collect()
        };
        if trace {
            // Key traces by the output-file stem, not the binary name, so
            // repeated invocations (fig5 per app) don't clobber each other.
            let stem = out.trim_end_matches(".out");
            args.push("--trace".to_string());
            args.push(format!("{dir}/{stem}.trace.json"));
        }
        eprintln!("== {bin} {} -> {dir}/{out}", args.join(" "));
        let t0 = std::time::Instant::now();
        let result = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .args(&args)
            .output();
        match result {
            Ok(o) if o.status.success() => {
                std::fs::write(format!("{dir}/{out}"), &o.stdout).expect("write output");
                eprintln!("   ok ({:.1}s)", t0.elapsed().as_secs_f64());
            }
            Ok(o) => {
                eprintln!(
                    "   FAILED (status {:?}):\n{}",
                    o.status.code(),
                    String::from_utf8_lossy(&o.stderr)
                );
                failures += 1;
            }
            Err(e) => {
                eprintln!("   FAILED to launch: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
    eprintln!("all experiments recorded under results/");
}
