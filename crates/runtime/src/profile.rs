//! Kernel-launch accounting and per-phase timing.
//!
//! The paper's performance story rests on two measurements we reproduce
//! exactly: the number of kernel launches (their batched design needs only
//! O(log N) of them — §IV.B) and the breakdown of construction time into
//! phases (Fig. 7: sampling, BSR product, entry generation, convergence
//! test, ID, and miscellaneous/marshaling).

use h2_dense::gemm::stats::StatsClaim;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The batched kernels of the implementation (comments in Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `batchedRand`: fill random blocks.
    Rand,
    /// `batchedGen`: batched entry generation (dense `D` and coupling `B`).
    Gen,
    /// `batchedBSRGemm`: block-sparse-row product (one launch per slot).
    BsrGemm,
    /// `batchedGemm`: plain variable-size batched GEMM.
    Gemm,
    /// Batched Householder QR (convergence test).
    Qr,
    /// `batchedID`: batched transpose + column-pivoted QR interpolative
    /// decomposition.
    Id,
    /// Batched transpose.
    Transpose,
    /// `batchedShrink`: skeleton-row gather.
    Shrink,
    /// Marshaling gathers/scatters (Thrust in the paper).
    Marshal,
    /// Parallel prefix sum for workspace sizing.
    PrefixSum,
    /// Dense matrix-vector products (solver inner products, samplers).
    Gemv,
    /// Blocked-GEMM packing passes (A/B panel staging of the microkernel;
    /// the byte traffic is tracked separately via
    /// [`Profile::pack_bytes`]).
    Pack,
    /// Batched LU factorization (ULV pivot blocks, `batchedGETRF`).
    Lu,
    /// Batched triangular solve (`batchedTRSM`; an LU solve records two).
    Trsm,
}

pub const KERNEL_COUNT: usize = 14;

impl Kernel {
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::Rand,
        Kernel::Gen,
        Kernel::BsrGemm,
        Kernel::Gemm,
        Kernel::Qr,
        Kernel::Id,
        Kernel::Transpose,
        Kernel::Shrink,
        Kernel::Marshal,
        Kernel::PrefixSum,
        Kernel::Gemv,
        Kernel::Pack,
        Kernel::Lu,
        Kernel::Trsm,
    ];

    fn index(self) -> usize {
        match self {
            Kernel::Rand => 0,
            Kernel::Gen => 1,
            Kernel::BsrGemm => 2,
            Kernel::Gemm => 3,
            Kernel::Qr => 4,
            Kernel::Id => 5,
            Kernel::Transpose => 6,
            Kernel::Shrink => 7,
            Kernel::Marshal => 8,
            Kernel::PrefixSum => 9,
            Kernel::Gemv => 10,
            Kernel::Pack => 11,
            Kernel::Lu => 12,
            Kernel::Trsm => 13,
        }
    }

    /// Whether this kernel is a batched *device launch* (the unit of the
    /// §IV.B O(L·Csp) analysis). [`Kernel::Gemv`] and [`Kernel::Pack`]
    /// count individual dense-layer calls instead — useful for the Fig. 7
    /// structure, meaningless against the launch budget.
    pub fn device_launch(self) -> bool {
        !matches!(self, Kernel::Gemv | Kernel::Pack)
    }

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Rand => "batchedRand",
            Kernel::Gen => "batchedGen",
            Kernel::BsrGemm => "batchedBSRGemm",
            Kernel::Gemm => "batchedGemm",
            Kernel::Qr => "batchedQR",
            Kernel::Id => "batchedID",
            Kernel::Transpose => "batchedTranspose",
            Kernel::Shrink => "batchedShrink",
            Kernel::Marshal => "marshal",
            Kernel::PrefixSum => "prefixSum",
            Kernel::Gemv => "gemv",
            Kernel::Pack => "gemmPack",
            Kernel::Lu => "batchedGETRF",
            Kernel::Trsm => "batchedTRSM",
        }
    }
}

/// Construction phases matching the Fig. 7 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Black-box sampling `Y = K Ω` (time spent in `Kblk`).
    Sampling,
    /// Random block generation.
    Rand,
    /// BSR products subtracting dense/coupling contributions.
    BsrGemm,
    /// Dense and coupling entry generation.
    EntryGen,
    /// Convergence test (batched QR + diagonal inspection).
    ConvergenceTest,
    /// Interpolative decompositions.
    Id,
    /// Sample/ Ω upsweep (shrink + GEMM).
    Upsweep,
    /// Marshaling, workspace allocation, bookkeeping.
    Misc,
}

pub const PHASE_COUNT: usize = 8;

impl Phase {
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Sampling,
        Phase::Rand,
        Phase::BsrGemm,
        Phase::EntryGen,
        Phase::ConvergenceTest,
        Phase::Id,
        Phase::Upsweep,
        Phase::Misc,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Sampling => 0,
            Phase::Rand => 1,
            Phase::BsrGemm => 2,
            Phase::EntryGen => 3,
            Phase::ConvergenceTest => 4,
            Phase::Id => 5,
            Phase::Upsweep => 6,
            Phase::Misc => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Sampling => "sampling",
            Phase::Rand => "rand",
            Phase::BsrGemm => "bsr_gemm",
            Phase::EntryGen => "entry_gen",
            Phase::ConvergenceTest => "convergence_test",
            Phase::Id => "id",
            Phase::Upsweep => "upsweep",
            Phase::Misc => "misc",
        }
    }
}

/// Thread-safe accumulator for launches, phase times and packing traffic.
#[derive(Default)]
pub struct Profile {
    launches: [AtomicUsize; KERNEL_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    /// Bytes staged through the blocked-GEMM packing buffers (the
    /// [`Kernel::Pack`] traffic; launches count invocations, this counts
    /// the moved data).
    pack_bytes: AtomicU64,
    /// Exclusive handle on the process-wide dense counters
    /// ([`h2_dense::gemm::stats`]). Held by at most one profile in the
    /// process: acquiring it discards pre-existing counts, and only the
    /// holder's [`Profile::drain_dense_stats`] resets the counters — so
    /// two concurrent profiles can never steal each other's pack/gemv
    /// counts (the non-holder simply records none).
    dense_claim: Mutex<Option<StatsClaim>>,
}

impl Profile {
    pub fn new() -> Self {
        let p = Self::default();
        // Claim the process-wide dense counters if no other live profile
        // holds them; claiming discards whatever accumulated before this
        // profile existed (e.g. a dense reference build ahead of the
        // profiled construction), so the first drain only sees work
        // performed during this profile's lifetime.
        p.try_claim_dense_stats();
        p
    }

    /// Try to acquire the exclusive dense-counter handle (a later retry
    /// for a profile constructed while another held it). Returns whether
    /// this profile now holds the claim.
    pub fn try_claim_dense_stats(&self) -> bool {
        let mut guard = self.dense_claim.lock().unwrap();
        if guard.is_none() {
            *guard = h2_dense::gemm::stats::claim();
        }
        guard.is_some()
    }

    /// Whether this profile holds the exclusive dense-counter handle (and
    /// therefore attributes pack/gemv counts).
    pub fn has_dense_claim(&self) -> bool {
        self.dense_claim.lock().unwrap().is_some()
    }

    /// Release the dense-counter handle early (normally dropped with the
    /// profile), letting another profile claim attribution.
    pub fn release_dense_claim(&self) {
        self.dense_claim.lock().unwrap().take();
    }

    /// Credit `bytes` of blocked-GEMM packing traffic.
    pub fn record_pack_bytes(&self, bytes: u64) {
        self.pack_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes staged through packing buffers.
    pub fn pack_bytes(&self) -> u64 {
        self.pack_bytes.load(Ordering::Relaxed)
    }

    /// Drain the process-wide dense-kernel counters
    /// ([`h2_dense::gemm::stats`]) into this profile: packed-GEMM
    /// invocations become [`Kernel::Pack`] launches, `gemv` calls become
    /// [`Kernel::Gemv`] launches, and the staged bytes accumulate in
    /// [`Profile::pack_bytes`]. Called at every phase boundary by
    /// `Runtime::phase`, so the Fig. 7 breakdown sees the blocked kernel
    /// structure without the dense crate knowing about profiles.
    ///
    /// Draining requires the exclusive [`StatsClaim`]; a profile that
    /// failed to claim (another profile was live first) records nothing
    /// here instead of stealing the holder's counts.
    pub fn drain_dense_stats(&self) {
        let guard = self.dense_claim.lock().unwrap();
        let Some(claim) = guard.as_ref() else {
            return;
        };
        let s = claim.take();
        if s.pack_calls > 0 {
            self.launches[Kernel::Pack.index()].fetch_add(s.pack_calls as usize, Ordering::Relaxed);
        }
        if s.gemv_calls > 0 {
            self.launches[Kernel::Gemv.index()].fetch_add(s.gemv_calls as usize, Ordering::Relaxed);
        }
        if s.pack_bytes > 0 {
            self.record_pack_bytes(s.pack_bytes);
        }
    }

    pub fn record_launch(&self, k: Kernel) {
        self.launches[k.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_launches(&self, k: Kernel, n: usize) {
        self.launches[k.index()].fetch_add(n, Ordering::Relaxed);
    }

    pub fn launches(&self, k: Kernel) -> usize {
        self.launches[k.index()].load(Ordering::Relaxed)
    }

    /// Total *batched device* launches — the §IV.B O(L·Csp) currency.
    /// [`Kernel::Gemv`] and [`Kernel::Pack`] are per-call counters of the
    /// dense layer (one per CPU kernel invocation, so O(batch entries), not
    /// O(levels)) and are deliberately excluded.
    pub fn total_launches(&self) -> usize {
        Kernel::ALL
            .iter()
            .filter(|k| k.device_launch())
            .map(|&k| self.launches(k))
            .sum()
    }

    pub fn add_phase(&self, p: Phase, d: Duration) {
        self.phase_nanos[p.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn phase_time(&self, p: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos[p.index()].load(Ordering::Relaxed))
    }

    pub fn total_phase_time(&self) -> Duration {
        Phase::ALL.iter().map(|&p| self.phase_time(p)).sum()
    }

    /// Time a closure, attributing the elapsed wall time to `p`.
    pub fn time<R>(&self, p: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add_phase(p, t0.elapsed());
        r
    }

    pub fn reset(&self) {
        for a in &self.launches {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.phase_nanos {
            a.store(0, Ordering::Relaxed);
        }
        self.pack_bytes.store(0, Ordering::Relaxed);
        // Pending dense-layer counts belong to the discarded measurements
        // (only the claim holder may reset the process-wide counters).
        if let Some(claim) = self.dense_claim.lock().unwrap().as_ref() {
            let _ = claim.take();
        }
    }

    /// Per-phase percentages of the total (Fig. 7 rows).
    pub fn phase_percentages(&self) -> Vec<(Phase, f64)> {
        let total = self.total_phase_time().as_secs_f64();
        Phase::ALL
            .iter()
            .map(|&p| {
                let t = self.phase_time(p).as_secs_f64();
                (p, if total > 0.0 { 100.0 * t / total } else { 0.0 })
            })
            .collect()
    }

    /// Summary of launch counts keyed by kernel name.
    pub fn launch_summary(&self) -> Vec<(&'static str, usize)> {
        Kernel::ALL
            .iter()
            .map(|&k| (k.name(), self.launches(k)))
            .collect()
    }

    /// Export every profile counter into a metrics registry under the
    /// `profile.` namespace: `profile.launches.<kernel>` counters (plus
    /// the `profile.launches.total` device-launch budget),
    /// `profile.phase_ns.<phase>` counters, and `profile.pack_bytes`.
    /// Counters are exact u64 sums, so
    /// `registry.counter_value("profile.pack_bytes") == profile.pack_bytes()`
    /// is an equality the observability tests assert.
    pub fn export_metrics(&self, registry: &h2_obs::Registry) {
        for &k in Kernel::ALL.iter() {
            let n = self.launches(k);
            if n > 0 {
                registry
                    .counter(&format!("profile.launches.{}", k.name()))
                    .add(n as u64);
            }
        }
        registry
            .counter("profile.launches.total")
            .add(self.total_launches() as u64);
        for &p in Phase::ALL.iter() {
            let ns = self.phase_time(p).as_nanos() as u64;
            if ns > 0 {
                registry
                    .counter(&format!("profile.phase_ns.{}", p.name()))
                    .add(ns);
            }
        }
        registry
            .counter("profile.pack_bytes")
            .add(self.pack_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launches_accumulate() {
        let p = Profile::new();
        p.record_launch(Kernel::Gemm);
        p.record_launches(Kernel::Gemm, 2);
        p.record_launch(Kernel::Qr);
        assert_eq!(p.launches(Kernel::Gemm), 3);
        assert_eq!(p.launches(Kernel::Qr), 1);
        assert_eq!(p.total_launches(), 4);
    }

    #[test]
    fn phase_timer_accumulates() {
        let p = Profile::new();
        p.time(Phase::Id, || std::thread::sleep(Duration::from_millis(5)));
        p.time(Phase::Id, || std::thread::sleep(Duration::from_millis(5)));
        assert!(p.phase_time(Phase::Id) >= Duration::from_millis(9));
        assert_eq!(p.phase_time(Phase::Sampling), Duration::ZERO);
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = Profile::new();
        p.add_phase(Phase::Sampling, Duration::from_millis(30));
        p.add_phase(Phase::Id, Duration::from_millis(70));
        let total: f64 = p.phase_percentages().iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_profiles_do_not_steal_dense_stats() {
        // Acquire the exclusive dense-counter claim; other tests in this
        // binary create transient profiles, so retry until it's free.
        let holder = loop {
            let p = Profile::new();
            if p.has_dense_claim() {
                break p;
            }
            std::thread::yield_now();
        };
        // While `holder` is live, a second profile cannot claim, and its
        // drain records nothing — the race this test pins down used to
        // let it swap the process-global counters to zero.
        let thief = Profile::new();
        assert!(!thief.has_dense_claim());
        assert!(!thief.try_claim_dense_stats());
        let (m, x) = (h2_dense::Mat::zeros(4, 4), vec![0.0; 4]);
        let mut y = vec![0.0; 4];
        h2_dense::gemm::gemv(h2_dense::Op::NoTrans, 1.0, m.rf(), &x, 0.0, &mut y);
        thief.drain_dense_stats();
        assert_eq!(
            thief.launches(Kernel::Gemv),
            0,
            "a non-holder must not steal the holder's gemv counts"
        );
        holder.drain_dense_stats();
        assert!(
            holder.launches(Kernel::Gemv) >= 1,
            "the holder sees the gemv issued during its window"
        );
        // Dropping the holder releases the gate for the next profile.
        drop(holder);
        assert!(thief.try_claim_dense_stats());
    }

    #[test]
    fn reset_clears() {
        let p = Profile::new();
        p.record_launch(Kernel::Rand);
        p.add_phase(Phase::Misc, Duration::from_millis(1));
        p.reset();
        assert_eq!(p.total_launches(), 0);
        assert_eq!(p.total_phase_time(), Duration::ZERO);
    }
}
