//! Chrome-trace validator for CI: checks that a trace written by the
//! `--trace` flag of the bench binaries is well-formed and internally
//! consistent, and (optionally) that its transfer bytes equal an
//! externally recorded total.
//!
//! Checks, in order:
//!
//! 1. the file parses as JSON with a `traceEvents` array, and every event
//!    is an object carrying `ph`, `pid`, `tid` and `name`;
//! 2. timestamps are monotone non-decreasing within every `(pid, tid)`
//!    track, in array order (metadata events carry no `ts` and are
//!    skipped);
//! 3. the `bytes` payloads summed over all `cat == "transfer"` events
//!    equal the final cumulative `comm_bytes` counter sample — two
//!    independently aggregated paths through the fabric's accounting
//!    (per-transfer queue records vs per-epoch byte totals);
//! 4. with `--expect-bytes N` (the `<path>.expect` sidecar written by
//!    `fabric --trace`), the transfer-byte sum must equal `N` exactly —
//!    the `ExecReport::total_comm_bytes` of the run that produced the
//!    trace, itself asserted equal to the simulator prediction;
//! 5. fault/retry pairing: every retry-staged transfer instant
//!    (`args.stage == "retry"`) must pair one-to-one with a detected
//!    retryable-fault instant (`cat == "fault"` named `transfer-drop` or
//!    `transfer-corrupt`) — a chaos trace cannot show a retry that was
//!    never charged, nor a detected drop/corruption that was never
//!    re-shipped;
//! 6. the `comm_bytes` payloads of the `epoch close` instants sum to the
//!    same total as the per-transfer instants (a third independently
//!    aggregated path: per-epoch boundary totals).
//!
//! Usage: `trace_check --trace trace.json [--expect-bytes N]`
//!
//! Exits non-zero with a diagnostic on the first violation.

use h2_bench::Args;
use h2_obs::Json;
use std::collections::HashMap;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = Args::parse();
    let Some(path) = args.get_opt("trace") else {
        fail("--trace <path> is required");
    };
    let expect_bytes: Option<u64> = args.get_opt("expect-bytes").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("--expect-bytes must be a u64 (got {v})")))
    });

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let json =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));
    let Some(events) = json.get("traceEvents").and_then(|e| e.as_array()) else {
        fail("missing traceEvents array");
    };

    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut transfer_bytes: u64 = 0;
    let mut transfer_events: usize = 0;
    let mut retry_transfers: usize = 0;
    let mut retryable_faults: usize = 0;
    let mut epoch_close_bytes: u64 = 0;
    let mut epoch_closes: usize = 0;
    let mut counter_bytes: Option<f64> = None;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or_else(|| fail(&format!("event {i}: missing ph")));
        if e.get("name").and_then(|n| n.as_str()).is_none() {
            fail(&format!("event {i}: missing name"));
        }
        let pid = e
            .get("pid")
            .and_then(|p| p.as_u64())
            .unwrap_or_else(|| fail(&format!("event {i}: missing pid")));
        let tid = e
            .get("tid")
            .and_then(|t| t.as_u64())
            .unwrap_or_else(|| fail(&format!("event {i}: missing tid")));
        if ph == "M" {
            continue; // metadata: no timestamp
        }
        let ts = e
            .get("ts")
            .and_then(|t| t.as_f64())
            .unwrap_or_else(|| fail(&format!("event {i} (ph {ph}): missing ts")));
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            fail(&format!(
                "event {i}: track (pid {pid}, tid {tid}) ts {ts} < previous {prev}"
            ));
        }
        *prev = ts;
        let cat = e.get("cat").and_then(|c| c.as_str());
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or_default();
        if cat == Some("transfer") {
            let bytes = e
                .get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(|b| b.as_u64())
                .unwrap_or_else(|| fail(&format!("transfer event {i}: missing bytes payload")));
            transfer_bytes += bytes;
            transfer_events += 1;
            if e.get("args")
                .and_then(|a| a.get("stage"))
                .and_then(|s| s.as_str())
                == Some("retry")
            {
                retry_transfers += 1;
            }
        }
        if cat == Some("fault") && (name == "transfer-drop" || name == "transfer-corrupt") {
            retryable_faults += 1;
        }
        if cat == Some("fabric") && name.starts_with("epoch close") {
            let bytes = e
                .get("args")
                .and_then(|a| a.get("comm_bytes"))
                .and_then(|b| b.as_u64())
                .unwrap_or_else(|| fail(&format!("epoch close event {i}: missing comm_bytes")));
            epoch_close_bytes += bytes;
            epoch_closes += 1;
        }
        if ph == "C" && e.get("name").and_then(|n| n.as_str()) == Some("comm_bytes") {
            counter_bytes = e
                .get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(|b| b.as_f64());
        }
    }

    // The cumulative counter's final sample aggregates per-epoch byte
    // totals; the transfer instants aggregate the per-transfer queue. The
    // fabric accounts both under one lock, so they must agree exactly.
    if let Some(cb) = counter_bytes {
        if cb != transfer_bytes as f64 {
            fail(&format!(
                "final comm_bytes counter {cb} != summed transfer bytes {transfer_bytes}"
            ));
        }
    }
    if let Some(expect) = expect_bytes {
        if transfer_bytes != expect {
            fail(&format!(
                "summed transfer bytes {transfer_bytes} != expected {expect}"
            ));
        }
    }
    // Fault/retry pairing: the fabric emits one detected-fault instant
    // (transfer-drop / transfer-corrupt) per failed attempt and one
    // retry-staged re-transfer charging its bytes — the two event streams
    // must be in bijection.
    if retry_transfers != retryable_faults {
        fail(&format!(
            "{retry_transfers} retry-staged transfers != {retryable_faults} \
             detected drop/corrupt fault instants"
        ));
    }
    // Third aggregation path: per-epoch boundary totals.
    if epoch_closes > 0 && epoch_close_bytes != transfer_bytes {
        fail(&format!(
            "epoch close comm_bytes sum {epoch_close_bytes} != summed transfer \
             bytes {transfer_bytes}"
        ));
    }
    println!(
        "trace_check: OK: {path} — {} events, {transfer_events} transfers \
         ({retry_transfers} retries paired with {retryable_faults} faults), \
         {epoch_closes} epoch closes, {transfer_bytes} bytes{}",
        events.len(),
        match expect_bytes {
            Some(e) => format!(" (== expected {e})"),
            None => String::new(),
        }
    );
}
