//! Unsymmetric H2 construction: a convection-diffusion volume operator.
//!
//! The paper constructs symmetric matrices and notes the extension to
//! unsymmetric ones is straightforward (§II.A). This example exercises that
//! extension end to end: a drift term makes the kernel unsymmetric, the
//! two-stream sketching construction builds independent row (`U`) and
//! column (`V`) nested bases, and both `K x` and `Kᵀ x` products of the
//! result are verified against the exact operator.
//!
//! ```sh
//! cargo run --release --example convection_unsym
//! ```

use h2sketch::dense::{estimate_norm_2, gaussian_mat, DiffOp, LinOp};
use h2sketch::kernels::{ConvectionKernel, UnsymKernelMatrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct_unsym, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    // The exact O(N²d) kernel product serves as the sketching operator here
    // (the frontal-matrix situation, where the sampler is a dense product);
    // keep N moderate so the example runs in seconds.
    let n = 4096;
    let points = uniform_cube(n, 42);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));

    // Convection-diffusion kernel: exp(-r/l)·(1 + v·(x-y)). The drift v
    // breaks symmetry; smoothness keeps the far field low rank.
    let kernel = ConvectionKernel {
        l: 0.2,
        v: [0.4, -0.25, 0.1],
    };
    let km = UnsymKernelMatrix::new(kernel, tree.points.clone());

    // Both black-box inputs come from the kernel matrix itself here; the
    // sampler must provide K·Ω *and* Kᵀ·Ψ (the second sketch stream drives
    // the column basis).
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        sample_block: 32,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let (h2, stats) = sketch_construct_unsym(&km, &km, tree.clone(), partition, &rt, &cfg);
    let dt = t0.elapsed();
    h2.validate().expect("structural validation");

    let (rank_lo, rank_hi) = h2.rank_range();
    println!("construction: {:.3}s", dt.as_secs_f64());
    println!(
        "samples per stream: {} (adaptation rounds: {})",
        stats.total_samples, stats.rounds
    );
    println!("rank range (row+col bases): {rank_lo}-{rank_hi}");
    println!("memory: {:.1} MB", h2.memory_bytes() as f64 / 1e6);

    // Verify K x against the exact kernel product.
    let err_fwd = {
        let diff = DiffOp { a: &km, b: &h2 };
        estimate_norm_2(&diff, 12, 1) / estimate_norm_2(&km, 12, 2)
    };
    println!("relative error ‖K - K_H2‖₂/‖K‖₂ ≈ {err_fwd:.3e}");

    // Verify Kᵀ x: the transpose product reads the same representation
    // through the swapped basis trees.
    let x = gaussian_mat(n, 4, 3);
    let mut want = h2sketch::dense::Mat::zeros(n, 4);
    km.apply_transpose(x.rf(), want.rm());
    let got = h2.apply_transpose_permuted_mat(&x);
    let mut d = got;
    d.axpy(-1.0, &want);
    let rel_t = d.norm_fro() / want.norm_fro();
    println!("transpose product relative error ≈ {rel_t:.3e}");

    assert!(
        err_fwd < 1e-4 && rel_t < 1e-4,
        "construction failed its accuracy target"
    );
    println!("OK");
}
