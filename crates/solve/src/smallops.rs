//! Shared block-orientation helper for the solver layer.
//!
//! The solver multiplies many tiny blocks whose operands arrive in either
//! orientation — a [`h2_matrix::BlockStore`] lookup returns a stored
//! matrix plus a transpose flag. [`stored_op`] turns that flag into the
//! `Op` argument of `gemm`/`matmul`, so the ULV elimination, the Woodbury
//! assembly and the preconditioners all read stored blocks through the
//! BLAS-style transpose flags instead of materializing transposed copies.

use h2_dense::Op;

/// The `Op` reading a stored block in its looked-up orientation
/// (`transposed` as returned by `BlockStore::get`/`get_op`).
pub(crate) fn stored_op(transposed: bool) -> Op {
    if transposed {
        Op::Trans
    } else {
        Op::NoTrans
    }
}
