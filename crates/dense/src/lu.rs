//! LU with partial pivoting and dense Cholesky.
//!
//! LU backs the dense linear solves in tests and the Gaussian-process
//! example; Cholesky is the pivot-block factorization inside the
//! multifrontal solver (`h2-frontal`).

use crate::mat::{Mat, MatMut, MatRef};
use crate::tri::{solve_triangular_left, solve_triangular_left_transposed, Diag, Triangle};

/// Packed LU factor with pivot row indices.
pub struct LuFactor {
    pub a: Mat,
    /// `piv[k]` = row swapped with row `k` at step `k`.
    pub piv: Vec<usize>,
}

/// Factor a square matrix with partial pivoting. Returns `None` if exactly
/// singular.
pub fn lu_factor(mut a: Mat) -> Option<LuFactor> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "lu: matrix must be square");
    let mut piv = vec![0usize; n];
    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut pmax = a[(k, k)].abs();
        for i in (k + 1)..n {
            let v = a[(i, k)].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        piv[k] = p;
        if pmax == 0.0 {
            return None;
        }
        if p != k {
            for j in 0..n {
                let t = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = t;
            }
        }
        let inv = 1.0 / a[(k, k)];
        for i in (k + 1)..n {
            a[(i, k)] *= inv;
        }
        for j in (k + 1)..n {
            let s = a[(k, j)];
            if s != 0.0 {
                for i in (k + 1)..n {
                    let l = a[(i, k)];
                    a[(i, j)] -= l * s;
                }
            }
        }
    }
    Some(LuFactor { a, piv })
}

impl LuFactor {
    /// Solve `A X = B` in place.
    pub fn solve_in_place(&self, b: &mut MatMut<'_>) {
        let n = self.a.rows();
        assert_eq!(b.rows(), n);
        // Apply row pivots.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                for j in 0..b.cols() {
                    let t = b.at(k, j);
                    *b.at_mut(k, j) = b.at(p, j);
                    *b.at_mut(p, j) = t;
                }
            }
        }
        solve_triangular_left(Triangle::Lower, Diag::Unit, self.a.rf(), b);
        solve_triangular_left(Triangle::Upper, Diag::NonUnit, self.a.rf(), b);
    }

    /// Solve `A X = B`, returning `X`.
    pub fn solve(&self, b: &Mat) -> Mat {
        let mut x = b.clone();
        self.solve_in_place(&mut x.rm());
        x
    }
}

/// In-place lower Cholesky of a symmetric positive-definite view (`A = L L^T`,
/// lower triangle overwritten by `L`; strict upper triangle left untouched).
/// Returns `Err(k)` at the first non-positive pivot `k`.
pub fn cholesky_in_place(a: &mut MatMut<'_>) -> Result<(), usize> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky: matrix must be square");
    for k in 0..n {
        let mut d = a.at(k, k);
        for l in 0..k {
            let v = a.at(k, l);
            d -= v * v;
        }
        if d <= 0.0 {
            return Err(k);
        }
        let d = d.sqrt();
        *a.at_mut(k, k) = d;
        let inv = 1.0 / d;
        for i in (k + 1)..n {
            let mut s = a.at(i, k);
            for l in 0..k {
                s -= a.at(i, l) * a.at(k, l);
            }
            *a.at_mut(i, k) = s * inv;
        }
    }
    Ok(())
}

/// Cholesky solve `A X = B` given the in-place factor `L` (lower triangle).
pub fn cholesky_solve(l: MatRef<'_>, b: &mut MatMut<'_>) {
    solve_triangular_left(Triangle::Lower, Diag::NonUnit, l, b);
    solve_triangular_left_transposed(Triangle::Lower, Diag::NonUnit, l, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::rand::gaussian_mat;

    fn spd(n: usize, seed: u64) -> Mat {
        let g = gaussian_mat(n, n, seed);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn lu_solves() {
        let a = gaussian_mat(8, 8, 41);
        let x0 = gaussian_mat(8, 3, 42);
        let b = matmul(Op::NoTrans, Op::NoTrans, a.rf(), x0.rf());
        let f = lu_factor(a).unwrap();
        let x = f.solve(&b);
        let mut d = x;
        d.axpy(-1.0, &x0);
        assert!(d.norm_max() < 1e-10);
    }

    #[test]
    fn lu_detects_singular() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        assert!(lu_factor(a).is_none());
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(10, 43);
        let mut f = a.clone();
        cholesky_in_place(&mut f.rm()).unwrap();
        let l = Mat::from_fn(10, 10, |i, j| if i >= j { f[(i, j)] } else { 0.0 });
        let llt = matmul(Op::NoTrans, Op::Trans, l.rf(), l.rf());
        let mut d = llt;
        d.axpy(-1.0, &a);
        assert!(d.norm_max() < 1e-10 * a.norm_max());
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd(7, 44);
        let x0 = gaussian_mat(7, 2, 45);
        let mut b = matmul(Op::NoTrans, Op::NoTrans, a.rf(), x0.rf());
        let mut f = a;
        cholesky_in_place(&mut f.rm()).unwrap();
        cholesky_solve(f.rf(), &mut b.rm());
        let mut d = b;
        d.axpy(-1.0, &x0);
        assert!(d.norm_max() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Mat::eye(3);
        a[(2, 2)] = -1.0;
        assert_eq!(cholesky_in_place(&mut a.rm()), Err(2));
    }
}
