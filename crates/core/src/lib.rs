//! # h2-core
//!
//! The paper's primary contribution: **linear-complexity bottom-up
//! sketching-based construction of strongly-admissible H2 matrices with
//! adaptive sampling** (Algorithm 1), executed entirely as batched kernels
//! on the [`h2_runtime`] device model.
//!
//! The construction is a single **stream-generic engine**
//! ([`construct`]): a sketch stream pairs a basis side with its sample
//! batches, and the level-by-level loop drives one stream (`Y = K Ω`,
//! symmetric `V = U`) or two (`Y = K Ω` and `Z = Kᵀ Ψ`, independent row
//! and column bases) through the same subtraction, convergence-test,
//! `updateSamples`, row-ID and upsweep kernels. [`sketch_construct`] and
//! [`sketch_construct_unsym`] are thin instantiations of the engine; the
//! symmetric one reproduces the pre-unification kernel sequence bitwise.
//!
//! The construction consumes the two black-box inputs of the paper — a
//! sketching operator `Y = Kblk(Ω)` ([`h2_dense::LinOp`], with
//! `apply_transpose` feeding the column stream) and an entry evaluator
//! ([`h2_dense::EntryAccess`]) — plus a cluster tree and block partition
//! from [`h2_tree`], and produces an [`h2_matrix::H2Matrix`] (column side
//! stored iff unsymmetric) together with [`SketchStats`] (sample counts,
//! adaptation rounds, phase timings and kernel-launch counts).

pub mod config;
pub mod construct;
pub mod multidev;

pub use config::{SketchConfig, SketchStats, TolSchedule};
pub use construct::{sketch_construct, sketch_construct_unsym, Side};
pub use multidev::level_specs;

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{relative_error_2, DenseOp, EntryAccess, Mat};
    use h2_kernels::{ExponentialKernel, HelmholtzKernel, KernelMatrix};
    use h2_matrix::LowRankUpdate;
    use h2_runtime::{Backend, Kernel, Runtime};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn cov_problem(
        n: usize,
        leaf: usize,
        eta: f64,
        seed: u64,
    ) -> (
        Arc<ClusterTree>,
        Arc<Partition>,
        KernelMatrix<ExponentialKernel>,
    ) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, leaf));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta }));
        // Guard against trivially-dense partitions: every test below is
        // meant to exercise the actual sketching path.
        assert!(
            part.top_far_level(&tree).is_some(),
            "test problem too small for eta={eta}: no admissible blocks"
        );
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    /// Full pipeline against a dense reference: error must respect the
    /// tolerance (up to a safety factor for the ID error propagation).
    #[test]
    fn covariance_construction_meets_tolerance() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 100);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        assert!(stats.total_samples >= 64);
        let dense = Mat::from_fn(1500, 1500, |i, j| km.entry(i, j));
        let rec = h2.to_dense();
        let mut d = rec;
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "construction error {rel} vs tol 1e-6");
    }

    #[test]
    fn helmholtz_construction_meets_tolerance() {
        let pts = h2_tree::uniform_cube(1500, 101);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(HelmholtzKernel::paper(1500), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 96,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let e = relative_error_2(&km, &h2, 20, 102);
        assert!(e < 1e-5, "rel err {e}");
    }

    /// The adaptive variant starting from a deliberately tiny sample count
    /// must grow its sample set and still meet the tolerance.
    #[test]
    fn adaptive_grows_samples_from_small_start() {
        let (tree, part, km) = cov_problem(3000, 32, 0.7, 103);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 8,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0, "must adapt from 8 samples");
        assert!(stats.total_samples > 8);
        let e = relative_error_2(&km, &h2, 20, 104);
        assert!(
            e < 1e-5,
            "rel err {e} after {} samples",
            stats.total_samples
        );
    }

    /// Fixed-sample construction (adaptive off) with ample samples.
    #[test]
    fn fixed_sample_construction() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 105);
        let rt = Runtime::sequential();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 96,
            adaptive: false,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert_eq!(stats.total_samples, 96);
        assert_eq!(stats.rounds, 0);
        let e = relative_error_2(&km, &h2, 20, 106);
        assert!(e < 1e-5, "rel err {e}");
    }

    /// The f32 storage tier is tolerance-safe: under the norm-aware rule a
    /// block only narrows when its rounding error fits inside the
    /// construction's absolute threshold, so the measured error stays in
    /// the same band as pure-f64 storage at every tolerance — and at a
    /// loose tolerance the rule actually fires (blocks, bases and dense
    /// near-field all carry f32 copies).
    #[test]
    fn f32_storage_stays_within_tolerance() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 120);
        let rt = Runtime::parallel();
        for (tol, must_demote) in [(1e-4, true), (1e-6, false)] {
            let cfg = SketchConfig {
                tol,
                initial_samples: 64,
                storage: h2_runtime::Precision::F32,
                ..Default::default()
            };
            let (h2, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);
            h2.validate().unwrap();
            let e = relative_error_2(&km, &h2, 20, 121);
            assert!(e < 10.0 * tol, "rel err {e} vs tol {tol} with f32 storage");
            if must_demote {
                assert!(
                    h2.coupling.demoted_count() > 0,
                    "loose tolerance must demote coupling blocks"
                );
                assert!(
                    h2.dense.demoted_count() > 0,
                    "loose tolerance must demote dense blocks"
                );
                assert!(
                    h2.basis_prec.contains(&h2_runtime::Precision::F32),
                    "loose tolerance must demote bases"
                );
                let (_, f32b) = h2.coupling.bytes_by_precision();
                assert!(f32b > 0, "f32 bytes must show up in the accounting");
            }
        }
    }

    /// Sequential and parallel backends are numerically identical.
    #[test]
    fn backends_agree_exactly() {
        let (tree, part, km) = cov_problem(1200, 16, 0.7, 107);
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        let (a, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::new(Backend::Sequential),
            &cfg,
        );
        let (b, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part,
            &Runtime::new(Backend::Parallel),
            &cfg,
        );
        let da = a.to_dense();
        let db = b.to_dense();
        let mut d = da;
        d.axpy(-1.0, &db);
        assert!(d.norm_max() < 1e-12, "backend divergence {}", d.norm_max());
    }

    /// §IV.B: the whole construction issues O(levels) kernel launches, not
    /// O(N) — the headline GPU design property.
    #[test]
    fn launch_count_scales_with_levels_not_nodes() {
        let (tree, part, km) = cov_problem(2000, 16, 0.7, 108);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 64,
            ..Default::default()
        };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);
        let levels = tree.nlevels();
        let max_csp = (0..levels)
            .map(|l| part.csp_far(&tree, l))
            .chain([part.csp_near(&tree)])
            .max()
            .unwrap();
        let budget = levels * (20 + 2 * max_csp) * (1 + stats.rounds);
        assert!(
            stats.total_launches() <= budget,
            "{} launches exceeds O(L·Csp) budget {budget}",
            stats.total_launches()
        );
        // and in particular far fewer than the number of tree nodes
        assert!(stats.total_launches() < tree.nodes.len() * 4);
    }

    /// Same seed ⇒ identical result (bitwise).
    #[test]
    fn deterministic_by_seed() {
        let (tree, part, km) = cov_problem(1000, 16, 0.7, 109);
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        let (a, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::parallel(),
            &cfg,
        );
        let (b, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::parallel(),
            &cfg,
        );
        let mut d = a.to_dense();
        d.axpy(-1.0, &b.to_dense());
        assert_eq!(
            d.norm_max(),
            0.0,
            "same-seed construction must be bitwise identical"
        );
    }

    /// Weak admissibility partition turns Algorithm 1 into the HSS
    /// construction it generalizes (Martinsson 2011).
    #[test]
    fn weak_admissibility_hss_construction() {
        let pts = h2_tree::uniform_cube(400, 110);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        // Smooth kernel so weak-admissible blocks are low rank.
        let km = KernelMatrix::new(ExponentialKernel { l: 3.0 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 64,
            max_rank: 200,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 111);
        assert!(e < 1e-6, "HSS-mode rel err {e}");
    }

    /// The paper's third application: recompress an H2 matrix plus a rank-32
    /// low-rank product into a fresh H2 matrix, with the sampler being the
    /// fast H2 matvec and entry evaluation coming from the compressed
    /// representation.
    #[test]
    fn lowrank_update_recompression() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 112);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-7,
            initial_samples: 80,
            ..Default::default()
        };
        let (base, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);

        let p = h2_dense::gaussian_mat(1500, 8, 113);
        let mut pscaled = p.clone();
        pscaled.scale(0.05); // keep the update comparable to K's scale
        let updated = LowRankUpdate::symmetric(&base, pscaled.clone());

        let rt2 = Runtime::parallel();
        let (recompressed, stats) =
            sketch_construct(&updated, &updated, tree.clone(), part, &rt2, &cfg);
        assert!(stats.total_samples >= 80);

        // Reference: dense kernel + update, vs recompressed.
        let mut want = Mat::from_fn(1500, 1500, |i, j| km.entry(i, j));
        let ppt = h2_dense::matmul(
            h2_dense::Op::NoTrans,
            h2_dense::Op::Trans,
            pscaled.rf(),
            pscaled.rf(),
        );
        want.axpy(1.0, &ppt);
        let got = recompressed.to_dense();
        let mut d = got;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        // Two compressions stack their errors; stay within an order of
        // magnitude of the base tolerance.
        assert!(rel < 1e-5, "update recompression error {rel}");
    }

    /// Sketching from a *dense* operator (frontal-matrix style input where
    /// the sampler is a plain matrix product).
    #[test]
    fn dense_operator_input() {
        let (tree, part, km) = cov_problem(1024, 16, 0.7, 114);
        let dense = Mat::from_fn(1024, 1024, |i, j| km.entry(i, j));
        let op = DenseOp::new(dense.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "dense-input rel err {rel}");
    }

    /// Tiny problems degrade to a single dense block.
    #[test]
    fn tiny_problem_all_dense() {
        let pts = h2_tree::uniform_cube(20, 115);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::sequential();
        let (h2, stats) =
            sketch_construct(&km, &km, tree.clone(), part, &rt, &SketchConfig::default());
        assert_eq!(
            stats.total_samples, 0,
            "no sketching needed for a dense-only partition"
        );
        let dense = Mat::from_fn(20, 20, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        assert_eq!(d.norm_max(), 0.0, "dense-only representation is exact");
        assert_eq!(rt.profile().launches(Kernel::Id), 0);
    }

    /// Tighter tolerance must give a more accurate representation.
    #[test]
    fn tolerance_monotonicity() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 116);
        let err_at = |tol: f64| {
            let rt = Runtime::parallel();
            let cfg = SketchConfig {
                tol,
                initial_samples: 48,
                sample_block: 16,
                ..Default::default()
            };
            let (h2, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);
            relative_error_2(&km, &h2, 20, 117)
        };
        let e_loose = err_at(1e-3);
        let e_tight = err_at(1e-8);
        assert!(e_tight < e_loose, "tight {e_tight} vs loose {e_loose}");
        assert!(e_tight < 1e-6);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use h2_dense::relative_error_2;
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_runtime::Runtime;
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn problem(
        n: usize,
        seed: u64,
    ) -> (
        Arc<ClusterTree>,
        Arc<Partition>,
        KernelMatrix<ExponentialKernel>,
    ) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
        (tree, part, km)
    }

    /// The max_samples cap is respected exactly and the construction still
    /// terminates with a usable (if less accurate) matrix.
    #[test]
    fn sample_budget_is_hard_cap() {
        let (tree, part, km) = problem(2000, 401);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-12, // unreachable: forces the adaptive loop to the cap
            initial_samples: 8,
            sample_block: 8,
            max_samples: 40,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(
            stats.total_samples <= 40,
            "budget violated: {}",
            stats.total_samples
        );
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 15, 402);
        assert!(
            e < 0.5,
            "even budget-capped construction stays sane, err {e}"
        );
    }

    /// max_rank truncates node ranks without breaking structure.
    #[test]
    fn rank_cap_is_enforced() {
        let (tree, part, km) = problem(1500, 403);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-10,
            initial_samples: 96,
            max_rank: 6,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let (_, hi) = h2.rank_range();
        assert!(hi <= 6, "rank cap violated: {hi}");
    }

    /// Adaptive rounds can trigger at inner levels, not just the leaves:
    /// the updateSamples upsweep machinery is exercised when upper levels
    /// carry more rank than the initial samples cover.
    #[test]
    fn inner_level_adaptation_happens() {
        let (tree, part, km) = problem(3000, 404);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 12,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0);
        assert_eq!(
            stats.rounds_per_level.iter().sum::<usize>(),
            stats.rounds,
            "per-level accounting must add up"
        );
        let e = relative_error_2(&km, &h2, 15, 405);
        assert!(
            e < 1e-6,
            "err {e} after adaptation at levels {:?}",
            stats.rounds_per_level
        );
    }

    /// The norm estimate feeding the relative threshold is in the right
    /// ballpark (sanity of the §III.B mechanism).
    #[test]
    fn norm_estimate_reported() {
        let (tree, part, km) = problem(1200, 406);
        let rt = Runtime::sequential();
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let exact = h2_dense::estimate_norm_2(&km, 40, 407);
        assert!(stats.norm_estimate > 0.3 * exact && stats.norm_estimate < 1.2 * exact);
    }

    /// Phase timings cover the construction: the recorded phases account
    /// for the bulk of the wall-clock elapsed time.
    #[test]
    fn phase_accounting_covers_runtime() {
        let (tree, part, km) = problem(2000, 408);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 64,
            ..Default::default()
        };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let covered = stats.phase_total();
        let wall = stats.elapsed.as_secs_f64();
        assert!(
            covered > 0.6 * wall,
            "phases cover {covered:.3}s of {wall:.3}s"
        );
        assert!(stats.total_launches() > 0);
    }
}

#[cfg(test)]
mod unsym_tests {
    use super::*;
    use h2_dense::{gaussian_mat, relative_error_2, EntryAccess, Mat};
    use h2_kernels::{
        ConvectionKernel, ExponentialKernel, KernelMatrix, ScaledKernelMatrix, UnsymKernelMatrix,
    };
    use h2_matrix::H2MatrixUnsym;
    use h2_runtime::{Backend, Runtime};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn convection_problem(
        n: usize,
        seed: u64,
    ) -> (
        Arc<ClusterTree>,
        Arc<Partition>,
        UnsymKernelMatrix<ConvectionKernel>,
    ) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some(), "problem too small");
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    #[test]
    fn convection_construction_meets_tolerance() {
        let (tree, part, km) = convection_problem(1200, 501);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        assert!(
            !h2.is_symmetric(),
            "unsym construction stores the column side"
        );
        assert!(stats.total_samples >= 64);
        let dense = Mat::from_fn(1200, 1200, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "unsym construction error {rel}");
    }

    /// Satellite acceptance test: `‖Aᵀx − apply_transpose(x)‖` on a
    /// convection-style kernel — the compressed transpose product matches
    /// the exact dense transpose product to the construction tolerance.
    #[test]
    fn transpose_apply_matches_dense() {
        let (tree, part, km) = convection_problem(1000, 502);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-7,
            initial_samples: 80,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let dense = Mat::from_fn(1000, 1000, |i, j| km.entry(i, j));
        let x = gaussian_mat(1000, 3, 503);
        let got = h2.apply_transpose_permuted_mat(&x);
        let want = h2_dense::matmul(
            h2_dense::Op::Trans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut d = got;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        assert!(rel < 1e-5, "Kᵀx error {rel}");
    }

    /// Satellite acceptance: `orthogonalize` on the unsymmetric layout —
    /// per-side QR with the coupled `B ← R_s B R_tᵀ` rescaling must leave
    /// both products unchanged and orthonormalize both basis trees.
    #[test]
    fn orthogonalize_unsym_preserves_both_products() {
        let (tree, part, km) = convection_problem(1100, 515);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-7,
            initial_samples: 80,
            ..Default::default()
        };
        let (mut h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(!h2.is_symmetric());
        assert!(
            h2.basis_orthogonality_error() > 1e-8,
            "interpolative bases start non-orthonormal"
        );
        let x = gaussian_mat(1100, 3, 516);
        let fwd_before = h2.apply_permuted_mat(&x);
        let adj_before = h2.apply_transpose_permuted_mat(&x);

        let processed = h2.orthogonalize();
        assert!(processed > 0, "both sides processed");
        assert!(
            h2.basis_orthogonality_error() < 1e-12,
            "both sides orthonormal, err {}",
            h2.basis_orthogonality_error()
        );
        h2.validate().unwrap();

        let fwd_after = h2.apply_permuted_mat(&x);
        let adj_after = h2.apply_transpose_permuted_mat(&x);
        let mut df = fwd_after;
        df.axpy(-1.0, &fwd_before);
        let mut da = adj_after;
        da.axpy(-1.0, &adj_before);
        let scale = fwd_before.norm_max().max(adj_before.norm_max()).max(1.0);
        assert!(
            df.norm_max() < 1e-10 * scale,
            "K x changed by {}",
            df.norm_max()
        );
        assert!(
            da.norm_max() < 1e-10 * scale,
            "Kᵀ x changed by {}",
            da.norm_max()
        );
    }

    #[test]
    fn forward_and_transpose_are_consistent() {
        // x̂ᵀ(K y) == (Kᵀ x̂)ᵀ y must hold exactly for the *representation*
        // (same blocks read in both passes), independent of compression error.
        let (tree, part, km) = convection_problem(900, 504);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-5,
            initial_samples: 48,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let x = gaussian_mat(900, 2, 505);
        let y = gaussian_mat(900, 2, 506);
        let ky = h2.apply_permuted_mat(&y);
        let ktx = h2.apply_transpose_permuted_mat(&x);
        let a = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, x.rf(), ky.rf());
        let b = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, ktx.rf(), y.rf());
        let mut d = a;
        d.axpy(-1.0, &b);
        assert!(
            d.norm_max() < 1e-9,
            "adjoint identity violated by {}",
            d.norm_max()
        );
    }

    #[test]
    fn scaled_symmetric_kernel_construction() {
        let pts = h2_tree::uniform_cube(1000, 507);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let inner = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let dr: Vec<f64> = (0..1000)
            .map(|i| 1.0 + 0.3 * ((i * 7) % 11) as f64 / 11.0)
            .collect();
        let dc: Vec<f64> = (0..1000)
            .map(|i| 0.5 + 0.2 * ((i * 13) % 17) as f64 / 17.0)
            .collect();
        let km = ScaledKernelMatrix::new(inner, dr, dc);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 508);
        assert!(e < 1e-5, "scaled kernel rel err {e}");
    }

    #[test]
    fn symmetric_input_through_unsym_path() {
        // A symmetric kernel through the two-stream path: both bases exist,
        // the result approximates the kernel, and K ≈ Kᵀ in the output.
        let pts = h2_tree::uniform_cube(800, 509);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let e = relative_error_2(&km, &h2, 20, 510);
        assert!(e < 1e-5, "rel err {e}");
        let d = h2.to_dense();
        let mut asym = d.transpose();
        asym.axpy(-1.0, &d);
        // the representation itself need not be exactly symmetric, but the
        // asymmetry is bounded by the compression error
        assert!(asym.norm_fro() / d.norm_fro() < 1e-5);
    }

    #[test]
    fn adaptive_grows_samples_unsym() {
        let (tree, part, km) = convection_problem(2000, 511);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 8,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0, "must adapt from 8 samples");
        assert!(stats.total_samples > 8);
        let e = relative_error_2(&km, &h2, 15, 512);
        assert!(
            e < 1e-5,
            "rel err {e} after {} samples",
            stats.total_samples
        );
    }

    #[test]
    fn deterministic_by_seed_unsym() {
        let (tree, part, km) = convection_problem(800, 513);
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        let (a, _) = sketch_construct_unsym(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::parallel(),
            &cfg,
        );
        let (b, _) = sketch_construct_unsym(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::new(Backend::Sequential),
            &cfg,
        );
        let mut d = a.to_dense();
        d.axpy(-1.0, &b.to_dense());
        assert_eq!(
            d.norm_max(),
            0.0,
            "seeded construction must be backend-invariant"
        );
    }

    #[test]
    fn entry_extraction_matches_to_dense() {
        let (tree, part, km) = convection_problem(700, 514);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-7,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let dense = h2.to_dense();
        let rows: Vec<usize> = (0..700).step_by(31).collect();
        let cols: Vec<usize> = (0..700).step_by(47).collect();
        let blk = h2.extract_block(&rows, &cols);
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                assert!(
                    (blk[(r, c)] - dense[(i, j)]).abs() < 1e-12,
                    "extraction mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn tiny_problem_all_dense_unsym() {
        let pts = h2_tree::uniform_cube(20, 515);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        let rt = Runtime::sequential();
        let (h2, stats) =
            sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &SketchConfig::default());
        assert_eq!(stats.total_samples, 0);
        let dense = Mat::from_fn(20, 20, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        assert_eq!(d.norm_max(), 0.0, "dense-only representation is exact");
    }

    /// A sampler that "forgot" to override `apply_transpose` (the `LinOp`
    /// default silently computes `K x`) must be rejected by the engine's
    /// adjoint-identity probe instead of corrupting the column bases.
    #[test]
    #[should_panic(expected = "adjoint identity")]
    fn unsym_engine_rejects_missing_transpose_override() {
        use h2_dense::{LinOp, MatMut, MatRef};
        struct ForgotTranspose<'a>(&'a UnsymKernelMatrix<ConvectionKernel>);
        impl LinOp for ForgotTranspose<'_> {
            fn nrows(&self) -> usize {
                self.0.nrows()
            }
            fn ncols(&self) -> usize {
                self.0.ncols()
            }
            fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
                self.0.apply(x, y);
            }
            // no apply_transpose override: inherits the symmetric default
        }
        let (tree, part, km) = convection_problem(400, 517);
        let rt = Runtime::sequential();
        let cfg = SketchConfig {
            initial_samples: 16,
            ..Default::default()
        };
        let wrong = ForgotTranspose(&km);
        let _ = sketch_construct_unsym(&wrong, &km, tree, part, &rt, &cfg);
    }

    /// The unsym IO roundtrip through the unified reader preserves the
    /// matrix bitwise (both magics go through `H2Matrix::read_from`).
    #[test]
    fn unsym_alias_io_roundtrip() {
        let (tree, part, km) = convection_problem(600, 516);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 48,
            ..Default::default()
        };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
        let back = H2MatrixUnsym::from_bytes(&h2.to_bytes()).unwrap();
        assert!(!back.is_symmetric());
        let mut d = h2.to_dense();
        d.axpy(-1.0, &back.to_dense());
        assert_eq!(d.norm_max(), 0.0);
    }
}

#[cfg(test)]
mod engine_equivalence_tests {
    use super::*;
    use h2_dense::{gaussian_mat, EntryAccess, Mat};
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_runtime::Runtime;
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    /// Satellite acceptance test: the unified engine on a symmetric kernel
    /// reproduces the seed symmetric path — `to_dense` error against a
    /// dense reference stays within ε, and the output is the degenerate
    /// one-stream representation (no stored column side, unordered stores).
    #[test]
    fn symmetric_engine_matches_dense_reference_within_tolerance() {
        let n = 1500;
        let pts = h2_tree::uniform_cube(n, 601);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        assert!(
            h2.is_symmetric(),
            "symmetric construction must not store a column side"
        );
        assert!(stats.total_samples >= 64);
        let dense = Mat::from_fn(n, n, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(
            rel < 1e-5,
            "unified engine symmetric error {rel} vs tol 1e-6"
        );
    }

    /// The symmetric instance and the two-stream instance agree on a
    /// symmetric operator up to the construction tolerance (they sketch
    /// with different random streams, so agreement is approximate), and
    /// the symmetric one's transpose product is bitwise its forward
    /// product.
    #[test]
    fn one_stream_is_degenerate_two_stream() {
        let n = 900;
        let pts = h2_tree::uniform_cube(n, 602);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let cfg = SketchConfig {
            tol: 1e-7,
            initial_samples: 64,
            ..Default::default()
        };
        let (sym, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::parallel(),
            &cfg,
        );
        let (uns, _) =
            sketch_construct_unsym(&km, &km, tree.clone(), part, &Runtime::parallel(), &cfg);
        let ds = sym.to_dense();
        let mut d = uns.to_dense();
        d.axpy(-1.0, &ds);
        let rel = d.norm_fro() / ds.norm_fro();
        assert!(rel < 1e-5, "one-stream vs two-stream divergence {rel}");

        // Symmetric representation: Kᵀx == Kx exactly (same blocks, same
        // sides read through the aliased column side).
        let x = gaussian_mat(n, 3, 603);
        let fwd = sym.apply_permuted_mat(&x);
        let mut tr = sym.apply_transpose_permuted_mat(&x);
        tr.axpy(-1.0, &fwd);
        assert_eq!(
            tr.norm_max(),
            0.0,
            "symmetric transpose product must alias forward"
        );
    }
}
