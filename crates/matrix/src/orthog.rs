//! Basis orthogonalization for H2 matrices.
//!
//! The sketching construction produces interpolation bases `U = P[I; T]`
//! which are well-conditioned but not orthonormal. Downstream arithmetic
//! (matvec stability, recompression, the future inversion the paper's §VI
//! announces) prefers orthonormal cluster bases. This pass converts the
//! representation in place, bottom-up, without changing the represented
//! operator:
//!
//! * leaf: `U_τ = Q R` → store `Q`, push `R` into the parent transfer slice
//!   and into every coupling block of `τ`,
//! * inner: the (already-updated) stacked transfer `[R_1 E_1; R_2 E_2] = QR`
//!   → store `Q`, push `R` upward likewise.
//!
//! Coupling blocks become `B ← R_s B R_tᵀ`. The skeleton index lists keep
//! their values for bookkeeping but the identity-rows property of the
//! interpolative basis no longer holds afterwards (documented trade-off).

use crate::format::H2Matrix;
use h2_dense::{gemm, matmul, qr_factor, Mat, Op};

impl H2Matrix {
    /// Orthogonalize all cluster bases in place. Returns the number of
    /// nodes processed.
    ///
    /// Implemented for the symmetric side layout (shared `U = V` bases);
    /// the unsymmetric extension (independent QR per side) is future work.
    pub fn orthogonalize(&mut self) -> usize {
        assert!(
            self.is_symmetric(),
            "orthogonalize currently supports symmetric H2 matrices only"
        );
        let tree = self.tree.clone();
        let leaf_level = tree.leaf_level();
        let mut processed = 0;
        // R factors of the current level, indexed by node id.
        let mut r_of: Vec<Option<Mat>> = vec![None; tree.nodes.len()];

        for l in (0..=leaf_level).rev() {
            let ids: Vec<usize> = tree.level(l).filter(|&id| self.has_basis(id)).collect();
            if ids.is_empty() {
                continue;
            }
            // 1. Update this level's stacked bases with the children's R
            //    factors (no-op at the leaf level).
            if l < leaf_level {
                for &id in &ids {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    let b = &self.basis[id];
                    let (k1_old, k2_old) = (
                        r_of[c1].as_ref().map(|r| r.cols()),
                        r_of[c2].as_ref().map(|r| r.cols()),
                    );
                    // Rows of the stacked transfer split by the children's
                    // *old* ranks (cols of their R factors).
                    let k1 = k1_old.unwrap_or(self.rank(c1));
                    let k2 = k2_old.unwrap_or(self.rank(c2));
                    debug_assert_eq!(k1 + k2, b.rows());
                    let mut updated = Mat::zeros(
                        r_of[c1].as_ref().map(|r| r.rows()).unwrap_or(k1)
                            + r_of[c2].as_ref().map(|r| r.rows()).unwrap_or(k2),
                        b.cols(),
                    );
                    let top_rows = r_of[c1].as_ref().map(|r| r.rows()).unwrap_or(k1);
                    {
                        let e1 = b.view(0, 0, k1, b.cols());
                        let mut dst = updated.view_mut(0, 0, top_rows, b.cols());
                        match &r_of[c1] {
                            Some(r) => gemm(Op::NoTrans, Op::NoTrans, 1.0, r.rf(), e1, 0.0, dst),
                            None => dst.copy_from(e1),
                        }
                    }
                    {
                        let e2 = b.view(k1, 0, k2, b.cols());
                        let rows2 = updated.rows() - top_rows;
                        let mut dst = updated.view_mut(top_rows, 0, rows2, b.cols());
                        match &r_of[c2] {
                            Some(r) => gemm(Op::NoTrans, Op::NoTrans, 1.0, r.rf(), e2, 0.0, dst),
                            None => dst.copy_from(e2),
                        }
                    }
                    self.basis[id] = updated;
                }
            }

            // 2. QR each basis; keep Q, remember R.
            for &id in &ids {
                let b = std::mem::replace(&mut self.basis[id], Mat::zeros(0, 0));
                let f = qr_factor(b);
                let q = f.q_thin();
                let r = f.r();
                self.basis[id] = q;
                r_of[id] = Some(r);
                processed += 1;
            }

            // 3. Rescale this level's coupling blocks: B ← R_s B R_tᵀ.
            let level_ids: std::collections::HashSet<usize> = ids.iter().copied().collect();
            for idx in 0..self.coupling.pairs.len() {
                let (s, t) = self.coupling.pairs[idx];
                if !level_ids.contains(&s) {
                    continue;
                }
                let rs = r_of[s].as_ref().expect("row R factor");
                let rt = r_of[t].as_ref().expect("col R factor");
                let b = &self.coupling.blocks[idx];
                let rb = matmul(Op::NoTrans, Op::NoTrans, rs.rf(), b.rf());
                self.coupling.blocks[idx] = matmul(Op::NoTrans, Op::Trans, rb.rf(), rt.rf());
            }
        }
        processed
    }

    /// Max deviation of `UᵀU` from identity over all *leaf* bases, and of
    /// the stacked transfers at inner nodes (0 for an orthogonalized
    /// matrix). Diagnostic used by tests.
    pub fn basis_orthogonality_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for id in 0..self.basis.len() {
            let b = &self.basis[id];
            if b.cols() == 0 {
                continue;
            }
            let g = matmul(Op::Trans, Op::NoTrans, b.rf(), b.rf());
            let mut d = g;
            d.axpy(-1.0, &Mat::eye(b.cols()));
            worst = worst.max(d.norm_max());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use crate::direct::{direct_construct, DirectConfig};
    use h2_dense::gaussian_mat;
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    #[test]
    fn orthogonalize_preserves_operator_and_orthonormalizes() {
        let pts = h2_tree::uniform_cube(1200, 201);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let mut h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());

        assert!(
            h2.basis_orthogonality_error() > 1e-8,
            "interpolative bases are not orthonormal"
        );
        let x = gaussian_mat(1200, 3, 202);
        let before = h2.apply_permuted_mat(&x);

        let processed = h2.orthogonalize();
        assert!(processed > 0);
        assert!(
            h2.basis_orthogonality_error() < 1e-12,
            "bases must be orthonormal, err {}",
            h2.basis_orthogonality_error()
        );

        let after = h2.apply_permuted_mat(&x);
        let mut d = after;
        d.axpy(-1.0, &before);
        assert!(
            d.norm_max() < 1e-10 * before.norm_max().max(1.0),
            "operator changed by {}",
            d.norm_max()
        );
    }

    #[test]
    fn orthogonalize_preserves_entry_extraction() {
        let pts = h2_tree::uniform_cube(900, 203);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let mut h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());
        let rows: Vec<usize> = (0..900).step_by(97).collect();
        let cols: Vec<usize> = (3..900).step_by(113).collect();
        let before = h2.extract_block(&rows, &cols);
        h2.orthogonalize();
        let after = h2.extract_block(&rows, &cols);
        let mut d = after;
        d.axpy(-1.0, &before);
        assert!(
            d.norm_max() < 1e-10,
            "entry extraction changed by {}",
            d.norm_max()
        );
    }
}
