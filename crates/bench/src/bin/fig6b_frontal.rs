//! Fig. 6(b): memory of compressed Poisson frontal matrices — H2
//! (Algorithm 1, strong admissibility) vs the weak-admissibility formats
//! HSS and HODLR. (HODBF is not reproduced; see EXPERIMENTS.md.)
//!
//! Fronts: exact multifrontal Schur complements for small grids
//! (`--exact-grids 12,16,24`, front size = n²) and the Green's-function
//! surrogate for paper-scale separators (`--surrogate 50,70` → 2500, 4900).
//! The paper's axis 2500…62500 corresponds to n = 50…250.
//!
//! Usage: `--exact-grids 12,16,24 --surrogate 50,70 [--tol 1e-6] [--leaf 64]
//!         [--trace trace.json]`

use h2_baselines::{hodlr_compress, hss_construct};
use h2_bench::{header, mib, permuted_dense_op, row, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig};
use h2_dense::{DenseOp, EntryAccess, LinOp};
use h2_frontal::{green_surrogate_front, poisson_top_front};
use h2_kernels::{KernelMatrix, LaplaceKernel};
use h2_tree::{Admissibility, ClusterTree, Partition, Point};
use std::sync::Arc;

enum FrontOp {
    Dense(DenseOp),
    Kernel(KernelMatrix<LaplaceKernel>),
}

impl LinOp for FrontOp {
    fn nrows(&self) -> usize {
        match self {
            FrontOp::Dense(o) => o.nrows(),
            FrontOp::Kernel(k) => k.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: h2_dense::MatRef<'_>, y: h2_dense::MatMut<'_>) {
        match self {
            FrontOp::Dense(o) => o.apply(x, y),
            FrontOp::Kernel(k) => k.apply(x, y),
        }
    }
}

impl EntryAccess for FrontOp {
    fn entry(&self, i: usize, j: usize) -> f64 {
        match self {
            FrontOp::Dense(o) => o.entry(i, j),
            FrontOp::Kernel(k) => k.entry(i, j),
        }
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut h2_dense::MatMut<'_>) {
        match self {
            FrontOp::Dense(o) => o.block(rows, cols, out),
            FrontOp::Kernel(k) => k.block(rows, cols, out),
        }
    }
}

fn compress_and_report(
    sink: &TraceSink,
    name: &str,
    op: &FrontOp,
    pts: &[Point],
    leaf: usize,
    tol: f64,
) {
    let size = op.nrows();
    let tree = Arc::new(ClusterTree::build(pts, leaf));
    let rt = sink.runtime();
    let cfg = SketchConfig {
        tol,
        initial_samples: 128,
        max_rank: 1024,
        max_samples: 4096,
        ..Default::default()
    };

    // H2, strong admissibility (ours).
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let (h2, h2_stats) = sketch_construct(op, op, tree.clone(), part, &rt, &cfg);

    // HSS = Algorithm 1 on the weak partition.
    let rt2 = sink.runtime();
    let (hss, hss_stats) = hss_construct(op, op, tree.clone(), &rt2, &cfg);

    // HODLR direct compression.
    let hodlr = hodlr_compress(op, tree.clone(), tol);

    let dense_bytes = size * size * 8;
    row(&[
        size.to_string(),
        name.to_string(),
        format!("{:.1}", mib(h2.memory_bytes())),
        format!("{:.1}", mib(hss.memory_bytes())),
        format!("{:.1}", mib(hodlr.memory_bytes())),
        format!("{:.1}", mib(dense_bytes)),
        format!("{}/{}", h2_stats.total_samples, hss_stats.total_samples),
        format!("{:?}/{:?}", h2.rank_range(), hss.rank_range()),
    ]);
}

fn main() {
    let args = Args::parse();
    let exact_grids = args.sizes("exact-grids", &[12, 16, 24]);
    let surrogate = args.sizes("surrogate", &[50]);
    let tol: f64 = args.get("tol", 1e-6);
    let leaf: usize = args.get("leaf", 64);
    let sink = TraceSink::from_args(&args);

    println!("# Fig. 6(b): frontal-matrix memory, H2 vs HSS vs HODLR (tol={tol}, leaf={leaf})\n");
    println!("front sizes are n^2 for an n^3 Poisson grid; paper axis 2500..62500 = n 50..250\n");
    header(&[
        "front size",
        "source",
        "H2 (MiB)",
        "HSS (MiB)",
        "HODLR (MiB)",
        "dense (MiB)",
        "samples H2/HSS",
        "rank ranges H2/HSS",
    ]);

    for &g in &exact_grids {
        let (front, raw_pts) = poisson_top_front(g, 64);
        let tree_probe = ClusterTree::build(&raw_pts, leaf);
        let op = FrontOp::Dense(permuted_dense_op(&front, &tree_probe));
        // points must be permuted identically to the operator
        compress_and_report(
            &sink,
            &format!("exact {g}^3 grid"),
            &op,
            &raw_pts,
            leaf,
            tol,
        );
    }

    for &k in &surrogate {
        let (km, pts) = green_surrogate_front(k);
        // Rebind the kernel operator onto tree-ordered points.
        let tree = ClusterTree::build(&pts, leaf);
        let op = FrontOp::Kernel(KernelMatrix::new(km.kernel, tree.points.clone()));
        compress_and_report(
            &sink,
            &format!("surrogate {k}x{k} plane"),
            &op,
            &pts,
            leaf,
            tol,
        );
    }

    println!("\n(The weak-admissibility formats' memory grows superlinearly on plane-separator fronts\n while H2 stays close to linear — the Fig. 6(b) separation. HODBF omitted, see EXPERIMENTS.md.)");
    sink.finish();
}
