//! # h2-sched
//!
//! A real device-sharded executor for the batched H2 construction and
//! matvec — the multi-GPU decomposition of the paper's §IV.B, *executed*
//! rather than only simulated.
//!
//! The repo previously modeled multi-device execution with the closed-form
//! cost simulator in [`h2_runtime::multidev`]. This crate adds the other
//! half: a [`DeviceFabric`] of N virtual devices that actually runs the
//! construction level loop and the three-pass matvec sharded, measures
//! per-device timing, and records every cross-device byte on an explicit
//! transfer queue — so the simulator's predictions can be validated against
//! a real execution of the same schedule.
//!
//! ## Paper mapping
//!
//! | component | paper |
//! |---|---|
//! | [`DeviceFabric`] — N worker threads, one per virtual device, each with a memory arena and a work/traffic account | §IV.B "the batches of each level are divided among the GPUs" |
//! | contiguous node chunks per level ([`h2_runtime::chunk_bounds`] / [`h2_runtime::owner`]) | §IV.A level-contiguous storage: chunking keeps siblings on one device except at boundaries |
//! | [`TransferKind::OmegaFetch`] queue entries | §IV.B: `batchedBSRGemm` is the only batched op that must fetch off-device inputs `Ω_b` |
//! | [`TransferKind::ChildGather`] queue entries | §IV.B: line-24 child stacking when a sibling pair straddles devices |
//! | per-device arena, reset per epoch | §IV.A: one workspace allocation per level from a parallel prefix sum |
//! | epochs (one per level / matvec phase) | Algorithm 1's sequential level loop |
//!
//! ## Entry points
//!
//! * [`shard_construct`] / [`shard_construct_unsym`] — Algorithm 1 on the
//!   fabric, via the stream-generic engine of `h2_core::construct`: the
//!   symmetric one-stream and unsymmetric two-stream instances shard
//!   through the same `Runtime::sharded` backend.
//! * [`shard_matvec`] — the upsweep/coupling/downsweep/leaf phases of
//!   `h2_matrix`'s matvec with per-device partial sums, built on the same
//!   [`h2_matrix::ApplyPhases`] kernels as the in-process path (identical
//!   numerics, different scheduling).
//! * [`compare_with_simulator`] — cross-validation: on a non-adaptive pass
//!   the executor performs exactly the kernel populations of
//!   [`h2_core::level_specs`], so its flop and byte totals must equal the
//!   [`h2_runtime::simulate`] prediction (the equivalence tests assert
//!   equality for work/traffic and a 3x band for the makespan, where the
//!   two sides' launch/round-robin details legitimately differ).
//!
//! Results are bitwise-deterministic: every batched kernel computes
//! identical per-entry arithmetic regardless of the device count, so a
//! 7-device construction equals the single-device one exactly — the
//! property the equivalence tests in `tests/equivalence.rs` pin down.

pub mod exec;
pub mod fabric;
pub mod matvec;

pub use exec::{
    compare_with_simulator, shard_construct, shard_construct_unsym, sharded_runtime, SimComparison,
};
pub use fabric::{DeviceEpochStats, DeviceFabric, Epoch, ExecReport};
pub use h2_runtime::{Transfer, TransferKind};
pub use matvec::{shard_matvec, shard_matvec_with_report};
