//! Preconditioned Krylov methods on abstract operators.
//!
//! All methods take the operator as an [`h2_dense::LinOp`] — a compressed H2
//! matrix, a kernel matrix, a fabric-sharded operator, or any other black
//! box — and a [`Preconditioner`]. Residual histories are returned so
//! convergence behaviour (e.g. preconditioner quality) can be asserted in
//! tests and reported by the benchmark harness.
//!
//! Every method threads a [`KrylovWorkspace`] through its iteration: the
//! `*_with` variants reuse a caller-owned workspace across solves (no
//! per-iteration vector allocation — operator and preconditioner
//! applications write into preallocated buffers through zero-copy
//! [`h2_dense::MatRef`] views), and the plain entry points allocate one
//! workspace per call. The GMRES Krylov basis lives in the workspace as one
//! `n × (restart+1)` block, so a fabric-backed operator
//! (`h2_sched::FabricOp`) shards each basis-vector product over its
//! devices — the ROADMAP's per-device Krylov decomposition.

use crate::precond::Preconditioner;
use h2_dense::{LinOp, Mat, MatMut, MatRef};
use h2_runtime::{ArgValue, Tracer};
use std::sync::Arc;

/// Observer invoked once per global reduction (each dot product or norm a
/// Krylov method computes). `h2_sched` wires this to a device fabric so
/// that, when the iteration vectors are device-resident, every reduction
/// charges its `8·(D−1)`-byte scalar allreduce — the only per-iteration
/// traffic that leaves the devices in that mode.
pub type ReduceHook = Arc<dyn Fn() + Send + Sync>;

/// Result of a preconditioned iterative solve.
#[derive(Clone, Debug)]
pub struct IterResult {
    pub x: Vec<f64>,
    pub iterations: usize,
    /// True relative residual `‖b - A x‖₂ / ‖b‖₂` at exit.
    pub relative_residual: f64,
    pub converged: bool,
    /// Per-iteration (estimated) relative residuals.
    pub history: Vec<f64>,
}

/// Preallocated iteration state shared by all four iterative methods
/// (PCG, GMRES, BiCGStab, CGS). Reusing one workspace across solves —
/// e.g. across the right-hand sides of a multi-solve, or across outer
/// Newton steps — eliminates the per-iteration `Vec` churn the methods
/// previously paid for every operator and preconditioner application.
pub struct KrylovWorkspace {
    n: usize,
    /// General-purpose n-vectors (apply targets, directions, residuals).
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    s: Vec<f64>,
    t: Vec<f64>,
    u: Vec<f64>,
    v: Vec<f64>,
    w: Vec<f64>,
    /// GMRES Krylov basis, one `n × (restart+1)` block.
    basis: Mat,
    /// GMRES Hessenberg, `(restart+1) × restart`.
    hess: Mat,
    cs: Vec<f64>,
    sn: Vec<f64>,
    g: Vec<f64>,
    /// Observability tracer: when attached, every method wraps its solve in
    /// a `krylov` span and marks each iteration with an instant carrying
    /// the running residual estimate.
    tracer: Option<Arc<Tracer>>,
    /// Global-reduction observer (see [`ReduceHook`]); survives resizes.
    reduce_hook: Option<ReduceHook>,
}

impl KrylovWorkspace {
    pub fn new(n: usize) -> Self {
        KrylovWorkspace {
            n,
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            q: vec![0.0; n],
            s: vec![0.0; n],
            t: vec![0.0; n],
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
            basis: Mat::zeros(0, 0),
            hess: Mat::zeros(0, 0),
            cs: Vec::new(),
            sn: Vec::new(),
            g: Vec::new(),
            tracer: None,
            reduce_hook: None,
        }
    }

    /// Problem size the workspace is sized for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Attach (or detach) an observability tracer; survives workspace
    /// resizes.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Builder form of [`KrylovWorkspace::set_tracer`].
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach (or detach) a global-reduction observer: every dot product
    /// and norm the methods compute invokes it exactly once. Survives
    /// workspace resizes.
    pub fn set_reduce_hook(&mut self, hook: Option<ReduceHook>) {
        self.reduce_hook = hook;
    }

    fn ensure(&mut self, n: usize) {
        if self.n != n {
            let tracer = self.tracer.take();
            let hook = self.reduce_hook.take();
            *self = KrylovWorkspace::new(n);
            self.tracer = tracer;
            self.reduce_hook = hook;
        }
    }

    /// One per-iteration instant (no-op without a tracer).
    fn trace_iter(tracer: &Option<Arc<Tracer>>, method: &'static str, iter: usize, resid: f64) {
        if let Some(t) = tracer {
            t.instant(
                "krylov",
                method,
                vec![
                    ("iter", ArgValue::U64(iter as u64)),
                    ("resid", ArgValue::F64(resid)),
                ],
            );
        }
    }

    /// Size the GMRES blocks for a restart length (no-op once sized).
    fn ensure_gmres(&mut self, restart: usize) {
        if self.basis.rows() != self.n || self.basis.cols() < restart + 1 {
            self.basis = Mat::zeros(self.n, restart + 1);
            self.hess = Mat::zeros(restart + 1, restart);
        }
        self.cs.resize(restart, 0.0);
        self.sn.resize(restart, 0.0);
        self.g.resize(restart + 1, 0.0);
    }
}

/// `out = A v` without allocating: both sides are viewed as `n × 1` blocks.
fn apply_op_into(a: &dyn LinOp, v: &[f64], out: &mut [f64]) {
    let (n, m) = (v.len(), out.len());
    a.apply(
        MatRef::from_parts(n, 1, n.max(1), v),
        MatMut::from_parts(m, 1, m.max(1), out),
    );
}

/// `out = M⁻¹ v` through the preconditioner's into-buffer application.
fn apply_prec_into(m: &dyn Preconditioner, v: &[f64], out: &mut [f64]) {
    let n = v.len();
    m.apply_inv_into(
        MatRef::from_parts(n, 1, n.max(1), v),
        MatMut::from_parts(out.len(), 1, out.len().max(1), out),
    );
}

/// Reduction block length of [`blocked_dot`] / [`blocked_norm`]. Fixed —
/// never derived from thread or device counts — so the summation tree is a
/// property of the problem size alone.
const REDUCE_BLOCK: usize = 256;

/// Blocked, fixed-order dot product: partial sums accumulate within
/// consecutive [`REDUCE_BLOCK`]-length blocks, and the block partials
/// combine left to right. Because the grouping is independent of how a
/// device fabric shards the vectors, a per-device partial reduction that
/// respects the block boundaries followed by an in-order combine reproduces
/// this value bit-for-bit — the contract `h2_sched`'s resident-vector mode
/// (`Residency::Resident`) relies on for its `8·(D−1)`-byte scalar
/// allreduces.
pub fn blocked_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut i = 0;
    while i < a.len() {
        let e = (i + REDUCE_BLOCK).min(a.len());
        let mut part = 0.0;
        for k in i..e {
            part += a[k] * b[k];
        }
        total += part;
        i = e;
    }
    total
}

/// Blocked Euclidean norm — `sqrt` of [`blocked_dot`] of a vector with
/// itself, sharing its reproducibility contract.
pub fn blocked_norm(a: &[f64]) -> f64 {
    blocked_dot(a, a).sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    blocked_dot(a, b)
}

fn norm(a: &[f64]) -> f64 {
    blocked_norm(a)
}

/// Pass a reduction result through the workspace's observer: `h2_sched`
/// wires this to the fabric so each global dot/norm charges its scalar
/// allreduce when the Krylov vectors are device-resident.
fn counted(hook: &Option<ReduceHook>, v: f64) -> f64 {
    if let Some(h) = hook {
        h();
    }
    v
}

/// True relative residual, computed into the workspace's scratch.
fn true_residual(
    a: &dyn LinOp,
    x: &[f64],
    b: &[f64],
    scratch: &mut [f64],
    hook: &Option<ReduceHook>,
) -> f64 {
    apply_op_into(a, x, scratch);
    for i in 0..b.len() {
        scratch[i] = b[i] - scratch[i];
    }
    counted(hook, norm(scratch)) / counted(hook, norm(b)).max(f64::MIN_POSITIVE)
}

/// Preconditioned conjugate gradients for SPD `A` and SPD `M`.
///
/// ```
/// use h2_dense::{DenseOp, Mat};
/// use h2_solve::{pcg, Identity};
/// // A 2x2 SPD system.
/// let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let op = DenseOp::new(a);
/// let res = pcg(&op, &Identity { n: 2 }, &[1.0, 2.0], 50, 1e-12);
/// assert!(res.converged);
/// assert!((4.0 * res.x[0] + res.x[1] - 1.0).abs() < 1e-10);
/// ```
pub fn pcg(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    pcg_with(a, m, b, max_iters, rtol, &mut KrylovWorkspace::new(b.len()))
}

/// [`pcg`] reusing a caller-owned workspace.
pub fn pcg_with(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
    ws: &mut KrylovWorkspace,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "pcg: dimension mismatch");
    assert_eq!(m.n(), n, "pcg: preconditioner dimension mismatch");
    ws.ensure(n);
    let tracer = ws.tracer.clone();
    let hook = ws.reduce_hook.clone();
    let _solve_span = tracer.as_ref().map(|t| t.span("krylov", "pcg"));
    let b_norm = counted(&hook, norm(b)).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let KrylovWorkspace { r, z, p, q: ap, .. } = ws;
    r.copy_from_slice(b);
    apply_prec_into(m, r, z);
    p.copy_from_slice(z);
    let mut rz = counted(&hook, dot(r, z));
    let mut history = Vec::new();
    let mut iterations = 0;

    for _ in 0..max_iters {
        let rn = counted(&hook, norm(r)) / b_norm;
        history.push(rn);
        if rn <= rtol {
            break;
        }
        iterations += 1;
        KrylovWorkspace::trace_iter(&tracer, "pcg iter", iterations, rn);
        apply_op_into(a, p, ap);
        let denom = counted(&hook, dot(p, ap));
        if denom <= 0.0 {
            break; // not SPD (numerically): bail with best effort
        }
        let alpha = rz / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        apply_prec_into(m, r, z);
        let rz_new = counted(&hook, dot(r, z));
        let beta = rz_new / rz;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rz = rz_new;
    }

    let relative_residual = true_residual(a, &x, b, ap, &hook);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

/// Result of a blocked iterative solve: the solution block plus per-column
/// iteration counts, residuals, convergence flags and histories — one entry
/// per right-hand side, exactly what [`pcg`] would have reported for that
/// column alone.
#[derive(Clone, Debug)]
pub struct BlockIterResult {
    pub x: Mat,
    pub iterations: Vec<usize>,
    pub relative_residual: Vec<f64>,
    pub converged: Vec<bool>,
    pub history: Vec<Vec<f64>>,
}

/// Preallocated `n × k` iteration blocks for [`block_pcg_with`]. The blocked
/// counterpart of [`KrylovWorkspace`]: one workspace amortizes the four
/// direction/residual blocks across solves, and the tracer / reduce-hook
/// attachments survive resizes exactly as in the vector workspace.
pub struct BlockKrylovWorkspace {
    n: usize,
    k: usize,
    r: Mat,
    z: Mat,
    p: Mat,
    ap: Mat,
    scratch: Vec<f64>,
    tracer: Option<Arc<Tracer>>,
    reduce_hook: Option<ReduceHook>,
}

impl BlockKrylovWorkspace {
    pub fn new(n: usize, k: usize) -> Self {
        BlockKrylovWorkspace {
            n,
            k,
            r: Mat::zeros(n, k),
            z: Mat::zeros(n, k),
            p: Mat::zeros(n, k),
            ap: Mat::zeros(n, k),
            scratch: vec![0.0; n],
            tracer: None,
            reduce_hook: None,
        }
    }

    /// Problem size the workspace is sized for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block width the workspace is sized for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Attach (or detach) an observability tracer; survives resizes.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// Attach (or detach) a global-reduction observer; survives resizes.
    pub fn set_reduce_hook(&mut self, hook: Option<ReduceHook>) {
        self.reduce_hook = hook;
    }

    fn ensure(&mut self, n: usize, k: usize) {
        if self.n != n || self.k != k {
            let tracer = self.tracer.take();
            let hook = self.reduce_hook.take();
            *self = BlockKrylovWorkspace::new(n, k);
            self.tracer = tracer;
            self.reduce_hook = hook;
        }
    }
}

/// Blocked preconditioned conjugate gradients: `k` independent PCG
/// recurrences advanced in lockstep, sharing one blocked operator
/// application `AP = A P` and one blocked preconditioner application
/// `Z = M⁻¹ R` per iteration — GEMM-shaped work instead of `k` sequential
/// GEMV-shaped passes.
///
/// Every scalar of the recurrence (`α`, `β`, `ρ`, the residual norms) is
/// per-column, computed by the same fixed-order [`blocked_dot`] over the
/// same contiguous column slice the single-RHS method would use, and a
/// column that converges (or breaks down) freezes: its `x`/`r`/`p` stop
/// updating while the remaining columns iterate on. Consequently, when the
/// operator and preconditioner apply each column independently of its
/// neighbours — the `gemm_rhs` dispatch contract, satisfied by
/// `UlvFactor`'s solve path — column `j` of the blocked solve is
/// **bit-identical** to `pcg(a, m, b.col(j), …)`.
pub fn block_pcg(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &Mat,
    max_iters: usize,
    rtol: f64,
) -> BlockIterResult {
    block_pcg_with(
        a,
        m,
        b,
        max_iters,
        rtol,
        &mut BlockKrylovWorkspace::new(b.rows(), b.cols()),
    )
}

/// [`block_pcg`] reusing a caller-owned workspace.
pub fn block_pcg_with(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &Mat,
    max_iters: usize,
    rtol: f64,
    ws: &mut BlockKrylovWorkspace,
) -> BlockIterResult {
    let (n, k) = (b.rows(), b.cols());
    assert_eq!(a.nrows(), n, "block_pcg: dimension mismatch");
    assert_eq!(m.n(), n, "block_pcg: preconditioner dimension mismatch");
    ws.ensure(n, k);
    let tracer = ws.tracer.clone();
    let hook = ws.reduce_hook.clone();
    let _solve_span = tracer.as_ref().map(|t| t.span("krylov", "block_pcg"));
    let b_norms: Vec<f64> = (0..k)
        .map(|j| counted(&hook, norm(b.col(j))).max(f64::MIN_POSITIVE))
        .collect();

    let mut x = Mat::zeros(n, k);
    let BlockKrylovWorkspace {
        r,
        z,
        p,
        ap,
        scratch,
        ..
    } = ws;
    r.rm().copy_from(b.rf());
    m.apply_inv_into(r.rf(), z.rm());
    p.rm().copy_from(z.rf());
    let mut rz: Vec<f64> = (0..k)
        .map(|j| counted(&hook, dot(r.col(j), z.col(j))))
        .collect();
    let mut history: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut iterations = vec![0usize; k];
    let mut active = vec![true; k];
    let mut rounds = 0;

    for _ in 0..max_iters {
        // Residual check per column; converged columns freeze here, exactly
        // where the single-RHS loop would break.
        let mut worst = 0.0_f64;
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let rn = counted(&hook, norm(r.col(j))) / b_norms[j];
            history[j].push(rn);
            if rn <= rtol {
                active[j] = false;
            } else {
                worst = worst.max(rn);
            }
        }
        if !active.iter().any(|&v| v) {
            break;
        }
        rounds += 1;
        for j in 0..k {
            if active[j] {
                iterations[j] += 1;
            }
        }
        KrylovWorkspace::trace_iter(&tracer, "block_pcg iter", rounds, worst);
        // One blocked application covers every column; frozen columns carry
        // stale directions whose products are simply ignored.
        a.apply(p.rf(), ap.rm());
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let denom = counted(&hook, dot(p.col(j), ap.col(j)));
            if denom <= 0.0 {
                active[j] = false; // not SPD (numerically): freeze best effort
                continue;
            }
            let alpha = rz[j] / denom;
            {
                let xc = x.col_mut(j);
                let pc = p.col(j);
                for i in 0..n {
                    xc[i] += alpha * pc[i];
                }
            }
            let rc = r.col_mut(j);
            let apc = ap.col(j);
            for i in 0..n {
                rc[i] -= alpha * apc[i];
            }
        }
        m.apply_inv_into(r.rf(), z.rm());
        for j in 0..k {
            if !active[j] {
                continue;
            }
            let rz_new = counted(&hook, dot(r.col(j), z.col(j)));
            let beta = rz_new / rz[j];
            let pc = p.col_mut(j);
            let zc = z.col(j);
            for i in 0..n {
                pc[i] = zc[i] + beta * pc[i];
            }
            rz[j] = rz_new;
        }
    }

    let mut relative_residual = vec![0.0; k];
    let mut converged = vec![false; k];
    for j in 0..k {
        relative_residual[j] = true_residual(a, x.col(j), b.col(j), scratch, &hook);
        converged[j] = relative_residual[j] <= 10.0 * rtol;
    }
    BlockIterResult {
        x,
        iterations,
        relative_residual,
        converged,
        history,
    }
}

/// Restarted GMRES(m) with *right* preconditioning: solves `A M⁻¹ u = b`,
/// `x = M⁻¹ u`, so the preconditioner need not be symmetric.
pub fn gmres(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    restart: usize,
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    gmres_with(
        a,
        m,
        b,
        restart,
        max_iters,
        rtol,
        &mut KrylovWorkspace::new(b.len()),
    )
}

/// [`gmres`] reusing a caller-owned workspace (the Krylov basis block is
/// allocated once and persists across restarts and calls).
pub fn gmres_with(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    restart: usize,
    max_iters: usize,
    rtol: f64,
    ws: &mut KrylovWorkspace,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "gmres: dimension mismatch");
    let restart = restart.max(1);
    ws.ensure(n);
    ws.ensure_gmres(restart);
    let tracer = ws.tracer.clone();
    let hook = ws.reduce_hook.clone();
    let _solve_span = tracer.as_ref().map(|t| t.span("krylov", "gmres"));
    let b_norm = counted(&hook, norm(b)).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    let mut iterations = 0;
    let KrylovWorkspace {
        r,
        w,
        z: mz,
        u,
        basis,
        hess,
        cs,
        sn,
        g,
        ..
    } = ws;

    'outer: while iterations < max_iters {
        // r = b - A x
        apply_op_into(a, &x, r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let beta = counted(&hook, norm(r));
        history.push(beta / b_norm);
        if beta / b_norm <= rtol {
            break;
        }

        // Arnoldi on A M⁻¹, basis columns in the workspace block.
        {
            let v0 = basis.col_mut(0);
            for i in 0..n {
                v0[i] = r[i] / beta;
            }
        }
        g.iter_mut().for_each(|v| *v = 0.0);
        g[0] = beta;

        let mut k_used = 0;
        let mut n_cols = 1;
        for k in 0..restart {
            if iterations >= max_iters {
                break;
            }
            iterations += 1;
            KrylovWorkspace::trace_iter(
                &tracer,
                "gmres iter",
                iterations,
                history.last().copied().unwrap_or(1.0),
            );
            apply_prec_into(m, basis.col(k), mz);
            apply_op_into(a, mz, w);
            // Modified Gram-Schmidt against the stored basis.
            for i in 0..n_cols {
                let vi = basis.col(i);
                let hik = counted(&hook, dot(w, vi));
                hess[(i, k)] = hik;
                for j in 0..n {
                    w[j] -= hik * vi[j];
                }
            }
            let wn = counted(&hook, norm(w));
            hess[(k + 1, k)] = wn;

            // Apply existing Givens rotations to the new column.
            for i in 0..k {
                let t = cs[i] * hess[(i, k)] + sn[i] * hess[(i + 1, k)];
                hess[(i + 1, k)] = -sn[i] * hess[(i, k)] + cs[i] * hess[(i + 1, k)];
                hess[(i, k)] = t;
            }
            // New rotation to annihilate hess[k+1][k].
            let (c, s) = givens(hess[(k, k)], hess[(k + 1, k)]);
            cs[k] = c;
            sn[k] = s;
            hess[(k, k)] = c * hess[(k, k)] + s * hess[(k + 1, k)];
            hess[(k + 1, k)] = 0.0;
            let t = c * g[k];
            g[k + 1] = -s * g[k];
            g[k] = t;
            k_used = k + 1;

            let res_est = g[k + 1].abs() / b_norm;
            history.push(res_est);
            if wn == 0.0 || res_est <= rtol {
                break;
            }
            let vk = basis.col_mut(k + 1);
            for i in 0..n {
                vk[i] = w[i] / wn;
            }
            n_cols = k + 2;
            if n_cols == restart + 1 {
                break;
            }
        }

        if k_used == 0 {
            break 'outer; // stagnation: no Krylov direction produced
        }

        // Solve the k_used x k_used triangular system H y = g.
        let mut y = vec![0.0; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in (i + 1)..k_used {
                s -= hess[(i, j)] * y[j];
            }
            y[i] = s / hess[(i, i)];
        }
        // x += M⁻¹ (V y)
        u.iter_mut().for_each(|v| *v = 0.0);
        for (j, &yj) in y.iter().enumerate() {
            let vj = basis.col(j);
            for i in 0..n {
                u[i] += yj * vj[i];
            }
        }
        apply_prec_into(m, u, mz);
        for i in 0..n {
            x[i] += mz[i];
        }
    }

    let relative_residual = true_residual(a, &x, b, r, &hook);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c.copysign(a.signum() * c.abs()), c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

/// BiCGStab with right preconditioning — unsymmetric systems where GMRES
/// restarts stall or memory for the Krylov basis is a concern.
pub fn bicgstab(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    bicgstab_with(a, m, b, max_iters, rtol, &mut KrylovWorkspace::new(b.len()))
}

/// [`bicgstab`] reusing a caller-owned workspace.
pub fn bicgstab_with(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
    ws: &mut KrylovWorkspace,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "bicgstab: dimension mismatch");
    ws.ensure(n);
    let tracer = ws.tracer.clone();
    let hook = ws.reduce_hook.clone();
    let _solve_span = tracer.as_ref().map(|t| t.span("krylov", "bicgstab"));
    let b_norm = counted(&hook, norm(b)).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let KrylovWorkspace {
        r,
        z: r0,
        v,
        p,
        q: phat,
        s,
        u: shat,
        t,
        ..
    } = ws;
    r.copy_from_slice(b);
    r0.copy_from_slice(b);
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    v.iter_mut().for_each(|x| *x = 0.0);
    p.iter_mut().for_each(|x| *x = 0.0);
    let mut history = Vec::new();
    let mut iterations = 0;

    for _ in 0..max_iters {
        let rn = counted(&hook, norm(r)) / b_norm;
        history.push(rn);
        if rn <= rtol {
            break;
        }
        iterations += 1;
        KrylovWorkspace::trace_iter(&tracer, "bicgstab iter", iterations, rn);
        let rho_new = counted(&hook, dot(r0, r));
        if rho_new == 0.0 {
            break; // breakdown
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        apply_prec_into(m, p, phat);
        apply_op_into(a, phat, v);
        let r0v = counted(&hook, dot(r0, v));
        if r0v == 0.0 {
            break;
        }
        alpha = rho_new / r0v;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if counted(&hook, norm(s)) / b_norm <= rtol {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            r.copy_from_slice(s);
            continue;
        }
        apply_prec_into(m, s, shat);
        apply_op_into(a, shat, t);
        let tt = counted(&hook, dot(t, t));
        if tt == 0.0 {
            break;
        }
        omega = counted(&hook, dot(t, s)) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega == 0.0 {
            break;
        }
        rho = rho_new;
    }

    let relative_residual = true_residual(a, &x, b, t, &hook);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

/// CGS (conjugate gradient squared) with right preconditioning — the
/// transpose-free BiCG square, two operator applications per iteration
/// with no `Aᵀ` and no Krylov basis storage.
pub fn cgs(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    cgs_with(a, m, b, max_iters, rtol, &mut KrylovWorkspace::new(b.len()))
}

/// [`cgs`] reusing a caller-owned workspace.
pub fn cgs_with(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
    ws: &mut KrylovWorkspace,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "cgs: dimension mismatch");
    ws.ensure(n);
    let tracer = ws.tracer.clone();
    let hook = ws.reduce_hook.clone();
    let _solve_span = tracer.as_ref().map(|t| t.span("krylov", "cgs"));
    let b_norm = counted(&hook, norm(b)).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let KrylovWorkspace {
        r,
        z: r0,
        p,
        q,
        u,
        v,
        s: hat,
        t: av,
        w: uq,
        ..
    } = ws;
    r.copy_from_slice(b);
    r0.copy_from_slice(b);
    p.iter_mut().for_each(|x| *x = 0.0);
    q.iter_mut().for_each(|x| *x = 0.0);
    let mut rho = 1.0_f64;
    let mut history = Vec::new();
    let mut iterations = 0;

    for it in 0..max_iters {
        let rn = counted(&hook, norm(r)) / b_norm;
        history.push(rn);
        if rn <= rtol {
            break;
        }
        iterations += 1;
        KrylovWorkspace::trace_iter(&tracer, "cgs iter", iterations, rn);
        let rho_new = counted(&hook, dot(r0, r));
        if rho_new == 0.0 {
            break; // breakdown
        }
        let beta = if it == 0 { 0.0 } else { rho_new / rho };
        for i in 0..n {
            u[i] = r[i] + beta * q[i];
            p[i] = u[i] + beta * (q[i] + beta * p[i]);
        }
        apply_prec_into(m, p, hat);
        apply_op_into(a, hat, v);
        let sigma = counted(&hook, dot(r0, v));
        if sigma == 0.0 {
            break;
        }
        let alpha = rho_new / sigma;
        for i in 0..n {
            q[i] = u[i] - alpha * v[i];
            uq[i] = u[i] + q[i];
        }
        apply_prec_into(m, uq, hat);
        apply_op_into(a, hat, av);
        for i in 0..n {
            x[i] += alpha * hat[i];
            r[i] -= alpha * av[i];
        }
        rho = rho_new;
    }

    let relative_residual = true_residual(a, &x, b, av, &hook);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobi, DiagJacobi, Identity};
    use h2_dense::{gaussian_mat, DenseOp, Mat};

    fn spd_problem(n: usize, seed: u64) -> (DenseOp, Vec<f64>) {
        // A = G Gᵀ + n·I is SPD and well conditioned.
        let g = gaussian_mat(n, n, seed);
        let mut a = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        (DenseOp::new(a), b)
    }

    fn unsym_problem(n: usize, seed: u64) -> (DenseOp, Vec<f64>) {
        // Diagonally dominant unsymmetric matrix.
        let g = gaussian_mat(n, n, seed);
        let mut a = g;
        for i in 0..n {
            a[(i, i)] += 3.0 * (n as f64).sqrt();
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.11).cos()).collect();
        (DenseOp::new(a), b)
    }

    #[test]
    fn pcg_converges_on_spd() {
        let (op, b) = spd_problem(80, 11);
        let res = pcg(&op, &Identity { n: 80 }, &b, 200, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
        assert!(res.relative_residual < 1e-9);
    }

    #[test]
    fn pcg_history_is_recorded_and_decreases() {
        let (op, b) = spd_problem(60, 12);
        let res = pcg(&op, &Identity { n: 60 }, &b, 200, 1e-10);
        assert!(res.history.len() >= 2);
        assert!(res.history.last().unwrap() < &res.history[0]);
    }

    #[test]
    fn jacobi_preconditioning_helps_on_scaled_system() {
        // Badly row/column-scaled SPD matrix: diag precond should cut the
        // iteration count substantially.
        let n = 120;
        let g = gaussian_mat(n, n, 13);
        let mut a = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        // Scale rows and columns by wildly varying weights.
        for i in 0..n {
            let w = 10f64.powi((i % 7) as i32 - 3);
            for j in 0..n {
                a[(i, j)] *= w;
                a[(j, i)] *= w;
            }
        }
        let op = DenseOp::new(a.clone());
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 3000, 1e-8);
        let jac = pcg(&op, &DiagJacobi::new(&op, n), &b, 3000, 1e-8);
        assert!(jac.converged);
        assert!(
            jac.iterations * 2 < plain.iterations.max(1),
            "jacobi {} vs plain {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn gmres_converges_on_unsymmetric() {
        let (op, b) = unsym_problem(90, 14);
        let res = gmres(&op, &Identity { n: 90 }, &b, 30, 400, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
    }

    #[test]
    fn gmres_with_restart_shorter_than_problem() {
        let (op, b) = unsym_problem(100, 15);
        let res = gmres(&op, &Identity { n: 100 }, &b, 10, 2000, 1e-8);
        assert!(
            res.converged,
            "restarted GMRES residual {}",
            res.relative_residual
        );
    }

    #[test]
    fn bicgstab_converges_on_unsymmetric() {
        let (op, b) = unsym_problem(90, 16);
        let res = bicgstab(&op, &Identity { n: 90 }, &b, 400, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
    }

    #[test]
    fn cgs_converges_on_unsymmetric() {
        let (op, b) = unsym_problem(90, 19);
        let res = cgs(&op, &Identity { n: 90 }, &b, 400, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
        // And agrees with GMRES on the solution.
        let g = gmres(&op, &Identity { n: 90 }, &b, 45, 400, 1e-12);
        let mut d = 0.0_f64;
        for i in 0..90 {
            d = d.max((g.x[i] - res.x[i]).abs());
        }
        assert!(d < 1e-7, "cgs and gmres disagree by {d}");
    }

    #[test]
    fn solvers_agree_on_the_solution() {
        let (op, b) = unsym_problem(64, 17);
        let g = gmres(&op, &Identity { n: 64 }, &b, 32, 400, 1e-12);
        let s = bicgstab(&op, &Identity { n: 64 }, &b, 400, 1e-12);
        let mut d = 0.0_f64;
        for i in 0..64 {
            d = d.max((g.x[i] - s.x[i]).abs());
        }
        assert!(d < 1e-8, "gmres and bicgstab disagree by {d}");
    }

    #[test]
    fn workspace_reuse_is_identical_to_fresh() {
        // One workspace threaded through all four methods, twice each:
        // results must be bitwise identical to fresh-workspace runs.
        let (op, b) = unsym_problem(70, 18);
        let (spd, bs) = spd_problem(70, 18);
        let mut ws = KrylovWorkspace::new(70);
        for _ in 0..2 {
            let a1 = pcg_with(&spd, &Identity { n: 70 }, &bs, 200, 1e-10, &mut ws);
            let a2 = pcg(&spd, &Identity { n: 70 }, &bs, 200, 1e-10);
            assert_eq!(a1.x, a2.x);
            let g1 = gmres_with(&op, &Identity { n: 70 }, &b, 20, 300, 1e-10, &mut ws);
            let g2 = gmres(&op, &Identity { n: 70 }, &b, 20, 300, 1e-10);
            assert_eq!(g1.x, g2.x);
            let s1 = bicgstab_with(&op, &Identity { n: 70 }, &b, 300, 1e-10, &mut ws);
            let s2 = bicgstab(&op, &Identity { n: 70 }, &b, 300, 1e-10);
            assert_eq!(s1.x, s2.x);
            let c1 = cgs_with(&op, &Identity { n: 70 }, &b, 300, 1e-10, &mut ws);
            let c2 = cgs(&op, &Identity { n: 70 }, &b, 300, 1e-10);
            assert_eq!(c1.x, c2.x);
        }
    }

    #[test]
    fn workspace_resizes_across_problem_sizes() {
        let mut ws = KrylovWorkspace::new(10);
        let (op, b) = spd_problem(40, 20);
        let res = pcg_with(&op, &Identity { n: 40 }, &b, 200, 1e-10, &mut ws);
        assert!(res.converged);
        assert_eq!(ws.n(), 40);
    }

    #[test]
    fn block_jacobi_beats_identity_on_block_structured_spd() {
        use h2_tree::ClusterTree;
        let n = 128;
        let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let tree = ClusterTree::build(&pts, 16);
        // SPD with strong diagonal blocks, weak off-diagonal coupling.
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let near = (i / 16) == (j / 16);
                let base = (-((i as f64 - j as f64) / 4.0).powi(2)).exp();
                a[(i, j)] = if near { base } else { 0.01 * base };
            }
            a[(i, i)] += 2.0;
        }
        let op = DenseOp::new(a);
        let b: Vec<f64> = (0..n).map(|i| (0.05 * i as f64).sin()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 500, 1e-10);
        let bj = BlockJacobi::from_entry(&op, &tree).unwrap();
        let prec = pcg(&op, &bj, &b, 500, 1e-10);
        assert!(prec.converged);
        assert!(
            prec.iterations < plain.iterations,
            "block-jacobi {} vs plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    /// A dense operator whose kernel choice ignores the RHS width
    /// (`gemm_rhs`), so each column's product is bitwise independent of its
    /// neighbours — the operator contract `block_pcg`'s bit-identity claim
    /// rests on. (`DenseOp` uses `par_gemm`, whose dispatch reads the
    /// column count.)
    struct ColInvariantOp {
        a: Mat,
    }

    impl h2_dense::LinOp for ColInvariantOp {
        fn nrows(&self) -> usize {
            self.a.rows()
        }

        fn ncols(&self) -> usize {
            self.a.cols()
        }

        fn apply(&self, x: h2_dense::MatRef<'_>, y: h2_dense::MatMut<'_>) {
            h2_dense::gemm_rhs(
                h2_dense::Op::NoTrans,
                h2_dense::Op::NoTrans,
                1.0,
                self.a.rf(),
                x,
                0.0,
                y,
            );
        }
    }

    fn spd_mat(n: usize, seed: u64) -> Mat {
        let g = gaussian_mat(n, n, seed);
        let mut a = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn block_pcg_bit_identical_to_sequential_pcg() {
        let n = 96;
        let a = spd_mat(n, 23);
        let op = ColInvariantOp { a: a.clone() };
        // Columns with wildly different scales so convergence rounds differ
        // per column — exercising the freeze path.
        let mut b = gaussian_mat(n, 8, 24);
        for j in 0..8 {
            let s = 10f64.powi(j as i32 - 4);
            for v in b.col_mut(j) {
                *v *= s;
            }
        }
        for m in [
            &Identity { n } as &dyn crate::Preconditioner,
            &DiagJacobi::new(&DenseOp::new(a.clone()), n),
        ] {
            let blocked = block_pcg(&op, m, &b, 200, 1e-10);
            for j in 0..8 {
                let single = pcg(&op, m, b.col(j), 200, 1e-10);
                assert_eq!(
                    blocked.x.col(j),
                    single.x.as_slice(),
                    "column {j} drifted from its single-RHS solve"
                );
                assert_eq!(blocked.iterations[j], single.iterations);
                assert_eq!(blocked.history[j], single.history);
                assert_eq!(blocked.relative_residual[j], single.relative_residual);
                assert_eq!(blocked.converged[j], single.converged);
            }
        }
    }

    #[test]
    fn block_pcg_workspace_reuse_is_identical_to_fresh() {
        let n = 64;
        let op = ColInvariantOp { a: spd_mat(n, 29) };
        let b = gaussian_mat(n, 5, 30);
        let mut ws = BlockKrylovWorkspace::new(n, 5);
        for _ in 0..2 {
            let r1 = block_pcg_with(&op, &Identity { n }, &b, 200, 1e-10, &mut ws);
            let r2 = block_pcg(&op, &Identity { n }, &b, 200, 1e-10);
            assert_eq!(r1.x, r2.x);
        }
        // Resize across widths.
        let b2 = gaussian_mat(n, 3, 31);
        let r1 = block_pcg_with(&op, &Identity { n }, &b2, 200, 1e-10, &mut ws);
        assert_eq!(ws.k(), 3);
        assert!(r1.converged.iter().all(|&c| c));
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (op, _) = spd_problem(20, 18);
        let b = vec![0.0; 20];
        let res = pcg(&op, &Identity { n: 20 }, &b, 50, 1e-10);
        assert!(res.x.iter().all(|&v| v == 0.0));
        let res = gmres(&op, &Identity { n: 20 }, &b, 10, 50, 1e-10);
        assert!(res.x.iter().all(|&v| v == 0.0));
        let res = cgs(&op, &Identity { n: 20 }, &b, 50, 1e-10);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
