//! Fabric pipeline ablation: synchronous (fork-join, exposed transfers)
//! vs. pipelined (ordered queues, prefetched transfers, double-buffered
//! arenas) execution of the *same* sharded construction and matvec, in
//! both symmetry regimes, for D ∈ {1, 2, 4, 8} — emitting
//! `BENCH_fabric.json`.
//!
//! Reported per (regime, D, mode):
//!
//! * **makespan** — the repo's measured-makespan currency: the executor's
//!   recorded counters projected through a [`DeviceModel`] honoring the
//!   run's schedule (serialized comm for synchronous, overlapped for
//!   pipelined; see `ExecReport::modeled_makespan`). Two models are
//!   reported, mirroring `ablation_multidevice`: **A100-class** (10 TF/s —
//!   at shard-able problem sizes the levels are latency-bound, so overlap
//!   buys little: the §IV.B "don't multi-GPU small problems" tradeoff) and
//!   **weak-compute** (0.5 TF/s, same links — the balanced regime where
//!   per-level compute and communication are comparable and overlap pays;
//!   the headline speedup is measured here);
//! * **wall** — wall-clock of the run on the CPU-scale virtual link
//!   ([`h2_sched::LinkModel::cpu_scale`]), where synchronous transfers are
//!   serviced inline and pipelined ones ride the copy engine;
//! * **busy / stall / overlap / idle** — the per-device breakdown summed
//!   over devices, attributing where the time went;
//! * **sim ratio** — pipelined measured makespan over the closed-form
//!   simulator prediction: [`h2_runtime::simulate_prec`] for construction
//!   (the tightened 2x band, bytes asserted exactly equal when the run was
//!   non-adaptive) and [`h2_sched::simulate_matvec`] for the matvec (exact
//!   epoch-for-epoch replay, so the ratio is 1.0 and bytes always match);
//! * **precision** — with `--precision f32` the fabric wire is demoted and
//!   block storage is norm-aware-demoted (`SketchConfig::storage`), so
//!   every transfer ships half the bytes while accumulation stays f64;
//!   `--precision both` runs f64 and f32 back to back and reports the
//!   byte ratio plus the comm-bound A100 D >= 4 makespan speedup.
//!
//! * **`--faults`** — the resilience sweep: for every `FaultKind` chaos
//!   preset at D = 4 in both modes, the faulted construction must stay
//!   **bit-identical** to the fault-free run and its measured bytes
//!   (charged retries included) must equal the extended simulator
//!   ([`h2_sched::compare_with_simulator_faulted`]); emitted as the
//!   `resilience` section of the envelope (validated by `bench_check`),
//!   and the `--trace` run then executes under a drop plan so the trace
//!   carries paired fault/retry instants for `trace_check`.
//!
//! Usage: `fabric [--n 12288] [--n-unsym 8192] [--samples 128]
//! [--leaf 32] [--precision f64|f32|both] [--out BENCH_fabric.json]
//! [--trace trace.json] [--smoke] [--faults]`
//!
//! `--trace <path>` additionally runs one dedicated pipelined D=4
//! construction with a live tracer attached and writes its merged Chrome
//! trace (device timelines + link rows + host spans — load at
//! <https://ui.perfetto.dev>), plus a `<path>.expect` sidecar holding the
//! run's exact cross-device byte total for the CI validator
//! (`trace_check`):
//!
//! ```sh
//! cargo run --release -p h2_bench --bin fabric -- --smoke --trace trace.json
//! cargo run --release -p h2_bench --bin trace_check -- \
//!     --trace trace.json --expect-bytes $(cat trace.json.expect)
//! ```

use h2_core::{level_specs, sketch_construct_unsym, SketchConfig};
use h2_dense::LinOp;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::{direct_construct, DirectConfig};
use h2_obs::Json;
use h2_runtime::{DeviceModel, PipelineMode, Precision, Runtime};
use h2_sched::{
    compare_matvec_with_simulator, compare_with_simulator, compare_with_simulator_faulted,
    export_chrome_trace_with_spans, shard_construct, shard_construct_unsym,
    shard_matvec_with_report, DeviceFabric, ExecReport, FaultKind, FaultPlan, LinkModel,
};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

/// The two device models of `ablation_multidevice`: A100-class, and the
/// weak-compute variant whose compute:link balance makes overlap visible.
fn models() -> (DeviceModel, DeviceModel) {
    let a100 = DeviceModel::default();
    let weak = DeviceModel {
        flops_per_sec: 5.0e11,
        ..DeviceModel::default()
    };
    (a100, weak)
}

struct ModeRow {
    makespan_weak: f64,
    makespan_a100: f64,
    wall: f64,
    busy: f64,
    stall: f64,
    overlap: f64,
    idle: f64,
}

fn mode_row(report: &ExecReport) -> ModeRow {
    let (a100, weak) = models();
    ModeRow {
        makespan_weak: report.modeled_makespan(&weak),
        makespan_a100: report.modeled_makespan(&a100),
        wall: report.wall.as_secs_f64(),
        busy: report
            .busy_per_device()
            .into_iter()
            .map(|d| d.as_secs_f64())
            .sum(),
        stall: report.stall_total().as_secs_f64(),
        overlap: report.overlapped_total().as_secs_f64(),
        idle: report.idle_total().as_secs_f64(),
    }
}

struct BenchRow {
    regime: &'static str,
    phase: &'static str,
    prec: Precision,
    devices: usize,
    sync: ModeRow,
    pipe: ModeRow,
    /// Pipelined cross-device transfer total at the wire precision.
    comm_bytes: u64,
    sim_ratio: f64,
    bytes_equal: bool,
}

impl BenchRow {
    /// Headline speedup under the weak-compute (balanced) model.
    fn speedup(&self) -> f64 {
        if self.pipe.makespan_weak == 0.0 {
            1.0
        } else {
            self.sync.makespan_weak / self.pipe.makespan_weak
        }
    }

    fn speedup_a100(&self) -> f64 {
        if self.pipe.makespan_a100 == 0.0 {
            1.0
        } else {
            self.sync.makespan_a100 / self.pipe.makespan_a100
        }
    }
}

fn fabric_for(devices: usize, mode: PipelineMode, prec: Precision) -> Arc<DeviceFabric> {
    let fabric = DeviceFabric::with_config(devices, mode, LinkModel::cpu_scale());
    fabric.set_wire(prec);
    fabric
}

/// Dedicated traced run backing `--trace`: a pipelined D=4 symmetric
/// construction with non-adaptive sampling (byte totals provably equal to
/// the simulator prediction), a live tracer attached to the fabric, and
/// the merged Chrome trace written to `path`. A `<path>.expect` sidecar
/// holds the exact cross-device byte total so `trace_check` can validate
/// the trace against an independently recorded number.
fn write_trace(path: &str, smoke: bool, faults: bool) {
    let n = if smoke { 3000 } else { 4096 };
    let pts = h2_tree::uniform_cube(n, 0xFAB7);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    let sampler = direct_construct(
        &km,
        tree.clone(),
        part.clone(),
        &DirectConfig {
            tol: 1e-8,
            ..Default::default()
        },
    );
    let cfg = SketchConfig {
        initial_samples: 64,
        adaptive: false,
        ..Default::default()
    };
    let fabric = DeviceFabric::with_config(4, PipelineMode::Pipelined, LinkModel::cpu_scale());
    let plan = faults.then(|| Arc::new(FaultPlan::chaos(0xFA57_7ACE, FaultKind::TransferDrop)));
    if plan.is_some() {
        fabric.set_fault_plan(plan.clone());
    }
    let tracer = h2_obs::Tracer::new(1 << 20);
    fabric.set_tracer(Some(tracer.clone()));
    let (h2, _, report) = shard_construct(&fabric, &sampler, &km, tree, part, &cfg);
    fabric.set_tracer(None);
    let (_, weak) = models();
    if let Some(plan) = &plan {
        let cmp = compare_with_simulator_faulted(&report, &level_specs(&h2), 64, &weak, plan);
        assert!(
            cmp.bytes_match(),
            "traced chaos run must reconcile with the extended simulator ({} vs {})",
            cmp.base.measured_bytes,
            cmp.predicted_bytes()
        );
        assert!(
            fabric.fault_counters().retries > 0,
            "traced chaos run produced no retries to validate"
        );
    } else {
        let cmp = compare_with_simulator(&report, &level_specs(&h2), 64, &weak);
        assert!(
            cmp.bytes_match(),
            "traced run must reconcile with the simulator ({} vs {})",
            cmp.measured_bytes,
            cmp.predicted_bytes
        );
    }
    let events = tracer.drain();
    let trace = export_chrome_trace_with_spans(&report, &events);
    trace.write(path).expect("write chrome trace");
    std::fs::write(
        format!("{path}.expect"),
        report.total_comm_bytes().to_string(),
    )
    .expect("write expect sidecar");
    println!(
        "trace: wrote {path} ({} events, comm_bytes {}) and {path}.expect",
        trace.len(),
        report.total_comm_bytes()
    );
}

struct FaultRow {
    kind: &'static str,
    devices: usize,
    mode: &'static str,
    bytes_equal: bool,
    /// Faulted over fault-free modeled makespan (weak model), same mode:
    /// charged retry traffic can only lengthen the projection, so the
    /// ratio must sit at or above 1.0 (within float slack).
    makespan_ratio: f64,
    retries: u64,
    recoveries: u64,
}

/// The resilience sweep backing `--faults`: every chaos preset at D = 4
/// in both modes against a fault-free baseline of the same mode. The
/// headline claims are asserted here at generation time (bit-identity,
/// extended-simulator byte equality) and re-checked from the envelope by
/// `bench_check`.
fn run_faults(smoke: bool) -> Vec<FaultRow> {
    let n = if smoke { 1400 } else { 3000 };
    let devices = 4;
    let pts = h2_tree::uniform_cube(n, 0xFA57);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    let sampler = direct_construct(
        &km,
        tree.clone(),
        part.clone(),
        &DirectConfig {
            tol: 1e-8,
            ..Default::default()
        },
    );
    let cfg = SketchConfig {
        initial_samples: 64,
        adaptive: false,
        ..Default::default()
    };
    let (_, weak) = models();
    let probe = h2_dense::gaussian_mat(n, 2, 0xFA58);
    let mut rows = Vec::new();
    println!("## Resilience (chaos sweep, D={devices}, N={n})\n");
    h2_bench::header(&[
        "kind",
        "mode",
        "bytes ==",
        "makespan ratio",
        "retries",
        "recoveries",
    ]);
    for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
        let mode_name = match mode {
            PipelineMode::Synchronous => "sync",
            PipelineMode::Pipelined => "pipelined",
        };
        let fabric = fabric_for(devices, mode, Precision::F64);
        let (h2c, _, base_rep) =
            shard_construct(&fabric, &sampler, &km, tree.clone(), part.clone(), &cfg);
        let base_makespan = base_rep.modeled_makespan(&weak);
        let want = h2c.apply_permuted_mat(&probe);
        for kind in FaultKind::ALL {
            let plan = Arc::new(FaultPlan::chaos(0xFA59, kind));
            let fabric = fabric_for(devices, mode, Precision::F64);
            fabric.set_fault_plan(Some(plan.clone()));
            let (h2, stats, report) =
                shard_construct(&fabric, &sampler, &km, tree.clone(), part.clone(), &cfg);
            assert_eq!(
                h2.apply_permuted_mat(&probe),
                want,
                "{} / {mode_name}: faulted construction must be bit-identical",
                kind.name()
            );
            let cmp = compare_with_simulator_faulted(
                &report,
                &level_specs(&h2),
                stats.total_samples,
                &weak,
                &plan,
            );
            assert!(
                cmp.bytes_match(),
                "{} / {mode_name}: measured {} bytes vs extended simulator {}",
                kind.name(),
                cmp.base.measured_bytes,
                cmp.predicted_bytes()
            );
            let counters = fabric.fault_counters();
            let row = FaultRow {
                kind: kind.name(),
                devices,
                mode: mode_name,
                bytes_equal: cmp.bytes_match(),
                makespan_ratio: if base_makespan > 0.0 {
                    report.modeled_makespan(&weak) / base_makespan
                } else {
                    1.0
                },
                retries: counters.retries,
                recoveries: counters.recoveries + stats.recoveries as u64,
            };
            h2_bench::row(&[
                row.kind.to_string(),
                row.mode.to_string(),
                row.bytes_equal.to_string(),
                format!("{:.3}", row.makespan_ratio),
                row.retries.to_string(),
                row.recoveries.to_string(),
            ]);
            rows.push(row);
        }
    }
    println!();
    rows
}

#[allow(clippy::too_many_arguments)]
fn run_regime(
    regime: &'static str,
    n: usize,
    leaf: usize,
    samples: usize,
    seed: u64,
    device_counts: &[usize],
    precisions: &[Precision],
    rows: &mut Vec<BenchRow>,
) {
    let (_, weak) = models();
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(
        part.top_far_level(&tree).is_some(),
        "{regime}: partition is all-dense at N={n}, leaf={leaf}"
    );
    let sym = regime == "sym";
    let km_sym = sym.then(|| KernelMatrix::new(ExponentialKernel::default(), tree.points.clone()));
    let km_unsym =
        (!sym).then(|| UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone()));

    // Fast sampler, the paper's black-box `Kblk`: an H2 matvec from a
    // tighter reference construction (the exact O(N²d) kernel product would
    // dominate the bench). Symmetric: the entry-based direct constructor.
    // Unsymmetric: one exact-sampled sketched construction up front, reused
    // as the sampler for every fabric run.
    let sampler: Box<dyn LinOp> = if let Some(km) = &km_sym {
        Box::new(direct_construct(
            km,
            tree.clone(),
            part.clone(),
            &DirectConfig {
                tol: 1e-8,
                ..Default::default()
            },
        ))
    } else {
        let km = km_unsym.as_ref().unwrap();
        let rt = Runtime::parallel();
        let ref_cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: samples,
            ..Default::default()
        };
        Box::new(sketch_construct_unsym(km, km, tree.clone(), part.clone(), &rt, &ref_cfg).0)
    };

    for &prec in precisions {
        let cfg = SketchConfig {
            initial_samples: samples,
            storage: prec,
            ..Default::default()
        };
        println!(
            "## Construction ({regime}, N={n}, d0={samples}, {})\n",
            prec.name()
        );
        h2_bench::header(&[
            "D",
            "sync weak (ms)",
            "pipe weak (ms)",
            "speedup",
            "speedup A100",
            "pipe stall (ms)",
            "pipe overlap (ms)",
            "sim ratio",
            "bytes ==",
        ]);
        let mut h2_for_matvec = None;
        for &devices in device_counts {
            let mut reports = Vec::new();
            let mut h2_last = None;
            let mut stats_last = None;
            for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
                let fabric = fabric_for(devices, mode, prec);
                let (h2, stats, report) = if let Some(km) = &km_sym {
                    shard_construct(
                        &fabric,
                        sampler.as_ref(),
                        km,
                        tree.clone(),
                        part.clone(),
                        &cfg,
                    )
                } else {
                    let km = km_unsym.as_ref().unwrap();
                    shard_construct_unsym(
                        &fabric,
                        sampler.as_ref(),
                        km,
                        tree.clone(),
                        part.clone(),
                        &cfg,
                    )
                };
                reports.push(report);
                h2_last = Some(h2);
                stats_last = Some(stats);
            }
            let (sync_rep, pipe_rep) = (&reports[0], &reports[1]);
            let h2 = h2_last.unwrap();
            let stats = stats_last.unwrap();
            let cmp =
                compare_with_simulator(pipe_rep, &level_specs(&h2), stats.total_samples, &weak);
            let bytes_equal = cmp.bytes_match();
            if stats.rounds == 0 {
                assert!(
                    bytes_equal,
                    "{regime} D={devices}: non-adaptive run must match simulator bytes \
                     ({} vs {})",
                    cmp.measured_bytes, cmp.predicted_bytes
                );
            }
            let row = BenchRow {
                regime,
                phase: "construct",
                prec,
                devices,
                sync: mode_row(sync_rep),
                pipe: mode_row(pipe_rep),
                comm_bytes: pipe_rep.total_comm_bytes(),
                sim_ratio: cmp.makespan_ratio(),
                bytes_equal,
            };
            h2_bench::row(&[
                devices.to_string(),
                format!("{:.3}", row.sync.makespan_weak * 1e3),
                format!("{:.3}", row.pipe.makespan_weak * 1e3),
                format!("{:.2}x", row.speedup()),
                format!("{:.2}x", row.speedup_a100()),
                format!("{:.3}", row.pipe.stall * 1e3),
                format!("{:.3}", row.pipe.overlap * 1e3),
                format!("{:.2}", row.sim_ratio),
                row.bytes_equal.to_string(),
            ]);
            rows.push(row);
            if devices == *device_counts.last().unwrap() {
                h2_for_matvec = Some(h2);
            }
        }
        println!();

        let h2 = h2_for_matvec.expect("at least one device count");
        let x = h2_dense::gaussian_mat(n, 16, seed ^ 0xBEEF);
        println!("## Matvec ({regime}, 16 columns, {})\n", prec.name());
        h2_bench::header(&[
            "D",
            "sync weak (ms)",
            "pipe weak (ms)",
            "speedup",
            "speedup A100",
            "pipe stall (ms)",
            "pipe overlap (ms)",
            "sim ratio",
            "bytes ==",
        ]);
        for &devices in device_counts {
            let mut reports = Vec::new();
            for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
                let fabric = fabric_for(devices, mode, prec);
                let (_, report) = shard_matvec_with_report(&fabric, &h2, &x, false);
                reports.push(report);
            }
            let (sync_rep, pipe_rep) = (&reports[0], &reports[1]);
            // The matvec simulator replays the executor's epoch structure
            // exactly, so bytes must always match (no adaptive caveat).
            let cmp = compare_matvec_with_simulator(pipe_rep, &h2, x.cols(), false, &weak);
            assert!(
                cmp.bytes_match(),
                "{regime} D={devices}: matvec bytes {} vs simulator {}",
                cmp.measured_bytes,
                cmp.predicted_bytes
            );
            let row = BenchRow {
                regime,
                phase: "matvec",
                prec,
                devices,
                sync: mode_row(sync_rep),
                pipe: mode_row(pipe_rep),
                comm_bytes: pipe_rep.total_comm_bytes(),
                sim_ratio: cmp.makespan_ratio(),
                bytes_equal: cmp.bytes_match(),
            };
            h2_bench::row(&[
                devices.to_string(),
                format!("{:.3}", row.sync.makespan_weak * 1e3),
                format!("{:.3}", row.pipe.makespan_weak * 1e3),
                format!("{:.2}x", row.speedup()),
                format!("{:.2}x", row.speedup_a100()),
                format!("{:.3}", row.pipe.stall * 1e3),
                format!("{:.3}", row.pipe.overlap * 1e3),
                format!("{:.2}", row.sim_ratio),
                row.bytes_equal.to_string(),
            ]);
            rows.push(row);
        }
        println!();
    }
}

fn main() {
    let args = h2_bench::Args::parse();
    // Full-run defaults sit in the balanced regime where per-level compute
    // and communication are comparable at D = 4 under the weak-compute
    // model — the regime overlap exists to win (bigger N drifts
    // compute-bound, smaller N latency-bound; both converge to 1.0x).
    let smoke = args.flag("smoke");
    let faults = args.flag("faults");
    let n: usize = args.get("n", if smoke { 3000 } else { 12288 });
    let n_unsym: usize = args.get("n-unsym", if smoke { 2200 } else { 8192 });
    let leaf: usize = args.get("leaf", if smoke { 16 } else { 32 });
    let samples: usize = args.get("samples", if smoke { 64 } else { 128 });
    let out_path: String = args.get("out", "BENCH_fabric.json".to_string());
    let prec_arg: String = args.get("precision", "f64".to_string());
    let precisions: Vec<Precision> = match prec_arg.as_str() {
        "both" => vec![Precision::F64, Precision::F32],
        s => vec![Precision::parse(s)
            .unwrap_or_else(|| panic!("--precision must be f64, f32, or both (got {s})"))],
    };
    let device_counts: &[usize] = &[1, 2, 4, 8];

    println!(
        "# Fabric pipeline ablation (virtual link: CPU-scale; models: \
         weak-compute 0.5 TF/s headline, A100-class 10 TF/s reference)\n"
    );
    let mut rows: Vec<BenchRow> = Vec::new();
    run_regime(
        "sym",
        n,
        leaf,
        samples,
        0xFAB1,
        device_counts,
        &precisions,
        &mut rows,
    );
    run_regime(
        "unsym",
        n_unsym,
        leaf,
        samples,
        0xFAB2,
        device_counts,
        &precisions,
        &mut rows,
    );
    let fault_rows = faults.then(|| run_faults(smoke));

    // Headline: the best pipelined-over-synchronous makespan at D >= 4.
    let headline = rows
        .iter()
        .filter(|r| r.devices >= 4)
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    println!(
        "Headline: best pipelined speedup at D >= 4 is {headline:.2}x \
         (acceptance floor 1.25x on the full run)."
    );

    // Mixed-precision headline: pair f64/f32 rows by (regime, phase, D) and
    // report the worst byte ratio (must be ~half: every wire formula is
    // linear in the element width) plus the best comm-bound win — the A100
    // model is the strong-compute regime where transfer time dominates the
    // pipelined makespan, so halving the bytes shows up directly.
    let mut byte_ratio_worst = 0.0f64;
    let mut comm_speedup = 0.0f64;
    if precisions.len() == 2 {
        for r64 in rows.iter().filter(|r| r.prec == Precision::F64) {
            let Some(r32) = rows.iter().find(|r| {
                r.prec == Precision::F32
                    && r.regime == r64.regime
                    && r.phase == r64.phase
                    && r.devices == r64.devices
            }) else {
                continue;
            };
            if r64.comm_bytes > 0 {
                byte_ratio_worst =
                    byte_ratio_worst.max(r32.comm_bytes as f64 / r64.comm_bytes as f64);
            }
            if r64.devices >= 4 && r32.pipe.makespan_a100 > 0.0 {
                comm_speedup = comm_speedup.max(r64.pipe.makespan_a100 / r32.pipe.makespan_a100);
            }
        }
        assert!(
            byte_ratio_worst <= 0.55,
            "f32 wire must cut fabric bytes to ~half (worst ratio {byte_ratio_worst:.3})"
        );
        println!(
            "Mixed precision: worst f32/f64 byte ratio {byte_ratio_worst:.3}; best f32 \
             pipelined makespan speedup on the A100 model at D >= 4 is {comm_speedup:.2}x."
        );
    }

    fn mode_json(m: &ModeRow) -> Json {
        Json::obj(vec![
            ("makespan_weak", Json::Num(m.makespan_weak)),
            ("makespan_a100", Json::Num(m.makespan_a100)),
            ("wall", Json::Num(m.wall)),
            ("busy", Json::Num(m.busy)),
            ("stall", Json::Num(m.stall)),
            ("overlap", Json::Num(m.overlap)),
            ("idle", Json::Num(m.idle)),
        ])
    }

    let (a100, weak) = models();
    let mut rep = h2_bench::BenchReport::new("fabric");
    rep.precisions(&precisions)
        .device_model("weak_compute_0.5TFs", &weak)
        .device_model("a100_10TFs", &a100);
    rep.section(
        "config",
        Json::obj(vec![
            ("n", Json::u64(n as u64)),
            ("n_unsym", Json::u64(n_unsym as u64)),
            ("leaf", Json::u64(leaf as u64)),
            ("samples", Json::u64(samples as u64)),
            ("smoke", Json::Bool(smoke)),
            ("faults", Json::Bool(faults)),
            ("link", Json::str("cpu_scale")),
            ("headline_model", Json::str("weak_compute_0.5TFs")),
            ("reference_model", Json::str("a100_10TFs")),
        ]),
    );
    rep.section("headline_speedup_at_4plus", Json::Num(headline));
    if precisions.len() == 2 {
        rep.section("f32_byte_ratio_worst", Json::Num(byte_ratio_worst));
        rep.section("f32_comm_speedup_a100_at_4plus", Json::Num(comm_speedup));
    }
    rep.section(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("regime", Json::str(r.regime)),
                        ("phase", Json::str(r.phase)),
                        ("precision", Json::str(r.prec.name())),
                        ("devices", Json::u64(r.devices as u64)),
                        ("comm_bytes", Json::u64(r.comm_bytes)),
                        ("sync", mode_json(&r.sync)),
                        ("pipelined", mode_json(&r.pipe)),
                        ("speedup", Json::Num(r.speedup())),
                        ("speedup_a100", Json::Num(r.speedup_a100())),
                        ("sim_ratio", Json::Num(r.sim_ratio)),
                        ("bytes_equal", Json::Bool(r.bytes_equal)),
                    ])
                })
                .collect(),
        ),
    );
    if let Some(fault_rows) = &fault_rows {
        rep.section(
            "resilience",
            Json::Arr(
                fault_rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("kind", Json::str(r.kind)),
                            ("devices", Json::u64(r.devices as u64)),
                            ("mode", Json::str(r.mode)),
                            ("bytes_equal", Json::Bool(r.bytes_equal)),
                            ("makespan_ratio", Json::Num(r.makespan_ratio)),
                            ("retries", Json::u64(r.retries)),
                            ("recoveries", Json::u64(r.recoveries)),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    rep.write(&out_path);

    if let Some(path) = args.get_opt("trace") {
        write_trace(&path, smoke, faults);
    }
}
