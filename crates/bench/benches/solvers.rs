//! Criterion benches for the solver layer and the unsymmetric construction
//! (the DESIGN.md §9 extensions): ULV factor/solve throughput, H2-operator
//! PCG iteration cost, and the two-stream unsymmetric construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::Runtime;
use h2_solve::{pcg, BlockJacobi, UlvFactor};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn hss_1d(n: usize) -> H2Matrix {
    let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, 64));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut hss, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    for i in 0..hss.dense.pairs.len() {
        let (s, t) = hss.dense.pairs[i];
        if s == t {
            let blk = &mut hss.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 2.0;
            }
        }
    }
    hss
}

fn bench_ulv(c: &mut Criterion) {
    let mut g = c.benchmark_group("ulv");
    for n in [2048usize, 8192] {
        let hss = hss_1d(n);
        g.bench_with_input(BenchmarkId::new("factor", n), &n, |b, _| {
            b.iter(|| UlvFactor::new(&hss).unwrap());
        });
        let ulv = UlvFactor::new(&hss).unwrap();
        let rhs = gaussian_mat(n, 1, 11);
        g.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            b.iter(|| ulv.solve(&rhs));
        });
    }
    g.finish();
}

fn bench_pcg(c: &mut Criterion) {
    let n = 4096;
    let pts = h2_tree::uniform_cube(n, 12);
    let tree = Arc::new(ClusterTree::build(&pts, 64));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    let bj = BlockJacobi::from_h2(&h2).unwrap();
    let b: Vec<f64> = (0..n).map(|i| (0.01 * i as f64).sin()).collect();
    c.bench_function("pcg_h2_cov_4096_10iters", |bch| {
        bch.iter(|| pcg(&h2, &bj, &b, 10, 0.0));
    });
}

fn bench_unsym_construction(c: &mut Criterion) {
    let n = 2048;
    let pts = h2_tree::uniform_cube(n, 13);
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 48,
        ..Default::default()
    };
    let mut g = c.benchmark_group("unsym_construct");
    g.sample_size(10);
    g.bench_function("convection_2048", |b| {
        b.iter(|| {
            let rt = Runtime::parallel();
            sketch_construct_unsym(&km, &km, tree.clone(), part.clone(), &rt, &cfg)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ulv, bench_pcg, bench_unsym_construction);
criterion_main!(benches);
