//! Admissibility and the dual-tree block partition (matrix tree).
//!
//! A dual traversal of the cluster tree with the paper's general
//! admissibility condition (eq. (1)),
//! `adm(s,t) = 1  iff  (D(s) + D(t)) / 2 <= η · Dist(s,t)`,
//! produces the matrix tree of Fig. 2: admissible leaves (coupling blocks
//! `B_{s,t}`) at every level and inadmissible leaves (dense blocks
//! `D_{s,t}`) at the leaf level. The per-row block counts are bounded by the
//! sparsity constant `Csp`, which also bounds the number of `batchedBSRGemm`
//! launches (§IV.A).

use crate::cluster::ClusterTree;
use crate::geometry::BBox;

/// Block admissibility rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admissibility {
    /// General (strong-capable) admissibility with parameter `η`
    /// (paper eq. (1)): η ≤ 0.5 is "strong", η ≥ 1 behaves weakly.
    Strong { eta: f64 },
    /// Weak admissibility: any pair of distinct same-level clusters is
    /// admissible (the HODLR/HSS pattern; used for the Fig. 6(b) baselines).
    Weak,
}

impl Admissibility {
    /// Evaluate the rule for a cluster pair. The diagonal pair is never
    /// admissible (it contains the self-interaction; for degenerate
    /// zero-diameter geometry the inequality `0 ≤ η·0` would otherwise
    /// admit it).
    pub fn admissible(&self, s: usize, t: usize, bs: &BBox, bt: &BBox) -> bool {
        if s == t {
            return false;
        }
        match *self {
            Admissibility::Strong { eta } => {
                let d = 0.5 * (bs.diameter() + bt.diameter());
                let dist = bs.distance(bt);
                // Strictly positive separation required: coincident
                // zero-diameter clusters (degenerate point clouds) must stay
                // in the near field where entries are evaluated exactly.
                dist > 0.0 && d <= eta * dist
            }
            Admissibility::Weak => true,
        }
    }
}

/// The block partition produced by the dual-tree traversal.
pub struct Partition {
    /// Rule used to build the partition.
    pub rule: Admissibility,
    /// `far_of[τ]` = F_τ: node ids forming admissible (coupling) blocks with
    /// node `τ`, at `τ`'s level. Indexed by global node id.
    pub far_of: Vec<Vec<usize>>,
    /// `near_of[τ]` = N_τ: leaf node ids forming inadmissible (dense) blocks
    /// with leaf `τ` (includes `τ` itself). Empty for non-leaf nodes.
    pub near_of: Vec<Vec<usize>>,
    /// `inadm_of[τ]`: same-level node ids whose pair with `τ` was tested
    /// inadmissible during the traversal (refined further, or dense at the
    /// leaf level). The complement of their index ranges is `τ`'s far field —
    /// used for proxy-column selection in the direct constructor.
    pub inadm_of: Vec<Vec<usize>>,
    /// Number of tree levels (copied from the cluster tree).
    pub nlevels: usize,
}

impl Partition {
    /// Dual-tree traversal from the root pair.
    pub fn build(tree: &ClusterTree, rule: Admissibility) -> Self {
        let nnodes = tree.nodes.len();
        let mut far_of = vec![Vec::new(); nnodes];
        let mut near_of = vec![Vec::new(); nnodes];
        let mut inadm_of = vec![Vec::new(); nnodes];
        let leaf_level = tree.leaf_level();

        // Explicit stack to avoid deep recursion.
        let mut stack = vec![(0usize, 0usize)];
        while let Some((s, t)) = stack.pop() {
            let bs = &tree.nodes[s].bbox;
            let bt = &tree.nodes[t].bbox;
            if rule.admissible(s, t, bs, bt) {
                far_of[s].push(t);
            } else {
                inadm_of[s].push(t);
                if tree.level_of(s) == leaf_level {
                    near_of[s].push(t);
                } else {
                    let (s1, s2) = tree.nodes[s].children.expect("non-leaf must have children");
                    let (t1, t2) = tree.nodes[t].children.expect("non-leaf must have children");
                    for sc in [s1, s2] {
                        for tc in [t1, t2] {
                            stack.push((sc, tc));
                        }
                    }
                }
            }
        }
        for l in &mut far_of {
            l.sort_unstable();
        }
        for l in &mut near_of {
            l.sort_unstable();
        }
        for l in &mut inadm_of {
            l.sort_unstable();
        }
        Partition {
            rule,
            far_of,
            near_of,
            inadm_of,
            nlevels: tree.nlevels(),
        }
    }

    /// Sparsity constant of level `l`: the maximum number of admissible
    /// blocks in a block row of that level.
    pub fn csp_far(&self, tree: &ClusterTree, l: usize) -> usize {
        tree.level(l)
            .map(|id| self.far_of[id].len())
            .max()
            .unwrap_or(0)
    }

    /// Sparsity constant of the leaf-level dense (inadmissible) part.
    pub fn csp_near(&self, tree: &ClusterTree) -> usize {
        tree.level(tree.leaf_level())
            .map(|id| self.near_of[id].len())
            .max()
            .unwrap_or(0)
    }

    /// Total number of admissible (coupling) blocks at level `l`.
    pub fn far_count(&self, tree: &ClusterTree, l: usize) -> usize {
        tree.level(l).map(|id| self.far_of[id].len()).sum()
    }

    /// Total number of dense leaf blocks.
    pub fn near_count(&self, tree: &ClusterTree) -> usize {
        tree.level(tree.leaf_level())
            .map(|id| self.near_of[id].len())
            .sum()
    }

    /// Highest (smallest-index) level that owns admissible blocks; levels
    /// above it need no skeletonization. Returns `None` when the partition
    /// is entirely dense (tiny problems).
    pub fn top_far_level(&self, tree: &ClusterTree) -> Option<usize> {
        (0..tree.nlevels()).find(|&l| self.far_count(tree, l) > 0)
    }

    /// Whether the union of dense and admissible blocks tiles the `N x N`
    /// index space exactly once (partition completeness).
    pub fn is_complete(&self, tree: &ClusterTree) -> bool {
        let n = tree.npoints();
        let mut covered = 0usize;
        for (s, list) in self.far_of.iter().enumerate() {
            let ls = tree.nodes[s].len();
            for &t in list {
                covered += ls * tree.nodes[t].len();
            }
        }
        for (s, list) in self.near_of.iter().enumerate() {
            let ls = tree.nodes[s].len();
            for &t in list {
                covered += ls * tree.nodes[t].len();
            }
        }
        covered == n * n
    }

    /// Whether every block list is symmetric (`t ∈ F_s ⇔ s ∈ F_t`), which
    /// the symmetric-matrix construction relies on.
    pub fn is_symmetric(&self) -> bool {
        for (s, list) in self.far_of.iter().enumerate() {
            for &t in list {
                if self.far_of[t].binary_search(&s).is_err() {
                    return false;
                }
            }
        }
        for (s, list) in self.near_of.iter().enumerate() {
            for &t in list {
                if self.near_of[t].binary_search(&s).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// The far field of node `τ` as a set of disjoint index intervals: the
    /// complement of the ranges of `τ`'s same-level inadmissible partners.
    /// These are exactly the columns covered by admissible blocks of `τ` or
    /// of its ancestors (proxy-sampling domain for the direct constructor).
    pub fn far_field_ranges(&self, tree: &ClusterTree, node: usize) -> Vec<(usize, usize)> {
        let n = tree.npoints();
        let mut blocked: Vec<(usize, usize)> =
            self.inadm_of[node].iter().map(|&t| tree.range(t)).collect();
        blocked.sort_unstable();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for (b, e) in blocked {
            if b > cursor {
                out.push((cursor, b));
            }
            cursor = cursor.max(e);
        }
        if cursor < n {
            out.push((cursor, n));
        }
        out
    }

    /// Per-level partition statistics (the data behind Fig. 4).
    pub fn level_stats(&self, tree: &ClusterTree) -> Vec<LevelStats> {
        (0..tree.nlevels())
            .map(|l| {
                let nodes = tree.level_len(l);
                let far = self.far_count(tree, l);
                let csp = self.csp_far(tree, l);
                let (near, csp_near) = if l == tree.leaf_level() {
                    (self.near_count(tree), self.csp_near(tree))
                } else {
                    (0, 0)
                };
                LevelStats {
                    level: l,
                    nodes,
                    far_blocks: far,
                    csp_far: csp,
                    near_blocks: near,
                    csp_near,
                }
            })
            .collect()
    }
}

/// Per-level block statistics (Fig. 4 reproduction data).
#[derive(Clone, Debug)]
pub struct LevelStats {
    pub level: usize,
    pub nodes: usize,
    pub far_blocks: usize,
    pub csp_far: usize,
    pub near_blocks: usize,
    pub csp_near: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::uniform_cube;

    fn tree(n: usize, leaf: usize, seed: u64) -> ClusterTree {
        ClusterTree::build(&uniform_cube(n, seed), leaf)
    }

    #[test]
    fn partition_is_complete_and_symmetric_strong() {
        for eta in [0.5, 0.7, 1.0] {
            let t = tree(500, 16, 11);
            let p = Partition::build(&t, Admissibility::Strong { eta });
            assert!(p.is_complete(&t), "eta={eta}");
            assert!(p.is_symmetric(), "eta={eta}");
        }
    }

    #[test]
    fn partition_is_complete_weak() {
        let t = tree(300, 8, 12);
        let p = Partition::build(&t, Admissibility::Weak);
        assert!(p.is_complete(&t));
        assert!(p.is_symmetric());
        // Weak admissibility: every level-1+ node has exactly its sibling.
        for l in 1..t.nlevels() {
            for id in t.level(l) {
                assert_eq!(p.far_of[id].len(), 1, "HODLR pattern: one block per row");
            }
        }
        // Dense leaves: only the diagonal.
        for id in t.level(t.leaf_level()) {
            assert_eq!(p.near_of[id], vec![id]);
        }
    }

    #[test]
    fn diagonal_is_never_admissible() {
        let t = tree(400, 16, 13);
        let p = Partition::build(&t, Admissibility::Strong { eta: 0.7 });
        for (s, list) in p.far_of.iter().enumerate() {
            assert!(!list.contains(&s));
        }
        // Every leaf keeps itself in its near list.
        for id in t.level(t.leaf_level()) {
            assert!(p.near_of[id].contains(&id));
        }
    }

    #[test]
    fn smaller_eta_refines_partition() {
        // Paper §II.A / Fig. 4: smaller η ⇒ more refined partitioning of the
        // off-diagonal blocks ⇒ larger sparsity constants and near field.
        let t = tree(4000, 32, 14);
        let p_small = Partition::build(&t, Admissibility::Strong { eta: 0.5 });
        let p_large = Partition::build(&t, Admissibility::Strong { eta: 1.0 });
        assert!(
            p_small.near_count(&t) > p_large.near_count(&t),
            "smaller eta must enlarge the near field ({} vs {})",
            p_small.near_count(&t),
            p_large.near_count(&t)
        );
        assert!(p_small.csp_near(&t) >= p_large.csp_near(&t));
        let blocks = |p: &Partition| {
            p.near_count(&t) + (0..t.nlevels()).map(|l| p.far_count(&t, l)).sum::<usize>()
        };
        assert!(
            blocks(&p_small) > blocks(&p_large),
            "refinement adds blocks in total"
        );
    }

    #[test]
    fn csp_growth_saturates_with_n() {
        // Csp is pre-asymptotically large in 3D (η=0.7 saturates near
        // (2*ceil(sqrt(3)/0.7)+1)^3 ≈ 343) but must grow much slower than N:
        // that is the H2 linear-memory argument. 4x the points should cost
        // well under 4x the sparsity constant.
        let csp_at = |n: usize| {
            let t = tree(n, 64, 15);
            let p = Partition::build(&t, Admissibility::Strong { eta: 0.7 });
            (0..t.nlevels())
                .map(|l| p.csp_far(&t, l))
                .chain([p.csp_near(&t)])
                .max()
                .unwrap()
        };
        let c1 = csp_at(8000);
        let c2 = csp_at(32000);
        assert!(c2 <= 3 * c1, "Csp {c1} -> {c2} grew superlinearly");
        assert!(c2 <= 400, "Csp {c2} beyond the geometric saturation bound");
    }

    #[test]
    fn tiny_problem_all_dense() {
        let t = tree(10, 16, 16);
        let p = Partition::build(&t, Admissibility::Strong { eta: 0.5 });
        assert_eq!(p.near_of[0], vec![0]);
        assert!(p.top_far_level(&t).is_none());
        assert!(p.is_complete(&t));
    }

    #[test]
    fn far_field_complements_inadmissible_region() {
        let t = tree(800, 16, 18);
        let p = Partition::build(&t, Admissibility::Strong { eta: 0.7 });
        for l in 0..t.nlevels() {
            for id in t.level(l) {
                let far = p.far_field_ranges(&t, id);
                let far_len: usize = far.iter().map(|&(b, e)| e - b).sum();
                let inadm_len: usize = p.inadm_of[id].iter().map(|&b| t.nodes[b].len()).sum();
                assert_eq!(far_len + inadm_len, 800, "node {id}");
                // far field must exactly equal the union of F ranges of self
                // and ancestors
                let mut anc_far_len = 0;
                let mut a = Some(id);
                while let Some(x) = a {
                    anc_far_len += p.far_of[x].iter().map(|&b| t.nodes[b].len()).sum::<usize>();
                    a = t.nodes[x].parent;
                }
                assert_eq!(far_len, anc_far_len, "node {id}");
            }
        }
    }

    #[test]
    fn level_stats_consistent() {
        let t = tree(600, 16, 17);
        let p = Partition::build(&t, Admissibility::Strong { eta: 0.7 });
        let stats = p.level_stats(&t);
        assert_eq!(stats.len(), t.nlevels());
        for s in &stats {
            assert_eq!(s.nodes, t.level_len(s.level));
            assert!(s.csp_far <= s.far_blocks.max(1));
        }
    }
}
