//! Storage/wire precision tier: f32 block storage with f64 accumulation.
//!
//! The paper's fixed-precision compression direction (Boukaram–Turkiyyah–
//! Keyes, "Hierarchical Matrix Operations on GPUs") stores the small dense
//! blocks of a hierarchical matrix in reduced precision while keeping all
//! arithmetic in f64. This module supplies the substrate:
//!
//! * [`Precision`] — the storage/wire width selector (`F64`/`F32`) that the
//!   cost model, the transfer descriptors and the block stores all key on;
//! * [`Mat32`] — an owning column-major f32 matrix, produced by the
//!   **demote** conversion kernel ([`Mat32::demote`]) and consumed by the
//!   **promote** kernel ([`Mat32::promote`]);
//! * [`demote_roundtrip`] — the f64 working copy whose values are exactly
//!   f32-representable: `promote(demote(A))`. Arithmetic on the round-trip
//!   copy is bitwise identical to the promote-on-pack mixed GEMM path, so
//!   a single stored f32 block serves both the packed and the naive
//!   consumers without divergence.
//!
//! Error model: demotion rounds every entry to the nearest f32, so
//! `‖A − promote(demote(A))‖_F ≤ ε₃₂ ‖A‖_F` with `ε₃₂ = f32::EPSILON / 2`
//! per entry (plus underflow at the f32 subnormal floor, irrelevant at the
//! block norms the demotion rule admits). Block stores use exactly this
//! bound for their norm-aware demotion decision.

use crate::mat::{Mat, MatRef};

/// Element width of stored blocks and wire transfers.
///
/// `F64` is the historical default everywhere; `F32` halves the modeled
/// bytes of every block shipped over the device fabric and of every block
/// the norm-aware demotion rule admits into f32 storage. Arithmetic is
/// always f64 — precision only governs storage and transfer width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    #[default]
    F64,
    F32,
}

impl Precision {
    /// Bytes per element at this width.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }

    /// Canonical lowercase name (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parse a `--precision` flag value.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An owning, column-major, `f32` matrix — the storage form of a demoted
/// block. Mirrors [`Mat`]'s layout so the promote kernel and the f32 pack
/// kernels address it identically.
#[derive(Clone, PartialEq)]
pub struct Mat32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat32 {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry `(i, j)`, promoted (exact).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] as f64
    }

    /// Column-major storage slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Column `j` as a contiguous slice (the pack kernels' access path).
    pub fn col(&self, j: usize) -> &[f32] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Heap bytes of the storage (4 per element).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Demote conversion kernel: round every entry of `a` to the nearest
    /// f32 (the `batchedDemote` a GPU implementation would run once per
    /// level as blocks finalize).
    pub fn demote(a: MatRef<'_>) -> Mat32 {
        let (rows, cols) = (a.rows(), a.cols());
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(a.at(i, j) as f32);
            }
        }
        Mat32 { rows, cols, data }
    }

    /// Promote conversion kernel: widen back to f64 (exact — every f32 is
    /// representable).
    pub fn promote(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

impl std::fmt::Debug for Mat32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mat32({}x{})", self.rows, self.cols)
    }
}

/// The f64 working copy of a demoted block: `promote(demote(a))`. Every
/// value is exactly f32-representable, so f64 arithmetic on the round-trip
/// copy is bitwise identical to promoting the stored f32 block on the fly
/// (the promote-on-pack GEMM path).
pub fn demote_roundtrip(a: &Mat) -> Mat {
    Mat32::demote(a.rf()).promote()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::gaussian_mat;

    #[test]
    fn precision_bytes_and_parse() {
        assert_eq!(Precision::F64.bytes(), 8);
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse("fp16"), None);
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::F32.to_string(), "f32");
    }

    #[test]
    fn roundtrip_error_within_f32_eps() {
        let a = gaussian_mat(23, 17, 42);
        let r = demote_roundtrip(&a);
        let eps = 0.5 * f32::EPSILON as f64;
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                let (x, y) = (a[(i, j)], r[(i, j)]);
                assert!(
                    (x - y).abs() <= eps * x.abs() + f32::MIN_POSITIVE as f64,
                    "entry ({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_is_idempotent() {
        // The working copy is exactly f32-representable: demoting it again
        // changes nothing (the bitwise-equality contract of the mixed path).
        let a = gaussian_mat(9, 11, 7);
        let once = demote_roundtrip(&a);
        let twice = demote_roundtrip(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn demote_promote_shapes_and_memory() {
        let a = gaussian_mat(6, 4, 3);
        let m32 = Mat32::demote(a.rf());
        assert_eq!((m32.rows(), m32.cols()), (6, 4));
        assert_eq!(m32.memory_bytes(), 6 * 4 * 4);
        assert_eq!(m32.promote().memory_bytes(), 6 * 4 * 8);
        assert_eq!(m32.at(2, 3), a[(2, 3)] as f32 as f64);
    }
}
