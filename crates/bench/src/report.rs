//! Unified benchmark-report serialization and the shared `--trace` sink.
//!
//! Every bench binary used to hand-roll its JSON with `format!` strings;
//! this module replaces those with one writer built on [`h2_obs::Json`],
//! so all `BENCH_*.json` files share a schema envelope:
//!
//! ```json
//! {
//!   "meta": {
//!     "schema": 2,
//!     "bench": "fabric",
//!     "git_rev": "abc123def456",
//!     "threads": 8,
//!     "timestamp_unix": 1754700000,
//!     "precisions": ["f64"],
//!     "device_models": { "a100_10TFs": { "flops_per_sec": 1e13, ... } }
//!   },
//!   "config": { ... },      // bench-specific knobs
//!   ...                      // bench-specific sections, insertion order
//! }
//! ```
//!
//! [`TraceSink`] is the matching observability hook: constructed from the
//! common `--trace <path>` flag, it hands out a shared
//! [`Tracer`](h2_obs::Tracer) for runtimes and fabrics to emit into and
//! writes a Chrome-trace JSON (Perfetto-loadable) on
//! [`TraceSink::finish`].

use crate::Args;
use h2_obs::{ChromeTrace, Json, Tracer};
use h2_runtime::{DeviceModel, Precision, Runtime};
use h2_sched::DeviceFabric;
use std::sync::Arc;

/// Bumped whenever the shared envelope changes shape.
pub const SCHEMA_VERSION: u64 = 2;

/// Best-effort short git revision of the working tree ("unknown" outside a
/// repo or without git on PATH — benches must run anywhere).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn timestamp_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn model_json(m: &DeviceModel) -> Json {
    Json::obj(vec![
        ("flops_per_sec", Json::Num(m.flops_per_sec)),
        ("link_bandwidth", Json::Num(m.link_bandwidth)),
        ("link_latency", Json::Num(m.link_latency)),
        ("launch_overhead", Json::Num(m.launch_overhead)),
        ("entry_cost", Json::Num(m.entry_cost)),
    ])
}

/// One benchmark report: a shared meta envelope plus bench-specific
/// sections appended in insertion order.
pub struct BenchReport {
    bench: String,
    precisions: Vec<Precision>,
    models: Vec<(String, DeviceModel)>,
    sections: Vec<(String, Json)>,
}

impl BenchReport {
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            precisions: Vec::new(),
            models: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Record the wire/storage precisions this run exercised.
    pub fn precisions(&mut self, precs: &[Precision]) -> &mut Self {
        self.precisions = precs.to_vec();
        self
    }

    /// Record a named device model used for makespan projections.
    pub fn device_model(&mut self, name: &str, model: &DeviceModel) -> &mut Self {
        self.models.push((name.to_string(), *model));
        self
    }

    /// Append a top-level section (configs, row arrays, headline scalars).
    pub fn section(&mut self, key: &str, value: Json) -> &mut Self {
        self.sections.push((key.to_string(), value));
        self
    }

    pub fn to_json(&self) -> Json {
        let mut meta = vec![
            ("schema", Json::u64(SCHEMA_VERSION)),
            ("bench", Json::str(self.bench.clone())),
            ("git_rev", Json::str(git_rev())),
            ("threads", Json::u64(rayon::current_num_threads() as u64)),
            ("timestamp_unix", Json::u64(timestamp_unix())),
        ];
        if !self.precisions.is_empty() {
            meta.push((
                "precisions",
                Json::Arr(
                    self.precisions
                        .iter()
                        .map(|p| Json::str(p.name()))
                        .collect(),
                ),
            ));
        }
        if !self.models.is_empty() {
            meta.push((
                "device_models",
                Json::Obj(
                    self.models
                        .iter()
                        .map(|(k, m)| (k.clone(), model_json(m)))
                        .collect(),
                ),
            ));
        }
        let mut top = vec![("meta".to_string(), Json::obj(meta))];
        top.extend(self.sections.iter().cloned());
        Json::Obj(top)
    }

    /// Pretty-print to `path` and announce it on stdout.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json().pretty()).expect("write benchmark json");
        println!("\nwrote {path}");
    }
}

/// The shared `--trace <path>` hook: one tracer that every runtime and
/// fabric in a bench can emit into, flushed to a Chrome-trace file at the
/// end of the run. Without the flag, every method is a no-op and the
/// traced code pays only a relaxed atomic load per hook site.
pub struct TraceSink {
    tracer: Option<Arc<Tracer>>,
    path: Option<String>,
}

impl TraceSink {
    /// Ring capacity: benches emit O(levels × devices) spans plus one
    /// instant per transfer; 1M events absorbs the largest default run.
    const CAPACITY: usize = 1 << 20;

    pub fn from_args(args: &Args) -> Self {
        let path = args.get_opt("trace");
        TraceSink {
            tracer: path.as_ref().map(|_| Tracer::new(Self::CAPACITY)),
            path,
        }
    }

    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.clone()
    }

    /// A parallel runtime with the sink's tracer attached (plain
    /// `Runtime::parallel()` when tracing is off).
    pub fn runtime(&self) -> Runtime {
        match self.tracer() {
            Some(t) => Runtime::parallel().with_tracer(t),
            None => Runtime::parallel(),
        }
    }

    /// Attach the sink's tracer to a fabric (no-op when tracing is off).
    pub fn attach(&self, fabric: &DeviceFabric) {
        if let Some(t) = self.tracer() {
            fabric.set_tracer(Some(t));
        }
    }

    /// Drain the recorded spans into a span-only Chrome trace at the
    /// `--trace` path. Benches with a fabric report to render should use
    /// [`h2_sched::export_chrome_trace_with_spans`] instead and pass the
    /// drained events.
    pub fn finish(&self) {
        let (Some(tracer), Some(path)) = (&self.tracer, &self.path) else {
            return;
        };
        let events = tracer.drain();
        let mut tr = ChromeTrace::new();
        tr.process_name(0, "host threads");
        tr.process_name(1, "devices");
        tr.add_span_events(&events, 0, 1);
        tr.write(path).expect("write chrome trace");
        println!("wrote {path} ({} trace events)", tr.len());
    }

    /// The `--trace` path, for benches that write a richer merged trace
    /// themselves.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}
