//! ACA-based H-matrix construction — the entry-evaluation route (a) of the
//! paper's §I (HLIBpro, hmglib): every admissible block of the strong
//! partition is compressed independently by adaptive cross approximation,
//! touching only `O((m+n)k)` of its entries.
//!
//! This gives the workspace a third, fully independent construction path
//! (besides sketching and proxy-ID), used for cross-validation and as the
//! baseline the "route (b)" sketching algorithms are compared against when
//! only entries — not a fast matvec — are available.

use crate::hmatrix::{HMatrix, LowRankBlock};
use h2_dense::{aca, EntryAccess, Mat};
use h2_tree::{ClusterTree, Partition};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Configuration of the ACA H-matrix constructor.
#[derive(Clone, Copy, Debug)]
pub struct AcaConfig {
    /// Per-block relative tolerance.
    pub tol: f64,
    /// Hard cap on per-block rank.
    pub max_rank: usize,
}

impl Default for AcaConfig {
    fn default() -> Self {
        AcaConfig {
            tol: 1e-8,
            max_rank: 256,
        }
    }
}

/// Statistics of an ACA construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcaStats {
    /// Entries of `K` evaluated across all low-rank blocks.
    pub lowrank_entries: usize,
    /// Entries evaluated for the dense near field.
    pub dense_entries: usize,
    /// Number of admissible blocks that hit the rank cap before converging.
    pub unconverged_blocks: usize,
}

/// Compress an operator into a (non-nested) H-matrix with per-block ACA.
pub fn aca_compress(
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    cfg: &AcaConfig,
) -> (HMatrix, AcaStats) {
    let mut h = HMatrix::new(tree.clone(), partition.clone());
    let lr_entries = AtomicUsize::new(0);
    let unconverged = AtomicUsize::new(0);

    // Admissible pairs at every level (unordered).
    let mut pairs = Vec::new();
    for s in 0..tree.nodes.len() {
        for &t in partition.far_of[s].iter().filter(|&&t| s <= t) {
            pairs.push((s, t));
        }
    }
    let blocks: Vec<((usize, usize), LowRankBlock)> = pairs
        .par_iter()
        .map(|&(s, t)| {
            let (sb, se) = tree.range(s);
            let (tb, te) = tree.range(t);
            let res = aca(
                se - sb,
                te - tb,
                |i, j| gen.entry(sb + i, tb + j),
                cfg.tol,
                cfg.max_rank,
            );
            lr_entries.fetch_add(res.entries_evaluated, Ordering::Relaxed);
            if !res.converged {
                unconverged.fetch_add(1, Ordering::Relaxed);
            }
            let k = res.rank();
            (
                (s, t),
                LowRankBlock {
                    u: res.u,
                    b: Mat::eye(k),
                    v: res.v,
                },
            )
        })
        .collect();
    for (key, blk) in blocks {
        h.lowrank.insert(key, blk);
    }

    // Dense near field, evaluated exactly.
    let mut dense_entries = 0usize;
    let mut near_pairs = Vec::new();
    for s in tree.level(tree.leaf_level()) {
        for &t in partition.near_of[s].iter().filter(|&&t| s <= t) {
            near_pairs.push((s, t));
        }
    }
    let dense_blocks: Vec<((usize, usize), Mat)> = near_pairs
        .par_iter()
        .map(|&(s, t)| {
            let (sb, se) = tree.range(s);
            let (tb, te) = tree.range(t);
            let rows: Vec<usize> = (sb..se).collect();
            let cols: Vec<usize> = (tb..te).collect();
            ((s, t), gen.block_mat(&rows, &cols))
        })
        .collect();
    for (key, blk) in dense_blocks {
        dense_entries += blk.rows() * blk.cols();
        h.dense.insert(key, blk);
    }

    let stats = AcaStats {
        lowrank_entries: lr_entries.into_inner(),
        dense_entries,
        unconverged_blocks: unconverged.into_inner(),
    };
    (h, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::relative_error_2;
    use h2_kernels::{ExponentialKernel, HelmholtzKernel, KernelMatrix};
    use h2_tree::Admissibility;

    fn problem(
        n: usize,
        seed: u64,
    ) -> (
        Arc<ClusterTree>,
        Arc<Partition>,
        KernelMatrix<ExponentialKernel>,
    ) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(
            part.top_far_level(&tree).is_some(),
            "test problem needs far pairs"
        );
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    #[test]
    fn aca_hmatrix_approximates_kernel() {
        let (tree, part, km) = problem(1500, 141);
        let (h, stats) = aca_compress(&km, tree, part, &AcaConfig::default());
        assert_eq!(stats.unconverged_blocks, 0, "all far blocks must converge");
        let e = relative_error_2(&km, &h, 20, 142);
        assert!(e < 1e-6, "ACA H-matrix rel err {e}");
    }

    #[test]
    fn aca_touches_fraction_of_far_entries() {
        // The η=0.7 partition admits *barely separated* blocks whose ranks
        // rival the 64-point leaf size, so entry savings in this regime are
        // real but modest (measured ≈ 55% of far entries evaluated). The
        // strong-savings regime — well-separated smooth blocks, where ACA
        // touches <25% of entries — is covered by h2_dense::aca's tests.
        let pts = h2_tree::uniform_cube(8000, 143);
        let tree = Arc::new(ClusterTree::build(&pts, 64));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let (_, stats) = aca_compress(
            &km,
            tree.clone(),
            part.clone(),
            &AcaConfig {
                tol: 1e-6,
                max_rank: 64,
            },
        );
        let mut far_total = 0usize;
        for s in 0..tree.nodes.len() {
            for &t in part.far_of[s].iter().filter(|&&t| s <= t) {
                far_total += tree.nodes[s].len() * tree.nodes[t].len();
            }
        }
        assert!(
            (stats.lowrank_entries as f64) < 0.8 * far_total as f64,
            "ACA evaluated {} of {} far entries",
            stats.lowrank_entries,
            far_total
        );
    }

    #[test]
    fn aca_helmholtz_accuracy() {
        let pts = h2_tree::uniform_cube(1200, 144);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(HelmholtzKernel::paper(1200), tree.points.clone());
        let (h, _) = aca_compress(
            &km,
            tree,
            part,
            &AcaConfig {
                tol: 1e-9,
                max_rank: 128,
            },
        );
        let e = relative_error_2(&km, &h, 20, 145);
        assert!(e < 1e-6, "ACA Helmholtz rel err {e}");
    }

    #[test]
    fn aca_agrees_with_sketching_construction() {
        // Cross-validation: two completely independent construction paths
        // must agree with each other to roughly their common tolerance.
        use h2_core::{sketch_construct, SketchConfig};
        use h2_runtime::Runtime;
        let (tree, part, km) = problem(1200, 146);
        let (h_aca, _) = aca_compress(
            &km,
            tree.clone(),
            part.clone(),
            &AcaConfig {
                tol: 1e-9,
                max_rank: 128,
            },
        );
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 96,
            ..Default::default()
        };
        let (h_sk, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
        let e = relative_error_2(&h_aca, &h_sk, 20, 147);
        assert!(e < 1e-6, "ACA vs sketching disagreement {e}");
    }

    #[test]
    fn rank_cap_reported_as_unconverged() {
        let (tree, part, km) = problem(2000, 148);
        let (_, stats) = aca_compress(
            &km,
            tree,
            part,
            &AcaConfig {
                tol: 1e-14,
                max_rank: 2,
            },
        );
        assert!(
            stats.unconverged_blocks > 0,
            "rank cap 2 must truncate some blocks"
        );
    }
}
