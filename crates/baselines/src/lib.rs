//! # h2-baselines
//!
//! The comparator algorithms of the paper's evaluation:
//!
//! * [`topdown_peel`] over a strong-admissibility partition — the
//!   ButterflyPACK-style sketched H construction of Levitt–Martinsson [23]
//!   with graph colouring (O(colors · d · log N) samples),
//! * [`hodlr_peel`] — the same peeling over a weak-admissibility partition:
//!   the HODLR route H2Opus's top-down algorithm takes, whose per-level
//!   ranks explode on 3-D geometry (the paper's 4386–18920 sample counts and
//!   OOM failures),
//! * [`hss_construct`] — Algorithm 1 run on a weak-admissibility partition,
//!   which *is* the Martinsson 2011 HSS construction the paper generalizes
//!   (Fig. 6(b) comparator),
//! * [`hodlr_compress`] — direct HODLR compression of a dense operator
//!   (Fig. 6(b) comparator).
//!
//! HODBF (butterfly-compressed HODLR) is **not** reproduced; a full
//! butterfly factorization is outside this reproduction's scope (see
//! DESIGN.md §2 and EXPERIMENTS.md).

pub mod aca;
pub mod hmatrix;
pub mod peel;

pub use aca::{aca_compress, AcaConfig, AcaStats};
pub use hmatrix::{HMatrix, LowRankBlock};
pub use peel::{topdown_peel, PeelConfig, PeelStats};

use h2_core::{sketch_construct, SketchConfig, SketchStats};
use h2_dense::{EntryAccess, LinOp};
use h2_matrix::H2Matrix;
use h2_runtime::Runtime;
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

/// HSS construction: Algorithm 1 on the weak-admissibility (HODLR-pattern)
/// partition. This is exactly the bottom-up sketching construction of
/// Martinsson 2011 that the paper extends to strong admissibility.
pub fn hss_construct(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    rt: &Runtime,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats) {
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    sketch_construct(sampler, gen, tree, part, rt, cfg)
}

/// HODLR-route top-down peeling: [`topdown_peel`] on the weak partition.
/// Reproduces the sample blow-up that the paper reports for H2Opus's
/// top-down construction on 3-D problems.
pub fn hodlr_peel(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    cfg: &PeelConfig,
) -> (HMatrix, PeelStats) {
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    topdown_peel(sampler, gen, tree, part, cfg)
}

/// Direct (non-sketched) HODLR compression of an operator with entry access:
/// every weak-admissible block is compressed independently by row/column IDs
/// of the explicitly evaluated block. Used for the frontal-matrix memory
/// comparison where the operator is a stored dense matrix.
pub fn hodlr_compress(gen: &dyn EntryAccess, tree: Arc<ClusterTree>, tol: f64) -> HMatrix {
    use h2_dense::cpqr::{row_id, Truncation};
    use rayon::prelude::*;
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let mut h = HMatrix::new(tree.clone(), part.clone());
    let mut pairs = Vec::new();
    for s in 0..tree.nodes.len() {
        for &t in part.far_of[s].iter().filter(|&&t| s <= t) {
            pairs.push((s, t));
        }
    }
    let blocks: Vec<((usize, usize), LowRankBlock)> = pairs
        .par_iter()
        .map(|&(s, t)| {
            let (sb, se) = tree.range(s);
            let (tb, te) = tree.range(t);
            let rows: Vec<usize> = (sb..se).collect();
            let cols: Vec<usize> = (tb..te).collect();
            let full = gen.block_mat(&rows, &cols);
            let rule = Truncation::Relative(tol);
            let rid = row_id(&full, rule);
            let skel_rows: Vec<usize> = rid.skel.iter().map(|&r| sb + r).collect();
            let cid = row_id(&full.transpose(), rule);
            let skel_cols: Vec<usize> = cid.skel.iter().map(|&c| tb + c).collect();
            let b = gen.block_mat(&skel_rows, &skel_cols);
            (
                (s, t),
                LowRankBlock {
                    u: rid.u,
                    b,
                    v: cid.u,
                },
            )
        })
        .collect();
    for (k, v) in blocks {
        h.lowrank.insert(k, v);
    }
    // Dense diagonal leaves.
    for s in tree.level(tree.leaf_level()) {
        let (sb, se) = tree.range(s);
        let rows: Vec<usize> = (sb..se).collect();
        h.dense.insert((s, s), gen.block_mat(&rows, &rows));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{relative_error_2, DenseOp, EntryAccess, Mat};
    use h2_kernels::{ExponentialKernel, KernelMatrix};

    #[test]
    fn hss_baseline_accurate_on_smooth_kernel() {
        let pts = h2_tree::uniform_cube(600, 130);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let km = KernelMatrix::new(ExponentialKernel { l: 3.0 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 64,
            max_rank: 256,
            ..Default::default()
        };
        let (hss, stats) = hss_construct(&km, &km, tree.clone(), &rt, &cfg);
        assert!(stats.total_samples >= 64);
        let e = relative_error_2(&km, &hss, 20, 131);
        assert!(e < 1e-6, "HSS rel err {e}");
    }

    #[test]
    fn hodlr_compress_dense_reconstructs() {
        // 1-D geometry: the setting where weak admissibility genuinely
        // compresses (for 3-D points its ranks are large — that is the whole
        // point of Fig. 6(b)).
        let pts: Vec<[f64; 3]> = (0..512).map(|i| [i as f64 / 512.0, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let dense = Mat::from_fn(512, 512, |i, j| km.entry(i, j));
        let op = DenseOp::new(dense.clone());
        let h = hodlr_compress(&op, tree.clone(), 1e-9);
        let e = relative_error_2(&op, &h, 20, 133);
        assert!(e < 1e-6, "HODLR rel err {e}");
        assert!(
            h.memory_bytes() < dense.memory_bytes(),
            "no compression achieved"
        );
    }

    #[test]
    fn hodlr_ranks_blow_up_in_3d_but_not_1d() {
        // The mechanism behind Fig. 6(b) and the H2Opus sample explosion:
        // weak-admissible blocks of 3-D kernels have much larger ranks than
        // 1-D ones at the same size and tolerance.
        let n = 512;
        let pts1d: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let pts3d = h2_tree::uniform_cube(n, 135);
        let rank_of = |pts: &[[f64; 3]]| {
            let tree = Arc::new(ClusterTree::build(pts, 32));
            let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
            let dense = Mat::from_fn(n, n, |i, j| km.entry(i, j));
            let op = DenseOp::new(dense);
            hodlr_compress(&op, tree, 1e-9).max_rank()
        };
        let r1 = rank_of(&pts1d);
        let r3 = rank_of(&pts3d);
        assert!(
            r3 > 3 * r1,
            "3-D HODLR rank {r3} should dwarf 1-D rank {r1}"
        );
    }

    /// The headline comparison of Fig. 5: bottom-up Algorithm 1 uses O(1)
    /// sample vectors while top-down peeling pays per level.
    #[test]
    fn bottom_up_uses_fewer_samples_than_peeling() {
        let pts = h2_tree::uniform_cube(1500, 134);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(h2_tree::Partition::build(
            &tree,
            h2_tree::Admissibility::Strong { eta: 0.7 },
        ));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let reference = h2_matrix::direct_construct(
            &km,
            tree.clone(),
            part.clone(),
            &h2_matrix::DirectConfig {
                tol: 1e-8,
                ..Default::default()
            },
        );

        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-4,
            initial_samples: 32,
            ..Default::default()
        };
        let (_, bu_stats) =
            sketch_construct(&reference, &km, tree.clone(), part.clone(), &rt, &cfg);

        let pcfg = PeelConfig {
            tol: 1e-4,
            ..Default::default()
        };
        let (_, td_stats) = topdown_peel(&reference, &km, tree.clone(), part, &pcfg);

        assert!(
            td_stats.total_samples > 2 * bu_stats.total_samples,
            "peeling {} should need well over bottom-up {}",
            td_stats.total_samples,
            bu_stats.total_samples
        );
    }
}
