//! Chrome trace-event JSON builder. The output loads directly in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: save the
//! file with a `.json` extension and open it in the viewer.
//!
//! Events use the documented trace-event phases: `"X"` complete events
//! (timelined slices with a duration), `"i"` instants, `"C"` counter
//! series, and `"M"` metadata records naming processes and threads.
//! Timestamps (`ts`) and durations (`dur`) are microseconds; `pid`/`tid`
//! pick the row. The exporters in `h2_sched::trace` map virtual devices
//! to one process ("fabric devices") with one thread row per device, so
//! the per-device timeline reads like a GPU stream timeline.

use crate::json::Json;
use crate::span::{ArgValue, Event, Track};
use std::io;
use std::path::Path;

/// Microseconds from nanoseconds, exact to the viewer's precision.
pub fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Accumulates trace events and serializes the `{"traceEvents": [...]}`
/// envelope.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

fn args_json(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(n) => Json::u64(*n),
                    ArgValue::F64(x) => Json::Num(*x),
                    ArgValue::Str(s) => Json::str(*s),
                };
                (k.to_string(), value)
            })
            .collect(),
    )
}

impl ChromeTrace {
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process row (`pid`) in the viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(0)),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ]));
    }

    /// Name a thread row (`pid`, `tid`) in the viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(tid)),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ]));
    }

    /// A complete (`"X"`) slice: `ts`/`dur` in microseconds.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Json,
    ) {
        self.events.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("X")),
            ("ts", Json::Num(ts_us)),
            ("dur", Json::Num(dur_us)),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(tid)),
            ("args", args),
        ]));
    }

    /// An instant (`"i"`) event, thread-scoped.
    pub fn instant(&mut self, pid: u64, tid: u64, cat: &str, name: &str, ts_us: f64, args: Json) {
        self.events.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("ts", Json::Num(ts_us)),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(tid)),
            ("args", args),
        ]));
    }

    /// A counter (`"C"`) sample: each series name becomes a stacked band.
    pub fn counter(&mut self, pid: u64, name: &str, ts_us: f64, series: Vec<(&str, f64)>) {
        self.events.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("ph", Json::str("C")),
            ("ts", Json::Num(ts_us)),
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(0)),
            (
                "args",
                Json::Obj(
                    series
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
        ]));
    }

    /// Render drained [`Tracer`](crate::span::Tracer) events. Thread-track
    /// events land on `(thread_pid, thread id)`, device-track events on
    /// `(device_pid, device index)`; parent span ids are preserved in
    /// `args.parent` so nesting survives the export.
    pub fn add_span_events(&mut self, events: &[Event], thread_pid: u64, device_pid: u64) {
        for e in events {
            let (pid, tid) = match e.track {
                Track::Thread(t) => (thread_pid, t),
                Track::Device(d) => (device_pid, d as u64),
            };
            let mut args = args_json(&e.args);
            if e.parent != 0 {
                if let Json::Obj(pairs) = &mut args {
                    pairs.push(("parent".to_string(), Json::u64(e.parent)));
                }
            }
            match e.dur_ns {
                Some(dur) => self.complete(
                    pid,
                    tid,
                    e.cat,
                    &e.name,
                    ns_to_us(e.start_ns),
                    ns_to_us(dur),
                    args,
                ),
                None => self.instant(pid, tid, e.cat, &e.name, ns_to_us(e.start_ns), args),
            }
        }
    }

    /// The `{"traceEvents": [...]}` envelope.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }

    /// Write the trace to `path` (compact single-line JSON).
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json().dump())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn exports_spans_with_device_and_thread_rows() {
        let tracer = Tracer::new(64);
        {
            let mut s = tracer.span("phase", "Sketch");
            s.arg("flops", ArgValue::F64(1.5e9));
            let _d = tracer.span_on_device("job", "chunk", 3);
        }
        tracer.instant("mark", "epoch close", vec![("bytes", ArgValue::U64(4096))]);
        let mut trace = ChromeTrace::new();
        trace.process_name(0, "host");
        trace.process_name(1, "fabric devices");
        trace.add_span_events(&tracer.drain(), 0, 1);
        let json = trace.to_json();
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 5);
        let dev = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("chunk"))
            .unwrap();
        assert_eq!(dev.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(dev.get("tid").unwrap().as_u64(), Some(3));
        assert_eq!(dev.get("ph").unwrap().as_str(), Some("X"));
        assert!(dev.get("args").unwrap().get("parent").is_some());
        let mark = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("epoch close"))
            .unwrap();
        assert_eq!(
            mark.get("args").unwrap().get("bytes").unwrap().as_u64(),
            Some(4096)
        );
        // Round-trips through the parser (what the CI validator does).
        let back = Json::parse(&json.dump()).unwrap();
        assert_eq!(
            back.get("traceEvents").unwrap().as_array().unwrap().len(),
            5
        );
    }
}
