//! # h2-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§V). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig4_partition` | Fig. 4(a,b): block partition statistics for η = 0.5 / 0.7 |
//! | `fig5_construction` | Fig. 5(a-c): construction time vs N — CPU / GPU-sim / top-down baselines with sample labels |
//! | `fig6a_memory` | Fig. 6(a): memory vs N for covariance + IE |
//! | `fig6b_frontal` | Fig. 6(b): frontal-matrix memory, H2 vs HSS vs HODLR |
//! | `fig7_breakdown` | Fig. 7: phase breakdown CPU vs GPU-sim |
//! | `table2_adaptive` | Table II: leaf size × sample block size trade-offs |
//!
//! Default sizes are scaled to a laptop-class container (the paper used an
//! 80 GB A100 + 64-core EPYC); every binary accepts `--sizes`/`--paper`
//! flags to run larger. The *shape* of each curve (who wins, scaling slopes,
//! sample-count growth) is the reproduction target, not absolute seconds.

use h2_dense::{DenseOp, EntryAccess, LinOp};
use h2_kernels::{ExponentialKernel, HelmholtzKernel, KernelMatrix};
use h2_matrix::{direct_construct, DirectConfig, H2Matrix};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::collections::HashMap;
use std::sync::Arc;

pub mod report;

pub use report::{git_rev, BenchReport, TraceSink, SCHEMA_VERSION};

/// Parsed `--key value` / `--flag` command-line options.
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].trim_start_matches('-').to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                map.insert(key, "true".to_string());
                i += 1;
            }
        }
        Args { map }
    }

    pub fn flag(&self, key: &str) -> bool {
        self.map.get(key).map(|v| v == "true").unwrap_or(false)
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The raw value of `--key <value>`, if present.
    pub fn get_opt(&self, key: &str) -> Option<String> {
        self.map.get(key).cloned()
    }

    /// Comma-separated list of sizes.
    pub fn sizes(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.map.get(key) {
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// Which test application (paper §V.A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// Exponential covariance, l = 0.2 (eq. 8).
    Covariance,
    /// Helmholtz volume IE, k = 3 (eq. 9).
    IntegralEquation,
    /// Covariance H2 updated with a rank-32 product.
    LowRankUpdate,
}

impl App {
    pub fn from_str(s: &str) -> Option<App> {
        match s {
            "cov" | "covariance" => Some(App::Covariance),
            "ie" | "helmholtz" => Some(App::IntegralEquation),
            "update" | "lowrank" => Some(App::LowRankUpdate),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            App::Covariance => "covariance",
            App::IntegralEquation => "ie",
            App::LowRankUpdate => "lowrank-update",
        }
    }
}

/// A fully-assembled test problem: geometry, partition, and the exact
/// kernel operator (entry access + exact O(N²d) matvec for ground truth).
pub struct Problem {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    pub kernel: KernelOp,
}

/// Either of the paper's two kernels behind one enum (object-safe plumbing
/// without generics in binaries).
pub enum KernelOp {
    Exp(KernelMatrix<ExponentialKernel>),
    Helm(KernelMatrix<HelmholtzKernel>),
}

impl LinOp for KernelOp {
    fn nrows(&self) -> usize {
        match self {
            KernelOp::Exp(k) => k.nrows(),
            KernelOp::Helm(k) => k.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: h2_dense::MatRef<'_>, y: h2_dense::MatMut<'_>) {
        match self {
            KernelOp::Exp(k) => k.apply(x, y),
            KernelOp::Helm(k) => k.apply(x, y),
        }
    }
}

impl EntryAccess for KernelOp {
    fn entry(&self, i: usize, j: usize) -> f64 {
        match self {
            KernelOp::Exp(k) => k.entry(i, j),
            KernelOp::Helm(k) => k.entry(i, j),
        }
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut h2_dense::MatMut<'_>) {
        match self {
            KernelOp::Exp(k) => k.block(rows, cols, out),
            KernelOp::Helm(k) => k.block(rows, cols, out),
        }
    }
}

/// Build a covariance or IE problem on uniform 3-D points (paper geometry).
pub fn build_problem(app: App, n: usize, leaf: usize, eta: f64, seed: u64) -> Problem {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta }));
    let kernel = match app {
        App::IntegralEquation => KernelOp::Helm(KernelMatrix::new(
            HelmholtzKernel::paper(n),
            tree.points.clone(),
        )),
        _ => KernelOp::Exp(KernelMatrix::new(
            ExponentialKernel::default(),
            tree.points.clone(),
        )),
    };
    Problem {
        tree,
        partition,
        kernel,
    }
}

/// Build the fast reference operator: an H2 matrix from the direct
/// (entry-based) constructor, whose O(N) matvec plays the role H2Opus's
/// matvec plays in the paper (the black-box `Kblk`).
pub fn reference_h2(problem: &Problem, tol: f64) -> H2Matrix {
    let cfg = DirectConfig {
        tol,
        ..Default::default()
    };
    direct_construct(
        &problem.kernel,
        problem.tree.clone(),
        problem.partition.clone(),
        &cfg,
    )
}

/// A dense front wrapped as an operator in tree order.
pub fn permuted_dense_op(front: &h2_dense::Mat, tree: &ClusterTree) -> DenseOp {
    let n = front.rows();
    DenseOp::new(h2_dense::Mat::from_fn(n, n, |i, j| {
        front[(tree.perm[i], tree.perm[j])]
    }))
}

/// GiB pretty-printer.
pub fn gib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0 * 1024.0)
}

/// MiB pretty-printer.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Print a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_parsing() {
        assert_eq!(App::from_str("cov"), Some(App::Covariance));
        assert_eq!(App::from_str("ie"), Some(App::IntegralEquation));
        assert_eq!(App::from_str("update"), Some(App::LowRankUpdate));
        assert_eq!(App::from_str("nope"), None);
    }

    #[test]
    fn problem_builds_both_kernels() {
        let p = build_problem(App::Covariance, 500, 32, 0.7, 1);
        assert_eq!(p.kernel.nrows(), 500);
        let q = build_problem(App::IntegralEquation, 400, 32, 0.7, 1);
        assert!(q.kernel.entry(0, 0) > 1.0, "IE diagonal self-term");
    }

    #[test]
    fn reference_operator_is_accurate() {
        let p = build_problem(App::Covariance, 2000, 32, 0.7, 2);
        let h2 = reference_h2(&p, 1e-9);
        let e = h2_dense::relative_error_2(&p.kernel, &h2, 15, 3);
        assert!(e < 1e-6, "reference rel err {e}");
    }
}
