//! Frontal-matrix compression — the paper's Fig. 6(b) pipeline:
//! extract the top-separator frontal matrix of a 3-D Poisson multifrontal
//! factorization and compare H2 (strong admissibility, Algorithm 1) against
//! the weak-admissibility formats HSS and HODLR.
//!
//! ```sh
//! cargo run --release --example frontal_compression
//! ```

use h2sketch::baselines::{hodlr_compress, hss_construct};
use h2sketch::dense::{relative_error_2, DenseOp, Mat};
use h2sketch::frontal::poisson_top_front;
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    // 16³ Poisson grid → 256-point top separator (a full grid plane).
    let grid_n = 16;
    let (front, pts) = poisson_top_front(grid_n, 64);
    let size = front.rows();
    println!(
        "extracted the top front of a {grid_n}^3 Poisson grid: {size} x {size} dense Schur complement"
    );

    // Cluster the separator points and permute the front into tree order.
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let permuted = Mat::from_fn(size, size, |i, j| front[(tree.perm[i], tree.perm[j])]);
    let op = DenseOp::new(permuted);

    let tol = 1e-6;
    let dense_mib = (size * size * 8) as f64 / (1 << 20) as f64;
    println!("dense front: {dense_mib:.2} MiB\n");

    // H2, strong admissibility (the paper's algorithm).
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol,
        initial_samples: 96,
        max_rank: 512,
        ..Default::default()
    };
    let (h2, h2_stats) = sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
    let h2_err = relative_error_2(&op, &h2, 15, 31);
    println!(
        "H2   (strong adm): {:.2} MiB, samples {}, rank range {:?}, rel err {h2_err:.2e}",
        h2.memory_bytes() as f64 / (1 << 20) as f64,
        h2_stats.total_samples,
        h2.rank_range()
    );

    // HSS (Algorithm 1 on the weak partition — Martinsson 2011).
    let rt2 = Runtime::parallel();
    let cfg_hss = SketchConfig {
        tol,
        initial_samples: 96,
        max_rank: 512,
        max_samples: 4096,
        ..Default::default()
    };
    let (hss, hss_stats) = hss_construct(&op, &op, tree.clone(), &rt2, &cfg_hss);
    let hss_err = relative_error_2(&op, &hss, 15, 32);
    println!(
        "HSS  (weak adm)  : {:.2} MiB, samples {}, rank range {:?}, rel err {hss_err:.2e}",
        hss.memory_bytes() as f64 / (1 << 20) as f64,
        hss_stats.total_samples,
        hss.rank_range()
    );

    // HODLR (direct per-block compression).
    let hodlr = hodlr_compress(&op, tree.clone(), tol);
    let hodlr_err = relative_error_2(&op, &hodlr, 15, 33);
    println!(
        "HODLR(weak adm)  : {:.2} MiB, max block rank {}, rel err {hodlr_err:.2e}",
        hodlr.memory_bytes() as f64 / (1 << 20) as f64,
        hodlr.max_rank()
    );

    println!(
        "\nThe weak-admissibility formats pay for the plane-separator geometry with larger ranks;\n\
         at paper scale (front sizes 2500-62500) the gap widens into the Fig. 6(b) separation.\n\
         Run `cargo run --release -p h2-bench --bin fig6b_frontal` for the full sweep."
    );
}
