//! Trace estimation on a compressed operator — the "trace estimation in
//! Bayesian optimization" workload from the paper's introduction, plus a
//! user-defined kernel showing how to plug custom physics into the library.
//!
//! ```sh
//! cargo run --release --example trace_estimation
//! ```

use h2sketch::dense::{hutchinson_trace, EntryAccess};
use h2sketch::kernels::{Kernel, KernelMatrix};
use h2sketch::matrix::{direct_construct, DirectConfig};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

/// A user-defined kernel: inverse multiquadric `1 / sqrt(r² + c²)`.
#[derive(Clone, Copy)]
struct InverseMultiquadric {
    c: f64,
}

impl Kernel for InverseMultiquadric {
    fn eval_r(&self, r: f64) -> f64 {
        1.0 / (r * r + self.c * self.c).sqrt()
    }

    fn diag(&self) -> f64 {
        1.0 / self.c
    }
}

fn main() {
    let n = 8192;
    let points = uniform_cube(n, 61);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));

    let kernel = KernelMatrix::new(InverseMultiquadric { c: 0.5 }, tree.points.clone());

    // Compress with the sketching construction (sampler = reference H2).
    let reference = direct_construct(
        &kernel,
        tree.clone(),
        partition.clone(),
        &DirectConfig {
            tol: 1e-9,
            ..Default::default()
        },
    );
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 128,
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(&reference, &kernel, tree.clone(), partition, &rt, &cfg);
    println!(
        "custom kernel compressed: {} samples, {:.1} MiB, ranks {:?}",
        stats.total_samples,
        h2.memory_bytes() as f64 / (1 << 20) as f64,
        h2.rank_range()
    );

    // Hutchinson trace through the O(N) matvec: tr(K) is exactly N·diag
    // for a radial kernel — a built-in ground truth.
    let exact = n as f64 * kernel.entry(0, 0);
    for probes in [8, 32, 128] {
        let est = hutchinson_trace(&h2, probes, 62);
        println!(
            "hutchinson trace, {probes:>4} probes: {est:>12.2} (exact {exact:.2}, rel dev {:.2e})",
            (est - exact).abs() / exact
        );
    }
    let est = hutchinson_trace(&h2, 128, 63);
    assert!((est - exact).abs() < 0.05 * exact, "trace estimate drifted");
}
