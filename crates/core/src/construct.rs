//! Algorithm 1 as a stream-generic engine: bottom-up sketching-based H2
//! construction with adaptive sampling, for symmetric *and* unsymmetric
//! matrices from one level-by-level loop.
//!
//! Inputs (paper §III): a hierarchical block partition, a black-box sampler
//! `Y = Kblk(Ω)` (with `Z = Kᵀblk(Ψ)` for the unsymmetric extension), an
//! entry evaluator for sub-blocks, a relative tolerance ε, and the sample
//! block size `d`. The construction proceeds level by level from the
//! leaves, driving one [`SketchStream`] per basis side:
//!
//! * the **row** stream `Y = K Ω`: its per-node local samples span the
//!   block row of the remaining admissible matrix; a row ID yields the row
//!   basis `U_τ` and row skeleton `Ĩ^r_τ`;
//! * the **column** stream `Z = Kᵀ Ψ` (unsymmetric only): spans the block
//!   column; its row ID yields `V_τ` and `Ĩ^c_τ`.
//!
//! Per level, each stream is advanced identically:
//!
//! 1. subtract the known contributions (dense blocks at the leaves, the
//!    previous level's coupling blocks above) with `batchedBSRGemm` — the
//!    column stream reads every block through the transposed lookup
//!    (`Kᵀ(I_s, I_t) = K(I_t, I_s)ᵀ`), which the side-generic
//!    `BlockStore::get_op` resolves for both storage layouts,
//! 2. test convergence per node via the QR diagonal of the local samples
//!    (lines 11/29) and, if needed, draw `d` fresh global samples per
//!    stream and sweep them up through the already-skeletonized levels
//!    (`updateSamples`),
//! 3. skeletonize with a batched row ID (lines 16/34) giving the side's
//!    leaf basis or stacked transfers `[E_{ν1}; E_{ν2}]`,
//! 4. shrink the samples to skeleton rows and compress the random inputs by
//!    the *opposite* side's basis (`Ω ← Vᵀ Ω`, `Ψ ← Uᵀ Ψ` — because an
//!    admissible block acts as `U_s B_{s,t} V_tᵀ`); for the symmetric
//!    one-stream instance the opposite side is the stream's own,
//! 5. evaluate the coupling blocks `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)` with
//!    `batchedGen` — per unordered pair when symmetric, per ordered pair
//!    otherwise.
//!
//! The symmetric construction is the degenerate one-stream instance
//! (`V = U`, shared skeletons): it executes exactly the seed symmetric
//! kernel sequence, so results are bitwise identical to the pre-unification
//! path. Every step runs as batched kernels on the [`Runtime`] and is
//! attributed to the Fig.-7 phase it belongs to.

use crate::config::{SketchConfig, SketchStats};
use h2_dense::cpqr::Truncation;
use h2_dense::{estimate_norm_2, EntryAccess, LinOp, Mat};
use h2_matrix::H2Matrix;
use h2_runtime::{
    batched_gen, batched_row_id, bsr_gemm_stream, gather_rows, gemm_at_x, hcat_batches,
    hint_bsr_fetches, qr_min_rdiag, rand_mat, shrink_rows, stack_children, BsrBlock, BsrPattern,
    GenBlock, Phase, Runtime, VarBatch,
};
use h2_tree::{ClusterTree, Partition};
use std::sync::Arc;
use std::time::Instant;

/// Which block store a BSR position reads from.
#[derive(Clone, Copy)]
enum BlockSource {
    Dense,
    Coupling,
}

/// Which sketch stream / basis side a computation serves. The row stream
/// multiplies blocks of `K` as stored; the column stream multiplies blocks
/// of `Kᵀ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    Row,
    Col,
}

impl Side {
    /// Seed perturbation separating the two streams' randomness.
    fn seed_salt(self) -> u64 {
        match self {
            Side::Row => 0,
            Side::Col => 0xA5A5_5A5A,
        }
    }

    /// Stream tag keying the pipelined fabric's prefetch hints.
    fn stream_tag(self) -> u8 {
        match self {
            Side::Row => 0,
            Side::Col => 1,
        }
    }
}

/// One sketch stream: a basis side plus its current per-node sample batches
/// (`y` — the sketched output samples, `omega` — the random inputs).
struct SketchStream {
    side: Side,
    y: VarBatch,
    omega: VarBatch,
}

/// The shared per-level BSR subtraction/stacking structure (identical for
/// every stream of a level).
struct LevelStructure {
    /// BSR subtraction pattern. Rows = leaf nodes (leaf level) or child
    /// nodes (inner levels).
    pattern: BsrPattern,
    /// Ordered `(row_node, col_node)` per BSR position.
    pairs: Vec<(usize, usize)>,
    source: BlockSource,
    /// For inner levels: per-parent local child indices (stacking map).
    /// Empty at the leaf level.
    children_local: Vec<Vec<usize>>,
}

/// Frozen per-level data used to sweep later sample batches up the tree.
struct LevelRecord {
    structure: LevelStructure,
    /// Node ids at this level, in level order.
    node_ids: Vec<usize>,
    /// Per stream (same order as the engine's stream vector): skeleton row
    /// positions into the stacked local samples.
    skels_local: Vec<Vec<Vec<usize>>>,
}

/// One sealed per-level construction checkpoint: the finished level's
/// identity plus the skeleton widths its bases committed into the
/// `H2Matrix`. Sealed right after the level's fabric accounting epoch
/// closes — and a device fail-stop is applied exactly at an epoch
/// boundary — so a topology change can only ever interrupt the *next*,
/// not-yet-sealed level. Recovery therefore verifies the sealed ledger
/// intact and replays the single in-flight level by simply running it on
/// the re-routed fabric: per-entry arithmetic is device-count-invariant,
/// so the replayed level (and the whole construction) stays bit-identical
/// to a fault-free run.
struct LevelCheckpoint {
    level: usize,
    /// Node ids of the sealed level (level order).
    node_ids: Vec<usize>,
    /// Committed skeleton width per node: row side, then (unsymmetric
    /// only) column side.
    skel_widths: Vec<Vec<usize>>,
}

impl LevelCheckpoint {
    fn seal(l: usize, node_ids: &[usize], h2: &H2Matrix, symmetric: bool) -> Self {
        let mut skel_widths = vec![node_ids.iter().map(|&id| h2.skel[id].len()).collect()];
        if !symmetric {
            skel_widths.push(node_ids.iter().map(|&id| h2.col_skel()[id].len()).collect());
        }
        LevelCheckpoint {
            level: l,
            node_ids: node_ids.to_vec(),
            skel_widths,
        }
    }

    /// Assert the sealed level's committed state is still what it was at
    /// seal time (nothing a later topology change may have clobbered).
    fn verify(&self, h2: &H2Matrix, symmetric: bool) {
        let fresh = LevelCheckpoint::seal(self.level, &self.node_ids, h2, symmetric);
        assert_eq!(
            self.skel_widths, fresh.skel_widths,
            "construct checkpoint L{} violated after reshard",
            self.level
        );
    }
}

/// Construct a symmetric H2 matrix by adaptive sketching (Algorithm 1).
///
/// The degenerate one-stream instance of the engine: `V = U`, one sample
/// stream, unordered block stores. `sampler` and `gen` view the matrix in
/// tree-permuted coordinates, as do all operators in this workspace.
pub fn sketch_construct(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    rt: &Runtime,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats) {
    sketch_construct_engine(sampler, gen, tree, partition, rt, cfg, true)
}

/// Construct an unsymmetric H2 matrix by adaptive sketching: the two-stream
/// instance with independent row/column bases and ordered block stores.
///
/// `sampler` must implement both `apply` and `apply_transpose`; `gen`
/// evaluates entries of the (possibly unsymmetric) matrix. Both view the
/// matrix in tree-permuted coordinates.
///
/// `SketchStats::total_samples` counts the columns of **each** stream; the
/// construction draws that many `Ω` and that many `Ψ` vectors.
pub fn sketch_construct_unsym(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    rt: &Runtime,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats) {
    assert_eq!(
        sampler.ncols(),
        sampler.nrows(),
        "only square matrices are supported"
    );
    sketch_construct_engine(sampler, gen, tree, partition, rt, cfg, false)
}

/// The stream-generic construction engine behind both entry points.
fn sketch_construct_engine(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    rt: &Runtime,
    cfg: &SketchConfig,
    symmetric: bool,
) -> (H2Matrix, SketchStats) {
    let t0 = Instant::now();
    let n = tree.npoints();
    assert_eq!(sampler.nrows(), n, "sampler size mismatch");
    let mut h2 = if symmetric {
        H2Matrix::new_shell(tree.clone(), partition.clone())
    } else {
        H2Matrix::new_shell_unsym(tree.clone(), partition.clone())
    };
    let mut stats = SketchStats::default();
    let leaf_level = tree.leaf_level();

    // ---- dense near-field blocks (batchedGen, line 8) ----
    // Symmetric: once per unordered pair. Unsymmetric: every ordered pair —
    // K(I_s, I_t) and K(I_t, I_s) are disjoint entry sets.
    rt.phase(Phase::EntryGen, || {
        let mut specs = Vec::new();
        let mut keys = Vec::new();
        for s in tree.level(leaf_level) {
            for &t in partition.near_of[s]
                .iter()
                .filter(|&&t| !symmetric || s <= t)
            {
                let (sb, se) = tree.range(s);
                let (tb, te) = tree.range(t);
                specs.push(GenBlock {
                    rows: (sb..se).collect(),
                    cols: (tb..te).collect(),
                });
                keys.push((s, t));
            }
        }
        let blocks = batched_gen(rt, gen, &specs);
        for ((s, t), b) in keys.into_iter().zip(blocks) {
            h2.dense.insert(s, t, b);
        }
    });

    // Entirely dense partition (tiny N): done.
    let Some(top) = partition.top_far_level(&tree) else {
        stats.elapsed = t0.elapsed();
        stats.capture_profile(rt.profile());
        return (h2, stats);
    };

    // ---- norm estimate backing the relative threshold (§III.B; power
    // iteration on KᵀK, so unsymmetry is handled) ----
    let norm_est = rt.phase(Phase::Misc, || {
        estimate_norm_2(sampler, cfg.norm_est_iters, cfg.seed ^ 0x5A5A_5A5A)
    });
    stats.norm_estimate = norm_est;
    let eps_abs = cfg.safety * cfg.tol * norm_est.max(f64::MIN_POSITIVE);

    // ---- storage demotion of the finished near-field (norm-aware) ----
    // Done before the level loop so the leaf-level BSR subtraction reads
    // exactly the values the stored operator will have: demotion error is
    // then *part of* the operator being sketched, not an unmodeled drift.
    if cfg.storage == h2_runtime::Precision::F32 {
        h2.dense.demote_pending(eps_abs);
    }

    // The column stream samples through `apply_transpose`, whose `LinOp`
    // default silently falls back to `apply` (correct only for symmetric
    // operators). The adjoint identity xᵀ(K y) = (Kᵀ x)ᵀ y holds for every
    // correct pair regardless of symmetry, so one cheap probe catches a
    // forgotten override before it corrupts the column bases.
    if !symmetric {
        rt.phase(Phase::Misc, || {
            let x = h2_dense::gaussian_mat(n, 1, cfg.seed ^ 0x0DD5_EED5);
            let y = h2_dense::gaussian_mat(n, 1, cfg.seed ^ 0x5EED_0DD5);
            let ky = sampler.apply_mat(&y);
            let mut ktx = Mat::zeros(n, 1);
            sampler.apply_transpose(x.rf(), ktx.rm());
            let a: f64 = (0..n).map(|i| x[(i, 0)] * ky[(i, 0)]).sum();
            let b: f64 = (0..n).map(|i| ktx[(i, 0)] * y[(i, 0)]).sum();
            let scale = norm_est.max(f64::MIN_POSITIVE) * x.norm_fro() * y.norm_fro();
            assert!(
                (a - b).abs() <= 1e-8 * scale,
                "sampler violates the adjoint identity (|xᵀKy - (Kᵀx)ᵀy| = {:.3e} vs scale {:.3e}); \
                 its LinOp::apply_transpose is likely the symmetric default",
                (a - b).abs(),
                scale
            );
        });
    }

    // ---- initial sampling (line 1), one batch per stream ----
    let d0 = cfg.initial_samples.min(cfg.max_samples).max(1);
    let leaf_ranges: Vec<(usize, usize)> =
        tree.level(leaf_level).map(|id| tree.range(id)).collect();
    let sides: &[Side] = if symmetric {
        &[Side::Row]
    } else {
        &[Side::Row, Side::Col]
    };
    let mut streams: Vec<SketchStream> = sides
        .iter()
        .map(|&side| {
            let (y, omega) = draw_global_samples(
                rt,
                sampler,
                n,
                d0,
                cfg.seed ^ side.seed_salt(),
                side,
                &leaf_ranges,
            );
            SketchStream { side, y, omega }
        })
        .collect();
    stats.total_samples = d0;

    let mut records: Vec<LevelRecord> = Vec::new();
    let mut round_seed = cfg.seed.wrapping_add(0x1234_5678);
    let mut checkpoints: Vec<LevelCheckpoint> = Vec::new();
    let mut reshard_seen = rt
        .shard_dispatch()
        .map(|d| d.reshard_version())
        .unwrap_or(0);

    // ---- bottom-up level loop ----
    for l in (top..=leaf_level).rev() {
        // Device-loss recovery boundary: a fail-stop lands exactly at an
        // epoch close, so a reshard-version change observed here means the
        // loss interrupted *this* (in-flight) level at worst. Verify the
        // sealed ledger, count the recovery, and proceed — running the
        // level on the re-routed fabric IS the bounded replay.
        if let Some(disp) = rt.shard_dispatch() {
            let v = disp.reshard_version();
            if v != reshard_seen {
                reshard_seen = v;
                for cp in &checkpoints {
                    cp.verify(&h2, symmetric);
                }
                stats.recoveries += 1;
                disp.note_recovery("construct level replay");
            }
        }
        let _level_span = rt.trace_span("construct", || format!("construct L{l}"));
        let node_ids: Vec<usize> = tree.level(l).collect();
        let is_leaf = l == leaf_level;
        let structure = level_structure(&tree, &partition, &node_ids, is_leaf);

        // Subtract known contributions and stack to this level's nodes
        // (lines 9 / 24+27), per stream.
        let mut locals: Vec<(VarBatch, VarBatch)> = streams
            .drain(..)
            .map(|s| advance_level(rt, &h2, &structure, s.side, s.y, s.omega))
            .collect();

        // ---- adaptive sampling loop (lines 11-14 / 29-32): every stream
        // must pass the per-node convergence test ----
        let mut level_rounds = 0usize;
        loop {
            let d_cur = if locals[0].0.count() > 0 {
                locals[0].0.cols_of(0)
            } else {
                0
            };
            if !cfg.adaptive || d_cur == 0 {
                break;
            }
            let eps_conv = eps_abs * (d_cur as f64).sqrt();
            let mut unconverged = false;
            let mut mins_per_stream = Vec::with_capacity(locals.len());
            for (yloc, _) in &locals {
                let mins = rt.phase(Phase::ConvergenceTest, || qr_min_rdiag(rt, yloc));
                mins_per_stream.push(mins);
            }
            for ((yloc, _), mins) in locals.iter().zip(&mins_per_stream) {
                unconverged |=
                    (0..yloc.count()).any(|i| d_cur < yloc.rows_of(i) && mins[i] > eps_conv);
            }
            if !unconverged || stats.total_samples + cfg.sample_block > cfg.max_samples {
                break;
            }
            // updateSamples: fresh global sketch per stream swept through the
            // frozen levels below, then advanced through this level.
            round_seed = round_seed.wrapping_add(0x9E37_79B9);
            for (idx, &side) in sides.iter().enumerate() {
                let (ny, nom) = sweep_new_samples(
                    rt,
                    sampler,
                    &h2,
                    &tree,
                    &records,
                    &leaf_ranges,
                    &structure,
                    side,
                    idx,
                    cfg.sample_block,
                    round_seed ^ side.seed_salt(),
                );
                let (yloc, omega_l) = &mut locals[idx];
                *yloc = rt.phase(Phase::Misc, || hcat_batches(rt, yloc, &ny));
                *omega_l = rt.phase(Phase::Misc, || hcat_batches(rt, omega_l, &nom));
            }
            stats.total_samples += cfg.sample_block;
            stats.rounds += 1;
            level_rounds += 1;
        }
        stats.rounds_per_level.push(level_rounds);

        // ---- batched row ID per stream (lines 16 / 34) ----
        let height = leaf_level - l;
        let eps_id =
            eps_abs * cfg.schedule.scale(height) * (locals[0].0.cols_of(0).max(1) as f64).sqrt();
        let mut skels_local: Vec<Vec<Vec<usize>>> = Vec::with_capacity(locals.len());
        for (idx, &side) in sides.iter().enumerate() {
            let (yloc, _) = &locals[idx];
            let mut id_res = rt.phase(Phase::Id, || {
                batched_row_id(rt, yloc, Truncation::Absolute(eps_id))
            });
            // Enforce the rank cap (rare; re-factor the offenders).
            for (i, r) in id_res.iter_mut().enumerate() {
                if r.rank() > cfg.max_rank {
                    *r = h2_dense::cpqr::row_id(&yloc.to_mat(i), Truncation::Rank(cfg.max_rank));
                }
            }

            // Store bases and global skeleton indices (lines 19 / 37).
            let mut side_skels: Vec<Vec<usize>> = Vec::with_capacity(node_ids.len());
            for (local, &id) in node_ids.iter().enumerate() {
                let r = &id_res[local];
                let stacked_rows: Vec<usize> = if is_leaf {
                    let (b, e) = tree.range(id);
                    (b..e).collect()
                } else {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    let skel = side_skel(&h2, side);
                    skel[c1].iter().chain(skel[c2].iter()).copied().collect()
                };
                let global: Vec<usize> = r.skel.iter().map(|&p| stacked_rows[p]).collect();
                set_side_basis(&mut h2, side, id, r.u.clone(), global);
                side_skels.push(r.skel.clone());
            }
            skels_local.push(side_skels);
        }

        // ---- prefetch the next level's Ω/Ψ fetches (pipelined fabric) ----
        // Everything the next processed level's `batchedBSRGemm` will fetch
        // is determined right here: its BSR rows are this level's nodes
        // (far-field adjacency), and the partner block heights are the
        // opposite side's just-computed ranks (`Ω ← VᵀΩ`, `Ψ ← UᵀΨ`). Emit
        // the descriptors now so the virtual copies run behind the coupling
        // generation and upsweep below instead of stalling the next level.
        if l > top && rt.shard_is_pipelined() {
            let d_cur = if locals[0].0.count() > 0 {
                locals[0].0.cols_of(0)
            } else {
                0
            };
            if d_cur > 0 {
                let adj: Vec<Vec<usize>> = node_ids
                    .iter()
                    .map(|&s| {
                        partition.far_of[s]
                            .iter()
                            .map(|&t| tree.local_index(t))
                            .collect()
                    })
                    .collect();
                for &side in sides {
                    let x_rows: Vec<usize> = {
                        let b = input_basis(&h2, side);
                        node_ids.iter().map(|&id| b[id].cols()).collect()
                    };
                    hint_bsr_fetches(rt, side.stream_tag(), &adj, &x_rows, d_cur);
                }
            }
        }

        // ---- coupling blocks at this level (batchedGen, line 41):
        // B_{s,t} = K(Ĩ^r_s, Ĩ^c_t) ----
        rt.phase(Phase::EntryGen, || {
            let mut specs = Vec::new();
            let mut keys = Vec::new();
            for &s in &node_ids {
                for &t in partition.far_of[s]
                    .iter()
                    .filter(|&&t| !symmetric || s <= t)
                {
                    specs.push(GenBlock {
                        rows: h2.skel[s].clone(),
                        cols: h2.col_skel()[t].clone(),
                    });
                    keys.push((s, t));
                }
            }
            let blocks = batched_gen(rt, gen, &specs);
            for ((s, t), b) in keys.into_iter().zip(blocks) {
                h2.coupling.insert(s, t, b);
            }
        });

        // ---- storage demotion as the level completes (norm-aware) ----
        // Bases and coupling blocks of this level narrow to f32 *before*
        // the upsweep and the next level's subtraction consume them, so
        // every later kernel reads the stored representation.
        if cfg.storage == h2_runtime::Precision::F32 {
            h2.demote_level(l, eps_abs, norm_est);
        }

        // ---- upsweep to the next level (lines 17-18 / 35-36): shrink each
        // stream's samples to its skeleton rows, compress its inputs by the
        // opposite side's basis (Ω ← VᵀΩ, Ψ ← UᵀΨ; V = U when symmetric) ----
        streams = {
            // Inputs the chained upsweep jobs borrow — the drained local
            // batches, the skeleton-ref views and the cloned bases — are
            // hoisted so they outlive the chain scope's closing barrier.
            let taken: Vec<(VarBatch, VarBatch)> = std::mem::take(&mut locals);
            let skel_refs_per: Vec<Vec<&[usize]>> = if l > top {
                skels_local
                    .iter()
                    .map(|sk| sk.iter().map(|v| v.as_slice()).collect())
                    .collect()
            } else {
                Vec::new()
            };
            let bases_per: Vec<Vec<Mat>> = if l > top {
                sides
                    .iter()
                    .map(|&side| {
                        let b = input_basis(&h2, side);
                        node_ids.iter().map(|&id| b[id].clone()).collect()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            // Both streams' shrink + compress kernels share one chain scope
            // on the pipelined fabric: one closing barrier instead of one
            // per kernel.
            rt.shard_chain_begin();
            let out: Vec<SketchStream> = sides
                .iter()
                .zip(taken.iter())
                .enumerate()
                .map(|(idx, (&side, (yloc, omega_l)))| {
                    if l > top {
                        let y = rt.phase(Phase::Upsweep, || {
                            shrink_rows(rt, yloc, &skel_refs_per[idx])
                        });
                        let omega =
                            rt.phase(Phase::Upsweep, || gemm_at_x(rt, &bases_per[idx], omega_l));
                        SketchStream { side, y, omega }
                    } else {
                        SketchStream {
                            side,
                            y: VarBatch::zeros_uniform_cols(Vec::new(), 0),
                            omega: VarBatch::zeros_uniform_cols(Vec::new(), 0),
                        }
                    }
                })
                .collect();
            rt.shard_chain_end();
            out
        };

        records.push(LevelRecord {
            structure,
            node_ids,
            skels_local,
        });

        // Close the device fabric's accounting epoch for this level (no-op
        // off the sharded backend): per-epoch stats then line up one-to-one
        // with the `level_specs` the multi-device simulator consumes.
        rt.shard_epoch(&format!("construct L{l}"));

        // Seal this level's checkpoint only after the epoch boundary — the
        // point where a scheduled device fail-stop takes effect — so the
        // ledger never contains a level the loss could have interrupted.
        if rt.shard_dispatch().is_some() {
            let rec = records.last().expect("level record just pushed");
            checkpoints.push(LevelCheckpoint::seal(l, &rec.node_ids, &h2, symmetric));
            stats.checkpoints += 1;
        }

        if l == top {
            break;
        }
    }

    stats.elapsed = t0.elapsed();
    stats.capture_profile(rt.profile());
    (h2, stats)
}

/// The basis side a stream's row IDs populate.
fn set_side_basis(h2: &mut H2Matrix, side: Side, id: usize, u: Mat, skel: Vec<usize>) {
    match side {
        Side::Row => {
            h2.basis[id] = u;
            h2.skel[id] = skel;
        }
        Side::Col => {
            let c = h2
                .col
                .as_mut()
                .expect("column side present for the column stream");
            c.basis[id] = u;
            c.skel[id] = skel;
        }
    }
}

/// The skeleton lists of a stream's own side.
fn side_skel(h2: &H2Matrix, side: Side) -> &[Vec<usize>] {
    match side {
        Side::Row => &h2.skel,
        Side::Col => h2.col_skel(),
    }
}

/// The basis compressing a stream's random inputs: the *opposite* side
/// (`Ω ← VᵀΩ`, `Ψ ← UᵀΨ`), which is the stream's own side when symmetric.
fn input_basis(h2: &H2Matrix, side: Side) -> &[Mat] {
    match side {
        Side::Row => h2.col_basis(),
        Side::Col => &h2.basis,
    }
}

/// Draw `d` fresh global samples for one stream: random inputs, the
/// side-matching sampler product (`K Ω` or `Kᵀ Ψ`), gathered to leaf rows.
fn draw_global_samples(
    rt: &Runtime,
    sampler: &dyn LinOp,
    n: usize,
    d: usize,
    seed: u64,
    side: Side,
    leaf_ranges: &[(usize, usize)],
) -> (VarBatch, VarBatch) {
    let omega = rt.phase(Phase::Rand, || rand_mat(rt, n, d, seed));
    let y = rt.phase(Phase::Sampling, || match side {
        Side::Row => sampler.apply_mat(&omega),
        Side::Col => {
            let mut z = Mat::zeros(n, d);
            sampler.apply_transpose(omega.rf(), z.rm());
            z
        }
    });
    let ob = rt.phase(Phase::Misc, || gather_rows(rt, &omega, leaf_ranges));
    let yb = rt.phase(Phase::Misc, || gather_rows(rt, &y, leaf_ranges));
    (yb, ob)
}

/// Build the shared BSR subtraction/stacking structure of a level.
fn level_structure(
    tree: &ClusterTree,
    partition: &Partition,
    node_ids: &[usize],
    is_leaf: bool,
) -> LevelStructure {
    if is_leaf {
        let adj: Vec<Vec<usize>> = node_ids
            .iter()
            .map(|&s| {
                partition.near_of[s]
                    .iter()
                    .map(|&t| tree.local_index(t))
                    .collect()
            })
            .collect();
        let mut pairs = Vec::new();
        for &s in node_ids {
            for &t in &partition.near_of[s] {
                pairs.push((s, t));
            }
        }
        LevelStructure {
            pattern: BsrPattern::from_rows(&adj),
            pairs,
            source: BlockSource::Dense,
            children_local: Vec::new(),
        }
    } else {
        let child_level = tree.level_of(node_ids[0]) + 1;
        let child_ids: Vec<usize> = tree.level(child_level).collect();
        let adj: Vec<Vec<usize>> = child_ids
            .iter()
            .map(|&s| {
                partition.far_of[s]
                    .iter()
                    .map(|&t| tree.local_index(t))
                    .collect()
            })
            .collect();
        let mut pairs = Vec::new();
        for &s in &child_ids {
            for &t in &partition.far_of[s] {
                pairs.push((s, t));
            }
        }
        let children_local: Vec<Vec<usize>> = node_ids
            .iter()
            .map(|&p| {
                let (c1, c2) = tree.nodes[p].children.unwrap();
                vec![tree.local_index(c1), tree.local_index(c2)]
            })
            .collect();
        LevelStructure {
            pattern: BsrPattern::from_rows(&adj),
            pairs,
            source: BlockSource::Coupling,
            children_local,
        }
    }
}

/// Resolve the BSR block references of a level against the H2 block stores.
///
/// The row stream multiplies blocks of `K` (ordered `(s, t)` lookups); the
/// column stream multiplies blocks of `Kᵀ` (`K(I_t, I_s)ᵀ`). Both the
/// unordered-symmetric and ordered-unsymmetric stores answer through
/// `BlockStore::get_op`.
fn resolve_blocks<'a>(
    h2: &'a H2Matrix,
    pairs: &[(usize, usize)],
    source: BlockSource,
    side: Side,
) -> Vec<BsrBlock<'a>> {
    let store = match source {
        BlockSource::Dense => &h2.dense,
        BlockSource::Coupling => &h2.coupling,
    };
    let transpose = side == Side::Col;
    pairs
        .iter()
        .map(|&(s, t)| {
            let (mat, transposed) = store.get_op(s, t, transpose).expect("level block");
            BsrBlock { mat, transposed }
        })
        .collect()
}

/// Subtract the level's known contributions from one stream's samples and
/// stack child entries onto this level's nodes. Consumes the child-level
/// batches and returns `(Y_loc, Ω_l)`.
fn advance_level(
    rt: &Runtime,
    h2: &H2Matrix,
    structure: &LevelStructure,
    side: Side,
    mut y: VarBatch,
    omega: VarBatch,
) -> (VarBatch, VarBatch) {
    // On the pipelined fabric the subtraction and the child stacking run in
    // one chain scope: each kernel's closing flush records a dependency
    // boundary instead of blocking, so the stacking jobs queue behind the
    // BSR jobs' completion tickets and a single barrier closes the scope.
    // Everything the queued jobs borrow — `blocks`, `y`, `omega` — must
    // stay alive until `shard_chain_end`, which is why `blocks` is hoisted
    // out of the phase closure.
    let blocks = resolve_blocks(h2, &structure.pairs, structure.source, side);
    rt.shard_chain_begin();
    rt.phase(Phase::BsrGemm, || {
        bsr_gemm_stream(
            rt,
            &structure.pattern,
            &blocks,
            &omega,
            &mut y,
            -1.0,
            side.stream_tag(),
        );
    });
    let stacked = if structure.children_local.is_empty() {
        None
    } else {
        Some(rt.phase(Phase::Misc, || {
            let yl = stack_children(rt, &y, &structure.children_local);
            let ol = stack_children(rt, &omega, &structure.children_local);
            (yl, ol)
        }))
    };
    rt.shard_chain_end();
    match stacked {
        None => (y, omega),
        Some(pair) => pair,
    }
}

/// `updateSamples` (lines 13/31) for one stream: draw a fresh global sketch
/// and sweep it through all completed levels (frozen bases and skeletons),
/// then advance it through the current level's subtraction/stacking.
#[allow(clippy::too_many_arguments)]
fn sweep_new_samples(
    rt: &Runtime,
    sampler: &dyn LinOp,
    h2: &H2Matrix,
    tree: &ClusterTree,
    records: &[LevelRecord],
    leaf_ranges: &[(usize, usize)],
    cur_structure: &LevelStructure,
    side: Side,
    stream_idx: usize,
    d: usize,
    seed: u64,
) -> (VarBatch, VarBatch) {
    let n = tree.npoints();
    let (mut yv, mut om) = draw_global_samples(rt, sampler, n, d, seed, side, leaf_ranges);

    for rec in records {
        // Subtract + stack with the recorded structure.
        let (yl, ol) = advance_level(rt, h2, &rec.structure, side, yv, om);
        // Apply the frozen skeletonization: shrink the samples by this
        // stream's skeletons, compress the inputs by the opposite side.
        let skel_refs: Vec<&[usize]> = rec.skels_local[stream_idx]
            .iter()
            .map(|v| v.as_slice())
            .collect();
        let bases: Vec<Mat> = {
            let b = input_basis(h2, side);
            rec.node_ids.iter().map(|&id| b[id].clone()).collect()
        };
        yv = rt.phase(Phase::Upsweep, || shrink_rows(rt, &yl, &skel_refs));
        om = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &bases, &ol));
    }

    // Advance through the current (not yet skeletonized) level.
    advance_level(rt, h2, cur_structure, side, yv, om)
}
