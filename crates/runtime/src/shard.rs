//! Device-sharding plumbing: the dispatch interface the batched kernels use
//! when the runtime executes on a [`crate::Backend::Sharded`] backend, plus
//! the explicit cross-device [`Transfer`] records of §IV.B.
//!
//! The paper's multi-GPU extension divides each level's batches across
//! devices in contiguous node chunks (§IV.A level-contiguous storage makes
//! that the natural decomposition) and communicates only at two points: the
//! `batchedBSRGemm` fetch of off-device partner inputs `Ω_b`, and the
//! line-24 child stacking when a sibling pair straddles a chunk boundary.
//! This module defines:
//!
//! * [`ShardDispatch`] — the object-safe interface a device fabric
//!   implements (the real fabric of worker threads lives in the `h2_sched`
//!   crate; this crate only needs to *drive* it). The batched kernels in
//!   [`crate::ops`] and [`crate::bsr`] shard their per-entry work through
//!   it and account modeled work/traffic with the *same formulas* as the
//!   [`crate::multidev`] simulator, which is what makes measured and
//!   simulated totals directly comparable;
//! * [`Transfer`] — one explicit cross-device copy (what a real multi-GPU
//!   build would issue as a peer-to-peer `cudaMemcpyAsync`);
//! * [`chunk_bounds`] — the contiguous chunk decomposition consistent with
//!   [`crate::multidev::owner`].

use std::sync::Arc;

/// Why a cross-device copy happened (the §IV.B communication taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// `batchedBSRGemm` fetching the input block `Ω_b` (or `Ψ_b` for the
    /// column stream) of an off-device partner.
    OmegaFetch,
    /// Line-24 child stacking across a chunk boundary (one sibling's
    /// samples/inputs gathered onto the parent's device).
    ChildGather,
    /// Matvec downsweep/reduction traffic: a device reading a parent's
    /// `ŷ` partial sum owned by another device.
    PartialSum,
}

impl TransferKind {
    pub fn name(self) -> &'static str {
        match self {
            TransferKind::OmegaFetch => "omega-fetch",
            TransferKind::ChildGather => "child-gather",
            TransferKind::PartialSum => "partial-sum",
        }
    }
}

/// One explicit cross-device copy.
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// Device the data is resident on.
    pub src: usize,
    /// Device that needs it.
    pub dst: usize,
    pub bytes: u64,
    pub kind: TransferKind,
}

/// A unit of work bound for one virtual device's worker thread. Borrows are
/// allowed because [`ShardDispatch::run`] blocks until every job completes.
pub type ShardJob<'a> = Box<dyn FnOnce() + Send + 'a>;

/// The interface of a device fabric: N virtual devices, each with a worker
/// thread, a memory arena and a work/traffic account. Implemented by
/// `h2_sched::DeviceFabric`; consumed by the batched kernels.
pub trait ShardDispatch: Send + Sync {
    /// Number of virtual devices.
    fn devices(&self) -> usize;

    /// Execute `jobs[d]` on device `d`'s worker thread (at most
    /// [`ShardDispatch::devices`] jobs) and block until all complete.
    fn run<'a>(&self, jobs: Vec<ShardJob<'a>>);

    /// Enqueue an explicit cross-device transfer on the fabric's queue.
    fn push_transfer(&self, t: Transfer);

    /// Attribute `flops` of modeled batched-kernel work to device `dev`
    /// (the simulator's flop formulas, so totals are comparable).
    fn add_flops(&self, dev: usize, flops: f64);

    /// Attribute `entries` of `batchedGen` entry evaluations to device
    /// `dev` (converted to flop-equivalents by `DeviceModel::entry_cost`).
    fn add_gen_entries(&self, dev: usize, entries: f64);

    /// Record `n` kernel launches on device `dev`.
    fn add_launches(&self, dev: usize, n: usize);

    /// Charge `bytes` of workspace to device `dev`'s arena (freed at the
    /// next epoch boundary, mirroring the per-level single allocation).
    fn arena_alloc(&self, dev: usize, bytes: usize);

    /// Close the current accounting epoch (one construction level / matvec
    /// phase) under `label`, snapshotting per-device counters.
    fn epoch(&self, label: &str);
}

/// Contiguous per-device chunk bounds for `n` items over `devices` devices:
/// device `d` owns items `bounds[d]..bounds[d + 1]`. Consistent with
/// [`crate::multidev::owner`]: `owner(i, n, devices) == d` exactly for `i`
/// in that range.
pub fn chunk_bounds(n: usize, devices: usize) -> Vec<usize> {
    let d = devices.max(1);
    if n == 0 {
        return vec![0; d + 1];
    }
    if d == 1 {
        return vec![0, n];
    }
    (0..=d).map(|dev| (dev * n).div_ceil(d)).collect()
}

/// Shorthand used by the kernels: the dispatcher when the runtime is
/// sharded.
pub type SharedDispatch = Arc<dyn ShardDispatch>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidev::owner;

    #[test]
    fn chunk_bounds_agree_with_owner() {
        for &(n, d) in &[(10usize, 3usize), (7, 7), (2, 7), (0, 4), (16, 1), (5, 8)] {
            let b = chunk_bounds(n, d);
            assert_eq!(b.len(), d + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[d], n);
            for dev in 0..d {
                assert!(b[dev] <= b[dev + 1], "bounds must be monotone");
                for i in b[dev]..b[dev + 1] {
                    assert_eq!(owner(i, n, d), dev, "item {i} of {n} on {d} devices");
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_balanced_within_one() {
        let b = chunk_bounds(10, 3);
        let sizes: Vec<usize> = (0..3).map(|d| b[d + 1] - b[d]).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }
}
