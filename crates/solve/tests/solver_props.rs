//! Property tests for the solver layer: Krylov methods against dense LU
//! ground truth on random well-conditioned systems, and ULV structural
//! invariants across random HSS instances.

use h2_dense::{gaussian_mat, lu_factor, matmul, DenseOp, Mat, Op};
use h2_solve::{bicgstab, gmres, pcg, DiagJacobi, Identity};
use proptest::prelude::*;

fn spd_system(n: usize, seed: u64) -> (Mat, Vec<f64>) {
    let g = gaussian_mat(n, n, seed);
    let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let b: Vec<f64> = (0..n)
        .map(|i| ((seed + i as u64) as f64 * 0.17).sin())
        .collect();
    (a, b)
}

fn unsym_system(n: usize, seed: u64) -> (Mat, Vec<f64>) {
    let mut a = gaussian_mat(n, n, seed);
    for i in 0..n {
        a[(i, i)] += 4.0 * (n as f64).sqrt();
    }
    let b: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((seed + i as u64) as f64 * 0.29).cos())
        .collect();
    (a, b)
}

fn lu_solution(a: &Mat, b: &[f64]) -> Vec<f64> {
    let bm = Mat::from_vec(b.len(), 1, b.to_vec());
    lu_factor(a.clone()).unwrap().solve(&bm).as_slice().to_vec()
}

fn max_diff(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CG solution matches LU on random SPD systems.
    #[test]
    fn cg_matches_lu(n in 5usize..40, seed in 0u64..500) {
        let (a, b) = spd_system(n, seed);
        let want = lu_solution(&a, &b);
        let op = DenseOp::new(a);
        let res = pcg(&op, &Identity { n }, &b, 10 * n + 50, 1e-12);
        prop_assert!(res.converged, "residual {}", res.relative_residual);
        let scale = want.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-10);
        prop_assert!(max_diff(&res.x, &want) < 1e-7 * scale);
    }

    /// GMRES matches LU on random diagonally-dominant unsymmetric systems,
    /// with and without Jacobi preconditioning.
    #[test]
    fn gmres_matches_lu(n in 5usize..40, seed in 0u64..500, restart in 5usize..40) {
        let (a, b) = unsym_system(n, seed);
        let want = lu_solution(&a, &b);
        let op = DenseOp::new(a);
        for m in [&Identity { n } as &dyn h2_solve::Preconditioner,
                  &DiagJacobi::new(&op, n)] {
            let res = gmres(&op, m, &b, restart, 40 * n + 100, 1e-12);
            prop_assert!(res.converged, "residual {}", res.relative_residual);
            let scale = want.iter().fold(0.0f64, |mm, &v| mm.max(v.abs())).max(1e-10);
            prop_assert!(max_diff(&res.x, &want) < 1e-6 * scale);
        }
    }

    /// BiCGStab matches LU on the same family.
    #[test]
    fn bicgstab_matches_lu(n in 5usize..40, seed in 0u64..500) {
        let (a, b) = unsym_system(n, seed);
        let want = lu_solution(&a, &b);
        let op = DenseOp::new(a);
        let res = bicgstab(&op, &Identity { n }, &b, 40 * n + 100, 1e-12);
        prop_assert!(res.converged, "residual {}", res.relative_residual);
        let scale = want.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-10);
        prop_assert!(max_diff(&res.x, &want) < 1e-6 * scale);
    }

    /// The residual history reported by CG is consistent: its last recorded
    /// value is (close to) the converged relative residual.
    #[test]
    fn cg_history_consistent(n in 5usize..30, seed in 0u64..200) {
        let (a, b) = spd_system(n, seed);
        let op = DenseOp::new(a);
        let res = pcg(&op, &Identity { n }, &b, 10 * n + 50, 1e-10);
        prop_assert!(!res.history.is_empty());
        let last = *res.history.last().unwrap();
        prop_assert!(last <= 1e-9 || !res.converged,
            "history end {last} vs converged {}", res.converged);
    }
}

// ---------------------------------------------------------------- ULV

mod ulv_props {
    use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
    use h2_dense::{gaussian_mat, lu_factor};
    use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
    use h2_runtime::Runtime;
    use h2_solve::{UlvFactor, UlvSchedule};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// ULV solves the represented (shifted) HSS system to near machine
        /// precision across random sizes, leaf sizes, and correlation
        /// lengths.
        #[test]
        fn ulv_residual_machine_precision(
            n in 64usize..400,
            leaf in 8usize..48,
            l in 0.05f64..2.0,
            seed in 0u64..100,
        ) {
            let pts: Vec<[f64; 3]> =
                (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
            let tree = Arc::new(ClusterTree::build(&pts, leaf));
            let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
            let km = KernelMatrix::new(ExponentialKernel { l }, tree.points.clone());
            let rt = Runtime::sequential();
            let cfg = SketchConfig {
                tol: 1e-9,
                initial_samples: 48,
                max_rank: 96,
                seed,
                ..Default::default()
            };
            let (mut hss, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
            for i in 0..hss.dense.pairs.len() {
                let (s, t) = hss.dense.pairs[i];
                if s == t {
                    let blk = &mut hss.dense.blocks[i];
                    for j in 0..blk.rows() {
                        blk[(j, j)] += 2.0;
                    }
                }
            }
            let ulv = UlvFactor::new(&hss).unwrap();
            let b = gaussian_mat(n, 2, seed ^ 0xF00D);
            let x = ulv.solve(&b);
            let mut r = hss.apply_permuted_mat(&x);
            r.axpy(-1.0, &b);
            let rel = r.norm_fro() / b.norm_fro();
            prop_assert!(rel < 1e-9, "ULV residual {rel} at n={n} leaf={leaf} l={l}");
        }

        /// The LU-flavored (unsymmetric) ULV solves random weak-admissibility
        /// two-stream instances to near machine precision against a dense LU
        /// of the *extracted* compressed operator, and the batched per-level
        /// elimination stays within 1e-13 of the per-node reference.
        #[test]
        fn unsym_ulv_matches_dense_lu(
            n in 96usize..320,
            leaf in 16usize..48,
            seed in 0u64..100,
        ) {
            let pts: Vec<[f64; 3]> =
                (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
            let tree = Arc::new(ClusterTree::build(&pts, leaf));
            let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
            let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
            let rt = Runtime::sequential();
            let cfg = SketchConfig {
                tol: 1e-10,
                initial_samples: 48,
                max_rank: 96,
                seed,
                ..Default::default()
            };
            let (mut hss, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
            prop_assert!(!hss.is_symmetric());
            for i in 0..hss.dense.pairs.len() {
                let (s, t) = hss.dense.pairs[i];
                if s == t {
                    let blk = &mut hss.dense.blocks[i];
                    for j in 0..blk.rows() {
                        blk[(j, j)] += 3.0;
                    }
                }
            }
            let ulv = UlvFactor::new(&hss).unwrap();
            let b = gaussian_mat(n, 2, seed ^ 0xBEEF);
            let x = ulv.solve(&b);
            // Exactness on the compressed operator: dense LU of extraction.
            let dense = hss.to_dense();
            let want = lu_factor(dense).unwrap().solve(&b);
            let mut d = x.clone();
            d.axpy(-1.0, &want);
            let rel = d.norm_fro() / want.norm_fro().max(1e-300);
            prop_assert!(rel < 1e-12, "unsym ULV vs dense LU rel {rel} at n={n} leaf={leaf}");
            // Batched and per-node schedules agree.
            let pn = UlvFactor::with_schedule(&hss, UlvSchedule::PerNode, &rt).unwrap();
            let xp = pn.solve(&b);
            let mut dd = x;
            dd.axpy(-1.0, &xp);
            prop_assert!(dd.norm_fro() <= 1e-13 * xp.norm_fro().max(1e-300));
        }

        /// ULV of an f32-storage matrix is the exact factorization of the
        /// stored (demoted) operator: solve residuals against the
        /// represented system stay at machine precision even though the
        /// loose tolerance makes the norm-aware rule demote aggressively.
        #[test]
        fn ulv_exact_on_f32_storage(
            n in 96usize..320,
            leaf in 16usize..48,
            seed in 0u64..100,
        ) {
            let pts: Vec<[f64; 3]> =
                (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
            let tree = Arc::new(ClusterTree::build(&pts, leaf));
            let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
            let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
            let rt = Runtime::sequential();
            let cfg = SketchConfig {
                tol: 1e-4,
                initial_samples: 48,
                max_rank: 96,
                seed,
                storage: h2_runtime::Precision::F32,
                ..Default::default()
            };
            let (mut hss, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
            prop_assert!(
                hss.dense.demoted_count() > 0,
                "loose tolerance must demote the near field"
            );
            for i in 0..hss.dense.pairs.len() {
                let (s, t) = hss.dense.pairs[i];
                if s == t {
                    let blk = &mut hss.dense.blocks[i];
                    for j in 0..blk.rows() {
                        blk[(j, j)] += 2.0;
                    }
                    // Keep the f32 storage coherent with the shifted
                    // working copy.
                    hss.dense.resync_demoted(i);
                }
            }
            let ulv = UlvFactor::new(&hss).unwrap();
            let b = gaussian_mat(n, 2, seed ^ 0xCAFE);
            let x = ulv.solve(&b);
            let mut r = hss.apply_permuted_mat(&x);
            r.axpy(-1.0, &b);
            let rel = r.norm_fro() / b.norm_fro();
            prop_assert!(rel < 1e-9, "f32-storage ULV residual {rel} at n={n} leaf={leaf}");
        }
    }
}
