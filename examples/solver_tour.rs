//! Solving linear systems with compressed operators — a tour of h2-solve.
//!
//! The paper motivates H2 construction with fast downstream arithmetic
//! (multifrontal solvers, Schur-complement updates) and names H2 inversion
//! as its follow-up work. This example covers the solver layer built on the
//! construction:
//!
//! 1. block-Jacobi-preconditioned CG on a strongly-admissible H2 covariance
//!    operator,
//! 2. a ULV direct factorization of a weak-admissibility (HSS) compression,
//! 3. that same (loose) ULV used as a *preconditioner* for CG on the exact
//!    operator,
//! 4. a Woodbury solve for a low-rank-updated operator.
//!
//! ```sh
//! cargo run --release --example solver_tour
//! ```

use h2sketch::dense::{DenseOp, EntryAccess, Mat};
use h2sketch::kernels::{ExponentialKernel, KernelMatrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::solve::{pcg, woodbury_solve, BlockJacobi, Identity, UlvFactor};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    // ---------------------------------------------------------------
    // 1. PCG on a strong-admissibility H2 operator (3-D covariance).
    // ---------------------------------------------------------------
    let n = 4096;
    let points = uniform_cube(n, 99);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-8,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);

    let b: Vec<f64> = (0..n).map(|i| (0.01 * i as f64).sin()).collect();
    let plain = pcg(&h2, &Identity { n }, &b, 500, 1e-8);
    let bj = BlockJacobi::from_h2(&h2).expect("diagonal blocks nonsingular");
    let prec = pcg(&h2, &bj, &b, 500, 1e-8);
    println!("== PCG on H2 covariance (N = {n}) ==");
    println!(
        "  identity precond : {:3} iterations, residual {:.2e}",
        plain.iterations, plain.relative_residual
    );
    println!(
        "  block-Jacobi     : {:3} iterations, residual {:.2e}",
        prec.iterations, prec.relative_residual
    );

    // ---------------------------------------------------------------
    // 2. ULV direct solve of an HSS (weak-admissibility) compression.
    //    1-D geometry: the setting where weak admissibility compresses.
    // ---------------------------------------------------------------
    let n1 = 4096;
    let pts1: Vec<[f64; 3]> = (0..n1).map(|i| [i as f64 / n1 as f64, 0.0, 0.0]).collect();
    let tree1 = Arc::new(ClusterTree::build(&pts1, 64));
    let part1 = Arc::new(Partition::build(&tree1, Admissibility::Weak));
    let km1 = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree1.points.clone());
    let cfg1 = SketchConfig {
        tol: 1e-10,
        initial_samples: 64,
        max_rank: 128,
        ..Default::default()
    };
    let (mut hss, _) = sketch_construct(&km1, &km1, tree1.clone(), part1.clone(), &rt, &cfg1);
    // Shift the diagonal (K + 2I): comfortably nonsingular SPD system.
    for i in 0..hss.dense.pairs.len() {
        let (s, t) = hss.dense.pairs[i];
        if s == t {
            let blk = &mut hss.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 2.0;
            }
        }
    }
    let t0 = std::time::Instant::now();
    let ulv = UlvFactor::new(&hss).expect("ULV factorization");
    let t_factor = t0.elapsed();
    let bm = Mat::from_fn(n1, 1, |i, _| (0.02 * i as f64).cos());
    let t1 = std::time::Instant::now();
    let x = ulv.solve(&bm);
    let t_solve = t1.elapsed();
    let mut r = hss.apply_permuted_mat(&x);
    r.axpy(-1.0, &bm);
    println!("\n== ULV direct solve of HSS (N = {n1}) ==");
    println!(
        "  factor: {:.1} ms, solve: {:.2} ms, root system: {}",
        t_factor.as_secs_f64() * 1e3,
        t_solve.as_secs_f64() * 1e3,
        ulv.root_size()
    );
    println!(
        "  representation residual: {:.2e}",
        r.norm_fro() / bm.norm_fro()
    );

    // ---------------------------------------------------------------
    // 3. Loose ULV as a preconditioner for the exact operator.
    // ---------------------------------------------------------------
    let n2 = 1024;
    let pts2: Vec<[f64; 3]> = (0..n2).map(|i| [i as f64 / n2 as f64, 0.0, 0.0]).collect();
    let tree2 = Arc::new(ClusterTree::build(&pts2, 32));
    let part2 = Arc::new(Partition::build(&tree2, Admissibility::Weak));
    let km2 = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree2.points.clone());
    let mut dense = Mat::from_fn(n2, n2, |i, j| km2.entry(i, j));
    for i in 0..n2 {
        dense[(i, i)] += 0.1;
    }
    let exact = DenseOp::new(dense);
    let cfg2 = SketchConfig {
        tol: 1e-4,
        initial_samples: 48,
        ..Default::default()
    };
    let (hss2, _) = sketch_construct(&exact, &exact, tree2, part2, &rt, &cfg2);
    let ulv2 = UlvFactor::new(&hss2).expect("ULV");
    let b2: Vec<f64> = (0..n2).map(|i| 1.0 + (0.03 * i as f64).sin()).collect();
    let it_plain = pcg(&exact, &Identity { n: n2 }, &b2, 1000, 1e-10);
    let it_prec = pcg(&exact, &ulv2, &b2, 1000, 1e-10);
    println!("\n== Loose HSS+ULV as preconditioner (N = {n2}, mildly regularized) ==");
    println!("  plain CG  : {:4} iterations", it_plain.iterations);
    println!(
        "  ULV-CG    : {:4} iterations, residual {:.2e}",
        it_prec.iterations, it_prec.relative_residual
    );

    // ---------------------------------------------------------------
    // 4. Woodbury solve for a low-rank-updated operator.
    // ---------------------------------------------------------------
    let p = h2sketch::dense::gaussian_mat(n1, 8, 7);
    let mut pscaled = p;
    pscaled.scale(0.05);
    let solve_a = |rhs: h2sketch::dense::MatRef<'_>, mut out: h2sketch::dense::MatMut<'_>| {
        out.copy_from(ulv.solve(&rhs.to_mat()).rf())
    };
    let xw = woodbury_solve(solve_a, &pscaled, &pscaled, &bm).expect("capacitance nonsingular");
    // Residual against (K_H2 + P Pᵀ).
    let mut rw = hss.apply_permuted_mat(&xw);
    let ptx = h2sketch::dense::matmul(
        h2sketch::dense::Op::Trans,
        h2sketch::dense::Op::NoTrans,
        pscaled.rf(),
        xw.rf(),
    );
    h2sketch::dense::gemm(
        h2sketch::dense::Op::NoTrans,
        h2sketch::dense::Op::NoTrans,
        1.0,
        pscaled.rf(),
        ptx.rf(),
        1.0,
        rw.rm(),
    );
    rw.axpy(-1.0, &bm);
    println!("\n== Woodbury solve of (K + P Pᵀ) x = b, rank-8 update ==");
    println!("  residual: {:.2e}", rw.norm_fro() / bm.norm_fro());
    println!("\nOK");
}
