//! Column-major dense matrix storage and lightweight views.
//!
//! All linear algebra in the workspace is built on three types:
//! [`Mat`] (owning), [`MatRef`] (borrowed view) and [`MatMut`] (mutable
//! borrowed view). Views carry an explicit leading dimension `ld` so that
//! sub-blocks of a larger allocation (e.g. a batched workspace from
//! `h2-runtime`) can be addressed without copying, exactly like BLAS/LAPACK
//! routines address sub-matrices.

use std::fmt;

/// An owning, column-major, `f64` matrix with `ld == rows`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Immutable column-major view with explicit leading dimension.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a [f64],
}

/// Mutable column-major view with explicit leading dimension.
pub struct MatMut<'a> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: &'a mut [f64],
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a column-major data vector (`data.len() == rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Mat { rows, cols, data }
    }

    /// Build from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build from row-major slices (convenient for literals in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        Mat::from_fn(r, c, |i, j| rows[i][j])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of the whole matrix.
    pub fn rf(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows.max(1),
            data: &self.data,
        }
    }

    /// Mutable view of the whole matrix.
    pub fn rm(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows.max(1),
            data: &mut self.data,
        }
    }

    /// Immutable view of the sub-block starting at `(r0, c0)` of shape `nr x nc`.
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_> {
        self.rf().view(r0, c0, nr, nc)
    }

    /// Mutable view of the sub-block starting at `(r0, c0)` of shape `nr x nc`.
    pub fn view_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.rm().into_view(r0, c0, nr, nc)
    }

    /// Zero-copy view of the `nc` columns starting at `c0` (all rows).
    /// The multi-RHS gather primitive: slicing a coalesced batch back into
    /// per-request column groups without materializing copies.
    pub fn col_block(&self, c0: usize, nc: usize) -> MatRef<'_> {
        self.view(0, c0, self.rows, nc)
    }

    /// Mutable zero-copy view of the `nc` columns starting at `c0`.
    pub fn col_block_mut(&mut self, c0: usize, nc: usize) -> MatMut<'_> {
        let rows = self.rows;
        self.view_mut(0, c0, rows, nc)
    }

    /// Underlying column-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// First non-finite entry (NaN/±Inf) in column-major order, if any:
    /// `(row, col, value)`. The detection primitive behind the kernel
    /// poison tripwires — a NaN produced by one batched kernel propagates
    /// through every downstream GEMM, so catching it at the producing
    /// phase boundary is the only place the diagnosis is cheap.
    pub fn find_nonfinite(&self) -> Option<(usize, usize, f64)> {
        self.data
            .iter()
            .position(|v| !v.is_finite())
            .map(|k| (k % self.rows.max(1), k / self.rows.max(1), self.data[k]))
    }

    /// Panic with a located diagnostic if any entry is non-finite. Used as
    /// a debug-mode tripwire at phase boundaries (`ctx` names the phase).
    pub fn assert_finite(&self, ctx: &str) {
        if let Some((i, j, v)) = self.find_nonfinite() {
            panic!(
                "{ctx}: non-finite value {v} at ({i}, {j}) of {}x{}",
                self.rows, self.cols
            );
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy of the rows selected by `idx` (in order).
    pub fn select_rows(&self, idx: &[usize]) -> Mat {
        Mat::from_fn(idx.len(), self.cols, |i, j| self[(idx[i], j)])
    }

    /// Copy of the columns selected by `idx` (in order).
    pub fn select_cols(&self, idx: &[usize]) -> Mat {
        Mat::from_fn(self.rows, idx.len(), |i, j| self[(i, idx[j])])
    }

    /// Horizontal concatenation `[self, other]`.
    pub fn hcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let mut data = Vec::with_capacity((self.cols + other.cols) * self.rows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Mat::from_vec(self.rows, self.cols + other.cols, data)
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "vcat: col mismatch");
        Mat::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy: shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Grow to `cols + extra` columns filled with zeros (rows unchanged).
    pub fn append_zero_cols(&mut self, extra: usize) {
        self.data.resize(self.rows * (self.cols + extra), 0.0);
        self.cols += extra;
    }

    /// Horizontally append the columns of `other` (row counts must match).
    pub fn append_cols(&mut self, other: MatRef<'_>) {
        assert_eq!(self.rows, other.rows(), "append_cols: row mismatch");
        let old = self.cols;
        self.append_zero_cols(other.cols());
        self.view_mut(0, old, self.rows, other.cols())
            .copy_from(other);
    }

    /// Bytes of heap storage (used for the paper's memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<'a> MatRef<'a> {
    /// Construct a view from raw parts; `data` must cover the last entry.
    pub fn from_parts(rows: usize, cols: usize, ld: usize, data: &'a [f64]) -> Self {
        assert!(ld >= rows.max(1), "ld too small");
        if cols > 0 && rows > 0 {
            assert!(
                data.len() >= (cols - 1) * ld + rows,
                "data too short for view"
            );
        }
        MatRef {
            rows,
            cols,
            ld,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn ld(&self) -> usize {
        self.ld
    }

    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        if self.rows == 0 {
            return &[];
        }
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Sub-view. Zero-size views are legal anywhere within (or at the
    /// boundary of) the parent's index range, e.g. `view(rows, cols, 0, 0)`.
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "view out of bounds"
        );
        if nr == 0 || nc == 0 {
            return MatRef {
                rows: nr,
                cols: nc,
                ld: 1,
                data: &[],
            };
        }
        let off = r0 + c0 * self.ld;
        let end = off + (nc - 1) * self.ld + nr;
        MatRef {
            rows: nr,
            cols: nc,
            ld: self.ld,
            data: &self.data[off..end],
        }
    }

    /// Zero-copy view of the `nc` columns starting at `c0` (all rows).
    pub fn col_block(&self, c0: usize, nc: usize) -> MatRef<'a> {
        self.view(0, c0, self.rows, nc)
    }

    /// Owned copy of this view.
    pub fn to_mat(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        m.rm().copy_from(*self);
        m
    }

    /// Owned transposed copy.
    pub fn transpose_to_mat(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    pub fn norm_fro(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.cols {
            for &v in self.col(j) {
                s += v * v;
            }
        }
        s.sqrt()
    }

    pub fn norm_max(&self) -> f64 {
        let mut s = 0.0_f64;
        for j in 0..self.cols {
            for &v in self.col(j) {
                s = s.max(v.abs());
            }
        }
        s
    }
}

impl<'a> MatMut<'a> {
    /// Construct a mutable view from raw parts.
    pub fn from_parts(rows: usize, cols: usize, ld: usize, data: &'a mut [f64]) -> Self {
        assert!(ld >= rows.max(1), "ld too small");
        if cols > 0 && rows > 0 {
            assert!(
                data.len() >= (cols - 1) * ld + rows,
                "data too short for view"
            );
        }
        MatMut {
            rows,
            cols,
            ld,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn ld(&self) -> usize {
        self.ld
    }

    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.ld]
    }

    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        if self.rows == 0 {
            return &[];
        }
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        if self.rows == 0 {
            return &mut [];
        }
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Immutable re-borrow of this view.
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Base pointer and leading dimension of the backing storage, for
    /// kernel-internal writes to provably disjoint tiles (the parallel GEMM
    /// splits C into row bands that column-major slices cannot express as
    /// disjoint subslices). Entry `(i, j)` lives at `ptr + i + j * ld`.
    pub fn raw_parts_mut(&mut self) -> (*mut f64, usize) {
        (self.data.as_mut_ptr(), self.ld)
    }

    /// Mutable re-borrow (for passing to functions without consuming).
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            data: self.data,
        }
    }

    /// Consume into a sub-view. Zero-size views are legal anywhere within
    /// (or at the boundary of) the parent's index range.
    pub fn into_view(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "view out of bounds"
        );
        if nr == 0 || nc == 0 {
            return MatMut {
                rows: nr,
                cols: nc,
                ld: 1,
                data: &mut [],
            };
        }
        let off = r0 + c0 * self.ld;
        let end = off + (nc - 1) * self.ld + nr;
        MatMut {
            rows: nr,
            cols: nc,
            ld: self.ld,
            data: &mut self.data[off..end],
        }
    }

    /// Consume into a zero-copy view of the `nc` columns starting at `c0`
    /// (all rows). The mutable half of the multi-RHS scatter path: each
    /// coalesced request writes straight into its column group of the batch.
    pub fn col_block_mut(self, c0: usize, nc: usize) -> MatMut<'a> {
        let rows = self.rows;
        self.into_view(0, c0, rows, nc)
    }

    /// Split into two disjoint column-range views `[0, c)` and `[c, cols)`.
    pub fn split_cols(self, c: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(c <= self.cols);
        let (l, r) = self.data.split_at_mut(c * self.ld);
        (
            MatMut {
                rows: self.rows,
                cols: c,
                ld: self.ld,
                data: l,
            },
            MatMut {
                rows: self.rows,
                cols: self.cols - c,
                ld: self.ld,
                data: r,
            },
        )
    }

    /// Copy entries from a same-shape source view.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from: shape mismatch"
        );
        for j in 0..self.cols {
            let s = src.col(j);
            self.col_mut(j).copy_from_slice(s);
        }
    }

    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    pub fn scale(&mut self, alpha: f64) {
        for j in 0..self.cols {
            for v in self.col_mut(j) {
                *v *= alpha;
            }
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: MatRef<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows(), other.cols()),
            "axpy: shape mismatch"
        );
        for j in 0..self.cols {
            let src = other.col(j);
            for (d, s) in self.col_mut(j).iter_mut().zip(src) {
                *d += alpha * s;
            }
        }
    }
}

// SAFETY: views only expose &f64/&mut f64 access to disjoint data.
unsafe impl Send for MatMut<'_> {}
unsafe impl Sync for MatRef<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Mat::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn views_address_subblocks() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        let v = m.view(1, 2, 2, 2);
        assert_eq!(v.at(0, 0), 12.0);
        assert_eq!(v.at(1, 1), 23.0);
        let vv = v.view(1, 0, 1, 2);
        assert_eq!(vv.at(0, 1), 23.0);
    }

    #[test]
    fn view_mut_writes_through() {
        let mut m = Mat::zeros(3, 3);
        {
            let mut v = m.view_mut(1, 1, 2, 2);
            v.fill(5.0);
        }
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 5.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i + 7 * j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let r = m.select_rows(&[3, 1]);
        assert_eq!(r[(0, 0)], 12.0);
        assert_eq!(r[(1, 2)], 6.0);
        let c = m.select_cols(&[2]);
        assert_eq!(c[(0, 0)], 2.0);
    }

    #[test]
    fn cat_shapes() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 2);
        assert_eq!(a.hcat(&b).cols(), 5);
        let c = Mat::zeros(4, 3);
        assert_eq!(a.vcat(&c).rows(), 6);
    }

    #[test]
    fn append_cols_grows() {
        let mut a = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Mat::from_fn(2, 3, |i, j| (10 + i + j) as f64);
        a.append_cols(b.rf());
        assert_eq!(a.cols(), 5);
        assert_eq!(a[(1, 4)], 13.0);
        assert_eq!(a[(1, 1)], 2.0);
    }

    #[test]
    fn split_cols_disjoint() {
        let mut m = Mat::zeros(2, 4);
        let (mut l, mut r) = m.rm().split_cols(1);
        l.fill(1.0);
        r.fill(2.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 3)], 2.0);
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-14);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn find_nonfinite_locates_first_in_column_major_order() {
        let mut m = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        assert_eq!(m.find_nonfinite(), None);
        m.assert_finite("clean");
        m[(2, 0)] = f64::NEG_INFINITY;
        m[(0, 1)] = f64::NAN;
        let (i, j, v) = m.find_nonfinite().unwrap();
        assert_eq!((i, j), (2, 0));
        assert!(v.is_infinite());
    }

    #[test]
    #[should_panic(expected = "upsweep gemm")]
    fn assert_finite_panics_with_context() {
        let mut m = Mat::zeros(2, 2);
        m[(1, 1)] = f64::NAN;
        m.assert_finite("upsweep gemm");
    }

    #[test]
    fn gemm_propagates_nan_from_one_operand_entry() {
        // One poisoned entry in A contaminates a full output row of
        // C = A·B — the reason tripwires must sit at the *producing*
        // kernel's boundary, not three levels downstream.
        let mut a = Mat::from_fn(4, 4, |i, j| 1.0 + (i * 4 + j) as f64);
        let b = Mat::from_fn(4, 4, |i, j| 1.0 / (1.0 + (i + j) as f64));
        a[(2, 1)] = f64::NAN;
        let mut c = Mat::zeros(4, 4);
        crate::gemm(
            crate::Op::NoTrans,
            crate::Op::NoTrans,
            1.0,
            a.rf(),
            b.rf(),
            0.0,
            c.rm(),
        );
        let (i, _, _) = c.find_nonfinite().expect("NaN must propagate");
        assert_eq!(i, 2, "poisoned row of A contaminates row 2 of C");
        for jc in 0..4 {
            assert!(c[(2, jc)].is_nan(), "entire output row is NaN");
            assert!(c[(0, jc)].is_finite(), "other rows stay finite");
        }
    }
}
