//! Algorithm 1: bottom-up sketching-based H2 construction with adaptive
//! sampling.
//!
//! Inputs (paper §III): a hierarchical block partition, a black-box sampler
//! `Y = Kblk(Ω)`, an entry evaluator for sub-blocks, a relative tolerance ε,
//! and the sample block size `d`. The construction proceeds level by level
//! from the leaves:
//!
//! 1. subtract the inadmissible (leaf) / already-compressed (coupling)
//!    contributions from the samples with `batchedBSRGemm`,
//! 2. test convergence per node via the QR diagonal of `Y^loc_τ`
//!    (lines 11/29) and, if needed, draw `d` fresh global samples and sweep
//!    them up through the already-skeletonized levels (`updateSamples`),
//! 3. skeletonize with a batched row ID (lines 16/34) giving `U_τ` (leaves)
//!    or stacked transfers `[E_{ν1}; E_{ν2}]` (inner nodes),
//! 4. shrink the samples to skeleton rows and compress the random blocks
//!    (`Y^{l+1}_τ = Y^loc_τ(J_τ,:)`, `Ω^{l+1}_τ = U_τ^T Ω^l_τ`),
//! 5. evaluate the coupling blocks `B_{τ,b} = K(Ĩ_τ, Ĩ_b)` with `batchedGen`.
//!
//! Every step runs as batched kernels on the [`Runtime`] and is attributed
//! to the Fig.-7 phase it belongs to.

use crate::config::{SketchConfig, SketchStats};
use h2_dense::cpqr::Truncation;
use h2_dense::{estimate_norm_2, EntryAccess, LinOp, Mat};
use h2_matrix::H2Matrix;
use h2_runtime::{
    batched_gen, batched_row_id, bsr_gemm, gather_rows, gemm_at_x, hcat_batches, qr_min_rdiag,
    rand_mat, shrink_rows, stack_children, BsrBlock, BsrPattern, GenBlock, Phase, Runtime,
    VarBatch,
};
use h2_tree::{ClusterTree, Partition};
use std::sync::Arc;
use std::time::Instant;

/// Which block store a BSR position reads from.
#[derive(Clone, Copy)]
enum BlockSource {
    Dense,
    Coupling,
}

/// Frozen per-level data used to sweep later sample batches up the tree.
struct LevelRecord {
    /// BSR subtraction pattern. Rows = leaf nodes (leaf level) or child
    /// nodes (inner levels).
    pattern: BsrPattern,
    /// Ordered `(row_node, col_node)` per BSR position.
    pairs: Vec<(usize, usize)>,
    source: BlockSource,
    /// For inner levels: per-parent local child indices (stacking map).
    /// Empty at the leaf level.
    children_local: Vec<Vec<usize>>,
    /// Node ids at this level, in level order.
    node_ids: Vec<usize>,
    /// Skeleton row positions `J_τ` into the stacked local samples
    /// (populated once the level is skeletonized).
    skels_local: Vec<Vec<usize>>,
}

/// Construct an H2 matrix by adaptive sketching (Algorithm 1).
///
/// `sampler` and `gen` view the matrix in tree-permuted coordinates, as do
/// all operators in this workspace.
pub fn sketch_construct(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    rt: &Runtime,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats) {
    let t0 = Instant::now();
    let n = tree.npoints();
    assert_eq!(sampler.nrows(), n, "sampler size mismatch");
    let mut h2 = H2Matrix::new_shell(tree.clone(), partition.clone());
    let mut stats = SketchStats::default();
    let leaf_level = tree.leaf_level();

    // ---- dense near-field blocks (batchedGen, line 8) ----
    rt.phase(Phase::EntryGen, || {
        let mut specs = Vec::new();
        let mut keys = Vec::new();
        for s in tree.level(leaf_level) {
            for &t in partition.near_of[s].iter().filter(|&&t| s <= t) {
                let (sb, se) = tree.range(s);
                let (tb, te) = tree.range(t);
                specs.push(GenBlock { rows: (sb..se).collect(), cols: (tb..te).collect() });
                keys.push((s, t));
            }
        }
        let blocks = batched_gen(rt, gen, &specs);
        for ((s, t), b) in keys.into_iter().zip(blocks) {
            h2.dense.insert(s, t, b);
        }
    });

    // Entirely dense partition (tiny N): done.
    let Some(top) = partition.top_far_level(&tree) else {
        stats.elapsed = t0.elapsed();
        stats.capture_profile(rt.profile());
        return (h2, stats);
    };

    // ---- norm estimate backing the relative threshold (§III.B) ----
    let norm_est = rt.phase(Phase::Misc, || {
        estimate_norm_2(sampler, cfg.norm_est_iters, cfg.seed ^ 0x5A5A_5A5A)
    });
    stats.norm_estimate = norm_est;
    let eps_abs = cfg.safety * cfg.tol * norm_est.max(f64::MIN_POSITIVE);

    // ---- initial sampling (lines 1): Ω ∈ R^{N x d0}, Y = Kblk(Ω) ----
    let d0 = cfg.initial_samples.min(cfg.max_samples).max(1);
    let omega0 = rt.phase(Phase::Rand, || rand_mat(rt, n, d0, cfg.seed));
    let y0 = rt.phase(Phase::Sampling, || sampler.apply_mat(&omega0));
    stats.total_samples = d0;

    let leaf_ranges: Vec<(usize, usize)> =
        tree.level(leaf_level).map(|id| tree.range(id)).collect();
    let mut cur_omega = rt.phase(Phase::Misc, || gather_rows(rt, &omega0, &leaf_ranges));
    let mut cur_y = rt.phase(Phase::Misc, || gather_rows(rt, &y0, &leaf_ranges));
    drop(omega0);
    drop(y0);

    let mut records: Vec<LevelRecord> = Vec::new();
    let mut round_seed = cfg.seed.wrapping_add(0x1234_5678);

    // ---- bottom-up level loop ----
    for l in (top..=leaf_level).rev() {
        let node_ids: Vec<usize> = tree.level(l).collect();
        let is_leaf = l == leaf_level;

        // BSR subtraction structure for this level.
        let (pattern, pairs, source, children_local) = if is_leaf {
            let adj: Vec<Vec<usize>> = node_ids
                .iter()
                .map(|&s| {
                    partition.near_of[s].iter().map(|&t| tree.local_index(t)).collect()
                })
                .collect();
            let mut pairs = Vec::new();
            for &s in &node_ids {
                for &t in &partition.near_of[s] {
                    pairs.push((s, t));
                }
            }
            (BsrPattern::from_rows(&adj), pairs, BlockSource::Dense, Vec::new())
        } else {
            let child_ids: Vec<usize> = tree.level(l + 1).collect();
            let adj: Vec<Vec<usize>> = child_ids
                .iter()
                .map(|&s| partition.far_of[s].iter().map(|&t| tree.local_index(t)).collect())
                .collect();
            let mut pairs = Vec::new();
            for &s in &child_ids {
                for &t in &partition.far_of[s] {
                    pairs.push((s, t));
                }
            }
            let children_local: Vec<Vec<usize>> = node_ids
                .iter()
                .map(|&p| {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    vec![tree.local_index(c1), tree.local_index(c2)]
                })
                .collect();
            (BsrPattern::from_rows(&adj), pairs, BlockSource::Coupling, children_local)
        };

        // Subtract known contributions and stack to this level's nodes
        // (lines 9 / 24+27).
        let (mut yloc, mut omega_l) = advance_level(
            rt,
            &h2,
            &pattern,
            &pairs,
            source,
            &children_local,
            cur_y,
            cur_omega,
        );

        // ---- adaptive sampling loop (lines 11-14 / 29-32) ----
        let mut level_rounds = 0usize;
        loop {
            let d_cur = if yloc.count() > 0 { yloc.cols_of(0) } else { 0 };
            if !cfg.adaptive || d_cur == 0 {
                break;
            }
            let mins = rt.phase(Phase::ConvergenceTest, || qr_min_rdiag(rt, &yloc));
            let eps_conv = eps_abs * (d_cur as f64).sqrt();
            let unconverged = (0..yloc.count())
                .any(|i| d_cur < yloc.rows_of(i) && mins[i] > eps_conv);
            if !unconverged || stats.total_samples + cfg.sample_block > cfg.max_samples {
                break;
            }
            // updateSamples: fresh global sketch swept through the frozen
            // levels below, then advanced through this level's subtraction.
            round_seed = round_seed.wrapping_add(0x9E37_79B9);
            let (new_yloc, new_omega_l) = sweep_new_samples(
                rt,
                sampler,
                &h2,
                &tree,
                &records,
                &leaf_ranges,
                &pattern,
                &pairs,
                source,
                &children_local,
                cfg.sample_block,
                round_seed,
            );
            yloc = rt.phase(Phase::Misc, || hcat_batches(rt, &yloc, &new_yloc));
            omega_l = rt.phase(Phase::Misc, || hcat_batches(rt, &omega_l, &new_omega_l));
            stats.total_samples += cfg.sample_block;
            stats.rounds += 1;
            level_rounds += 1;
        }
        stats.rounds_per_level.push(level_rounds);

        // ---- batched row ID (lines 16 / 34) ----
        let height = leaf_level - l;
        let eps_id = eps_abs * cfg.schedule.scale(height)
            * (yloc.cols_of(0).max(1) as f64).sqrt();
        let mut id_res = rt.phase(Phase::Id, || {
            batched_row_id(rt, &yloc, Truncation::Absolute(eps_id))
        });
        // Enforce the rank cap (rare; re-factor the offenders).
        for (i, r) in id_res.iter_mut().enumerate() {
            if r.rank() > cfg.max_rank {
                *r = h2_dense::cpqr::row_id(&yloc.to_mat(i), Truncation::Rank(cfg.max_rank));
            }
        }

        // Store bases and global skeleton indices (lines 19 / 37).
        let mut skels_local: Vec<Vec<usize>> = Vec::with_capacity(node_ids.len());
        for (local, &id) in node_ids.iter().enumerate() {
            let r = &id_res[local];
            let stacked_rows: Vec<usize> = if is_leaf {
                let (b, e) = tree.range(id);
                (b..e).collect()
            } else {
                let (c1, c2) = tree.nodes[id].children.unwrap();
                h2.skel[c1].iter().chain(h2.skel[c2].iter()).copied().collect()
            };
            h2.skel[id] = r.skel.iter().map(|&p| stacked_rows[p]).collect();
            h2.basis[id] = r.u.clone();
            skels_local.push(r.skel.clone());
        }

        // ---- coupling blocks at this level (batchedGen, line 41) ----
        rt.phase(Phase::EntryGen, || {
            let mut specs = Vec::new();
            let mut keys = Vec::new();
            for &s in &node_ids {
                for &t in partition.far_of[s].iter().filter(|&&t| s <= t) {
                    specs.push(GenBlock { rows: h2.skel[s].clone(), cols: h2.skel[t].clone() });
                    keys.push((s, t));
                }
            }
            let blocks = batched_gen(rt, gen, &specs);
            for ((s, t), b) in keys.into_iter().zip(blocks) {
                h2.coupling.insert(s, t, b);
            }
        });

        // ---- upsweep to the next level (lines 17-18 / 35-36) ----
        if l > top {
            let skel_refs: Vec<&[usize]> = skels_local.iter().map(|v| v.as_slice()).collect();
            let bases: Vec<Mat> = node_ids.iter().map(|&id| h2.basis[id].clone()).collect();
            cur_y = rt.phase(Phase::Upsweep, || shrink_rows(rt, &yloc, &skel_refs));
            cur_omega = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &bases, &omega_l));
        } else {
            cur_y = VarBatch::zeros_uniform_cols(Vec::new(), 0);
            cur_omega = VarBatch::zeros_uniform_cols(Vec::new(), 0);
        }

        records.push(LevelRecord { pattern, pairs, source, children_local, node_ids, skels_local });

        if l == top {
            break;
        }
    }

    stats.elapsed = t0.elapsed();
    stats.capture_profile(rt.profile());
    (h2, stats)
}

/// Resolve the BSR block references of a level against the H2 block stores.
fn resolve_blocks<'a>(
    h2: &'a H2Matrix,
    pairs: &[(usize, usize)],
    source: BlockSource,
) -> Vec<BsrBlock<'a>> {
    pairs
        .iter()
        .map(|&(s, t)| {
            let (mat, transposed) = match source {
                BlockSource::Dense => h2.dense.get(s, t).expect("dense block"),
                BlockSource::Coupling => h2.coupling.get(s, t).expect("coupling block"),
            };
            BsrBlock { mat, transposed }
        })
        .collect()
}

/// Subtract the level's known contributions from the incoming samples and
/// stack child entries onto this level's nodes. Consumes the child-level
/// batches and returns `(Y_loc, Ω_l)`.
#[allow(clippy::too_many_arguments)]
fn advance_level(
    rt: &Runtime,
    h2: &H2Matrix,
    pattern: &BsrPattern,
    pairs: &[(usize, usize)],
    source: BlockSource,
    children_local: &[Vec<usize>],
    mut y: VarBatch,
    omega: VarBatch,
) -> (VarBatch, VarBatch) {
    rt.phase(Phase::BsrGemm, || {
        let blocks = resolve_blocks(h2, pairs, source);
        bsr_gemm(rt, pattern, &blocks, &omega, &mut y, -1.0);
    });
    if children_local.is_empty() {
        (y, omega)
    } else {
        rt.phase(Phase::Misc, || {
            let yl = stack_children(rt, &y, children_local);
            let ol = stack_children(rt, &omega, children_local);
            (yl, ol)
        })
    }
}

/// `updateSamples` (lines 13/31): draw a fresh global sketch and sweep it
/// through all completed levels (frozen bases and skeletons), then advance
/// it through the current level's subtraction/stacking.
#[allow(clippy::too_many_arguments)]
fn sweep_new_samples(
    rt: &Runtime,
    sampler: &dyn LinOp,
    h2: &H2Matrix,
    tree: &ClusterTree,
    records: &[LevelRecord],
    leaf_ranges: &[(usize, usize)],
    cur_pattern: &BsrPattern,
    cur_pairs: &[(usize, usize)],
    cur_source: BlockSource,
    cur_children_local: &[Vec<usize>],
    d: usize,
    seed: u64,
) -> (VarBatch, VarBatch) {
    let n = tree.npoints();
    let omega_new = rt.phase(Phase::Rand, || rand_mat(rt, n, d, seed));
    let y_new = rt.phase(Phase::Sampling, || sampler.apply_mat(&omega_new));
    let mut om = rt.phase(Phase::Misc, || gather_rows(rt, &omega_new, leaf_ranges));
    let mut yv = rt.phase(Phase::Misc, || gather_rows(rt, &y_new, leaf_ranges));

    for rec in records {
        // Subtract + stack with the recorded structure.
        let (mut yl, ol) = advance_level(
            rt,
            h2,
            &rec.pattern,
            &rec.pairs,
            rec.source,
            &rec.children_local,
            yv,
            om,
        );
        // Apply the frozen skeletonization: shrink rows, compress Ω.
        let skel_refs: Vec<&[usize]> = rec.skels_local.iter().map(|v| v.as_slice()).collect();
        let bases: Vec<Mat> = rec.node_ids.iter().map(|&id| h2.basis[id].clone()).collect();
        yl = rt.phase(Phase::Upsweep, || shrink_rows(rt, &yl, &skel_refs));
        let ol2 = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &bases, &ol));
        yv = yl;
        om = ol2;
    }

    // Advance through the current (not yet skeletonized) level.
    advance_level(rt, h2, cur_pattern, cur_pairs, cur_source, cur_children_local, yv, om)
}
