//! Low-rank update recompression — the paper's third application (§V.A):
//! compress the sum of an existing H2 representation of a covariance matrix
//! and a rank-32 low-rank product into a new H2 matrix. This is the
//! operation arising in hierarchical LU and multifrontal Schur-complement
//! updates.
//!
//! The black-box sampler is the fast H2 matvec plus a thin product; the
//! entry generator extracts entries from the compressed representation and
//! the low-rank factors (paper §V.A: "an algorithm that extracts entries
//! from the given H2 and low-rank representations").
//!
//! ```sh
//! cargo run --release --example lowrank_update
//! ```

use h2sketch::dense::{estimate_norm_2, gaussian_mat, DiffOp, LinOp};
use h2sketch::kernels::{ExponentialKernel, KernelMatrix};
use h2sketch::matrix::{direct_construct, DirectConfig, LowRankUpdate};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    let n = 8192;
    let rank_update = 32; // the paper's configuration
    let points = uniform_cube(n, 21);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let kernel = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());

    // Existing H2 representation of the covariance matrix.
    let base = direct_construct(
        &kernel,
        tree.clone(),
        partition.clone(),
        &DirectConfig {
            tol: 1e-9,
            ..Default::default()
        },
    );
    println!(
        "base H2: {:.1} MiB, rank range {:?}",
        base.memory_bytes() as f64 / (1 << 20) as f64,
        base.rank_range()
    );

    // Symmetric rank-32 update P Pᵀ, scaled to a fraction of ‖K‖.
    let mut p = gaussian_mat(n, rank_update, 22);
    p.scale(0.1 / (n as f64).sqrt());
    let updated = LowRankUpdate::symmetric(&base, p);
    println!("update rank: {}", updated.rank());

    // Recompress K + P Pᵀ into a fresh H2 matrix with Algorithm 1.
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 128,
        sample_block: 32,
        ..Default::default()
    };
    let (recompressed, stats) =
        sketch_construct(&updated, &updated, tree.clone(), partition, &rt, &cfg);
    println!(
        "recompressed in {:.3}s with {} samples; memory {:.1} MiB, rank range {:?}",
        stats.elapsed.as_secs_f64(),
        stats.total_samples,
        recompressed.memory_bytes() as f64 / (1 << 20) as f64,
        recompressed.rank_range()
    );

    // Verify against the updated operator by power iteration.
    let diff = DiffOp {
        a: &updated,
        b: &recompressed,
    };
    let num = estimate_norm_2(&diff, 15, 23);
    let den = estimate_norm_2(&updated, 15, 24);
    println!("relative error ≈ {:.3e} (target 1e-6)", num / den);
    assert!(num / den < 1e-5);

    // The update must actually be present: compare against the *base*.
    let drift = {
        let diff = DiffOp {
            a: &base,
            b: &recompressed,
        };
        estimate_norm_2(&diff, 15, 25) / den
    };
    println!("distance to the un-updated base ≈ {drift:.3e} (must be >> error)");
    assert!(
        drift > 1e-4,
        "the low-rank update was lost in recompression"
    );
    let _ = updated.nrows();
}
