//! Deterministic edge-case coverage of the dense substrate: degenerate
//! shapes, exact singularities, duplicated data — the inputs batched GPU
//! code paths hit when cluster sizes, ranks, or sample counts collapse.

use h2_dense::cpqr::{col_id, row_id, Truncation};
use h2_dense::{
    aca, cholesky_in_place, gaussian_mat, lu_factor, matmul, qr_factor, solve_triangular_left, svd,
    Diag, Mat, Op, Triangle,
};

// ---------------------------------------------------------------- shapes

#[test]
fn qr_of_empty_and_single() {
    let f = qr_factor(Mat::zeros(0, 0));
    assert_eq!(f.r().rows(), 0);

    let f = qr_factor(Mat::from_rows(&[&[3.0]]));
    assert!((f.r()[(0, 0)].abs() - 3.0).abs() < 1e-15);

    // Zero-column tall matrix.
    let f = qr_factor(Mat::zeros(5, 0));
    assert_eq!(f.r().cols(), 0);
}

#[test]
fn qr_tall_and_wide() {
    for (m, n) in [(10, 3), (3, 10)] {
        let a = gaussian_mat(m, n, 71);
        let f = qr_factor(a.clone());
        let q = f.q_thin();
        let r = f.r();
        let qr = matmul(Op::NoTrans, Op::NoTrans, q.rf(), r.rf());
        let mut d = qr;
        d.axpy(-1.0, &a);
        assert!(d.norm_max() < 1e-12, "{m}x{n} QR reconstruction");
        // Q orthonormal.
        let qtq = matmul(Op::Trans, Op::NoTrans, q.rf(), q.rf());
        let mut e = qtq;
        e.axpy(-1.0, &Mat::eye(m.min(n)));
        assert!(e.norm_max() < 1e-12);
    }
}

#[test]
fn row_id_of_rank_zero_matrix() {
    let rid = row_id(&Mat::zeros(6, 4), Truncation::Absolute(1e-12));
    assert_eq!(rid.rank(), 0);
    assert_eq!(rid.u.rows(), 6);
    assert_eq!(rid.u.cols(), 0);
}

#[test]
fn row_id_single_row() {
    let a = Mat::from_rows(&[&[1.0, 2.0, 3.0]]);
    let rid = row_id(&a, Truncation::Relative(1e-12));
    assert_eq!(rid.rank(), 1);
    assert_eq!(rid.skel, vec![0]);
}

#[test]
fn col_id_duplicated_columns() {
    // Two distinct columns, each duplicated 3x: rank exactly 2 and the
    // interpolation reconstructs the duplicates exactly.
    let c1 = [1.0, 2.0, 3.0, 4.0];
    let c2 = [4.0, -1.0, 0.5, 2.0];
    let a = Mat::from_fn(4, 6, |i, j| if j % 2 == 0 { c1[i] } else { c2[i] });
    let cid = col_id(a.clone(), Truncation::Relative(1e-12));
    assert_eq!(cid.rank(), 2);
    let sel = a.select_cols(&cid.skel);
    let rec = matmul(
        Op::NoTrans,
        Op::NoTrans,
        sel.rf(),
        cid.interp_matrix(6).rf(),
    );
    let mut d = rec;
    d.axpy(-1.0, &a);
    assert!(d.norm_max() < 1e-12);
}

#[test]
fn rank_truncation_exact() {
    let a = gaussian_mat(12, 12, 72);
    for k in [0usize, 1, 5, 12] {
        let rid = row_id(&a, Truncation::Rank(k));
        assert_eq!(rid.rank(), k);
    }
}

// ----------------------------------------------------------- singularity

#[test]
fn lu_detects_exact_singularity() {
    assert!(lu_factor(Mat::zeros(3, 3)).is_none());
    // Rank-1 3x3.
    let u = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
    let s = matmul(Op::NoTrans, Op::Trans, u.rf(), u.rf());
    assert!(lu_factor(s).is_none());
}

#[test]
fn lu_permutation_matrix_solved_exactly() {
    // A pure permutation forces pivoting on every step.
    let mut p = Mat::zeros(4, 4);
    p[(0, 2)] = 1.0;
    p[(1, 0)] = 1.0;
    p[(2, 3)] = 1.0;
    p[(3, 1)] = 1.0;
    let f = lu_factor(p.clone()).unwrap();
    let b = gaussian_mat(4, 2, 73);
    let x = f.solve(&b);
    let px = matmul(Op::NoTrans, Op::NoTrans, p.rf(), x.rf());
    let mut d = px;
    d.axpy(-1.0, &b);
    assert!(d.norm_max() < 1e-14);
}

#[test]
fn cholesky_rejects_indefinite() {
    let mut a = Mat::eye(3);
    a[(2, 2)] = -1.0;
    assert!(cholesky_in_place(&mut a.rm()).is_err());
}

#[test]
fn cholesky_1x1() {
    let mut a = Mat::from_rows(&[&[9.0]]);
    cholesky_in_place(&mut a.rm()).unwrap();
    assert!((a[(0, 0)] - 3.0).abs() < 1e-15);
}

#[test]
fn triangular_solve_unit_diagonal() {
    // Unit-lower solve must ignore stored diagonal values.
    let mut l = Mat::eye(3);
    l[(1, 0)] = 2.0;
    l[(2, 0)] = -1.0;
    l[(2, 1)] = 0.5;
    l[(0, 0)] = 99.0; // must be ignored with Diag::Unit
    let b = Mat::from_rows(&[&[1.0], &[4.0], &[2.0]]);
    let mut x = b.clone();
    solve_triangular_left(Triangle::Lower, Diag::Unit, l.rf(), &mut x.rm());
    // Forward substitution with unit diagonal.
    assert!((x[(0, 0)] - 1.0).abs() < 1e-15);
    assert!((x[(1, 0)] - 2.0).abs() < 1e-15);
    assert!((x[(2, 0)] - (2.0 + 1.0 - 1.0)).abs() < 1e-15);
}

// ------------------------------------------------------------------ svd

#[test]
fn svd_of_diagonal_matrix() {
    let mut a = Mat::zeros(4, 4);
    for (i, s) in [4.0, 3.0, 2.0, 1.0].iter().enumerate() {
        a[(i, i)] = *s;
    }
    let f = svd(&a);
    for (i, s) in [4.0, 3.0, 2.0, 1.0].iter().enumerate() {
        assert!((f.s[i] - s).abs() < 1e-12, "singular value {i}");
    }
}

#[test]
fn svd_rank_one() {
    let u = Mat::from_rows(&[&[1.0], &[2.0], &[2.0]]);
    let v = Mat::from_rows(&[&[3.0], &[4.0]]);
    let a = matmul(Op::NoTrans, Op::Trans, u.rf(), v.rf());
    let f = svd(&a);
    assert!(
        (f.s[0] - 15.0).abs() < 1e-12,
        "3*5 = |u||v| = 15, got {}",
        f.s[0]
    );
    assert!(f.s[1].abs() < 1e-12);
}

#[test]
fn svd_wide_matches_transpose() {
    let a = gaussian_mat(3, 7, 74);
    let fa = svd(&a);
    let ft = svd(&a.transpose());
    for i in 0..3 {
        assert!((fa.s[i] - ft.s[i]).abs() < 1e-10);
    }
}

// ------------------------------------------------------------------ aca

#[test]
fn aca_rank_one_constant_matrix() {
    let res = aca(8, 9, |_, _| 2.5, 1e-12, 8);
    assert_eq!(res.rank(), 1);
    let mut d = res.to_mat();
    d.axpy(-1.0, &Mat::from_fn(8, 9, |_, _| 2.5));
    assert!(d.norm_max() < 1e-12);
}

#[test]
fn aca_single_row_and_column() {
    let res = aca(1, 6, |_, j| (j + 1) as f64, 1e-12, 4);
    assert_eq!(res.rank(), 1);
    let res = aca(6, 1, |i, _| (i + 1) as f64, 1e-12, 4);
    assert_eq!(res.rank(), 1);
}

// ---------------------------------------------------------------- gemm

#[test]
fn gemm_zero_dims_are_noops() {
    // k = 0 contraction: C unchanged under beta = 1.
    let a = Mat::zeros(3, 0);
    let b = Mat::zeros(0, 2);
    let mut c = gaussian_mat(3, 2, 75);
    let c0 = c.clone();
    h2_dense::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 1.0, c.rm());
    let mut d = c;
    d.axpy(-1.0, &c0);
    assert_eq!(d.norm_max(), 0.0);
}

#[test]
fn gemm_beta_zero_clears_nan() {
    // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
    let a = Mat::eye(2);
    let b = Mat::eye(2);
    let mut c = Mat::from_fn(2, 2, |_, _| f64::NAN);
    h2_dense::gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c.rm());
    assert_eq!(c[(0, 0)], 1.0);
    assert_eq!(c[(0, 1)], 0.0);
    assert!(!c[(1, 1)].is_nan());
}

#[test]
fn matmul_all_transpose_combinations() {
    let a = gaussian_mat(4, 3, 76);
    let b = gaussian_mat(3, 5, 77);
    let c1 = matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf());
    let c2 = matmul(Op::Trans, Op::NoTrans, a.transpose().rf(), b.rf());
    let c3 = matmul(Op::NoTrans, Op::Trans, a.rf(), b.transpose().rf());
    let c4 = matmul(Op::Trans, Op::Trans, a.transpose().rf(), b.transpose().rf());
    for c in [&c2, &c3, &c4] {
        let mut d = c.clone();
        d.axpy(-1.0, &c1);
        assert!(d.norm_max() < 1e-13);
    }
}

// ------------------------------------------------------------- mat ops

#[test]
fn select_rows_and_cols_consistency() {
    let a = Mat::from_fn(6, 5, |i, j| (10 * i + j) as f64);
    let r = a.select_rows(&[5, 0, 3]);
    assert_eq!(r[(0, 4)], 54.0);
    assert_eq!(r[(1, 0)], 0.0);
    let c = a.select_cols(&[4, 4]);
    assert_eq!(c[(2, 0)], 24.0);
    assert_eq!(c[(2, 1)], 24.0);
}

#[test]
fn vcat_hcat_shapes_and_content() {
    let a = Mat::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
    let b = Mat::from_fn(1, 3, |_, j| (100 + j) as f64);
    let v = a.vcat(&b);
    assert_eq!((v.rows(), v.cols()), (3, 3));
    assert_eq!(v[(2, 1)], 101.0);

    let c = Mat::from_fn(2, 1, |i, _| (200 + i) as f64);
    let h = a.hcat(&c);
    assert_eq!((h.rows(), h.cols()), (2, 4));
    assert_eq!(h[(1, 3)], 201.0);
}

#[test]
fn norms_of_known_matrices() {
    let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
    assert!((a.norm_fro() - 5.0).abs() < 1e-15);
    assert_eq!(a.norm_max(), 4.0);
    assert_eq!(Mat::zeros(3, 3).norm_fro(), 0.0);
}

#[test]
fn transpose_involution() {
    let a = gaussian_mat(5, 7, 78);
    let mut d = a.transpose().transpose();
    d.axpy(-1.0, &a);
    assert_eq!(d.norm_max(), 0.0);
}

#[test]
fn zero_size_views_at_boundary() {
    // Regression: view(m, n, 0, 0) — the full-rank corner case of the ULV
    // elimination (no variables to eliminate) — must not panic.
    let a = gaussian_mat(4, 4, 79);
    let v = a.view(4, 4, 0, 0);
    assert_eq!((v.rows(), v.cols()), (0, 0));
    let v = a.view(0, 4, 4, 0);
    assert_eq!((v.rows(), v.cols()), (4, 0));
    let v = a.view(4, 0, 0, 4);
    assert_eq!((v.rows(), v.cols()), (0, 4));
    assert_eq!(v.to_mat().rows(), 0);

    let mut b = gaussian_mat(3, 3, 80);
    let v = b.view_mut(3, 3, 0, 0);
    assert_eq!((v.rows(), v.cols()), (0, 0));
}
