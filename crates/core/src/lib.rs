//! # h2-core
//!
//! The paper's primary contribution: **linear-complexity bottom-up
//! sketching-based construction of strongly-admissible H2 matrices with
//! adaptive sampling** (Algorithm 1), executed entirely as batched kernels
//! on the [`h2_runtime`] device model.
//!
//! The construction consumes the two black-box inputs of the paper — a
//! sketching operator `Y = Kblk(Ω)` ([`h2_dense::LinOp`]) and an entry
//! evaluator ([`h2_dense::EntryAccess`]) — plus a cluster tree and block
//! partition from [`h2_tree`], and produces an [`h2_matrix::H2Matrix`]
//! together with [`SketchStats`] (sample counts, adaptation rounds, phase
//! timings and kernel-launch counts).

pub mod config;
pub mod construct;
pub mod multidev;
pub mod unsym;

pub use config::{SketchConfig, SketchStats, TolSchedule};
pub use construct::sketch_construct;
pub use multidev::level_specs;
pub use unsym::sketch_construct_unsym;

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{relative_error_2, DenseOp, EntryAccess, Mat};
    use h2_kernels::{ExponentialKernel, HelmholtzKernel, KernelMatrix};
    use h2_matrix::LowRankUpdate;
    use h2_runtime::{Backend, Kernel, Runtime};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn cov_problem(
        n: usize,
        leaf: usize,
        eta: f64,
        seed: u64,
    ) -> (Arc<ClusterTree>, Arc<Partition>, KernelMatrix<ExponentialKernel>) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, leaf));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta }));
        // Guard against trivially-dense partitions: every test below is
        // meant to exercise the actual sketching path.
        assert!(
            part.top_far_level(&tree).is_some(),
            "test problem too small for eta={eta}: no admissible blocks"
        );
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    /// Full pipeline against a dense reference: error must respect the
    /// tolerance (up to a safety factor for the ID error propagation).
    #[test]
    fn covariance_construction_meets_tolerance() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 100);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-6, initial_samples: 64, ..Default::default() };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        assert!(stats.total_samples >= 64);
        let dense = Mat::from_fn(1500, 1500, |i, j| km.entry(i, j));
        let rec = h2.to_dense();
        let mut d = rec;
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "construction error {rel} vs tol 1e-6");
    }

    #[test]
    fn helmholtz_construction_meets_tolerance() {
        let pts = h2_tree::uniform_cube(1500, 101);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(HelmholtzKernel::paper(1500), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-6, initial_samples: 96, ..Default::default() };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let e = relative_error_2(&km, &h2, 20, 102);
        assert!(e < 1e-5, "rel err {e}");
    }

    /// The adaptive variant starting from a deliberately tiny sample count
    /// must grow its sample set and still meet the tolerance.
    #[test]
    fn adaptive_grows_samples_from_small_start() {
        let (tree, part, km) = cov_problem(3000, 32, 0.7, 103);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 8,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0, "must adapt from 8 samples");
        assert!(stats.total_samples > 8);
        let e = relative_error_2(&km, &h2, 20, 104);
        assert!(e < 1e-5, "rel err {e} after {} samples", stats.total_samples);
    }

    /// Fixed-sample construction (adaptive off) with ample samples.
    #[test]
    fn fixed_sample_construction() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 105);
        let rt = Runtime::sequential();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 96,
            adaptive: false,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert_eq!(stats.total_samples, 96);
        assert_eq!(stats.rounds, 0);
        let e = relative_error_2(&km, &h2, 20, 106);
        assert!(e < 1e-5, "rel err {e}");
    }

    /// Sequential and parallel backends are numerically identical.
    #[test]
    fn backends_agree_exactly() {
        let (tree, part, km) = cov_problem(1200, 16, 0.7, 107);
        let cfg = SketchConfig { initial_samples: 48, ..Default::default() };
        let (a, _) = sketch_construct(
            &km,
            &km,
            tree.clone(),
            part.clone(),
            &Runtime::new(Backend::Sequential),
            &cfg,
        );
        let (b, _) =
            sketch_construct(&km, &km, tree.clone(), part, &Runtime::new(Backend::Parallel), &cfg);
        let da = a.to_dense();
        let db = b.to_dense();
        let mut d = da;
        d.axpy(-1.0, &db);
        assert!(d.norm_max() < 1e-12, "backend divergence {}", d.norm_max());
    }

    /// §IV.B: the whole construction issues O(levels) kernel launches, not
    /// O(N) — the headline GPU design property.
    #[test]
    fn launch_count_scales_with_levels_not_nodes() {
        let (tree, part, km) = cov_problem(2000, 16, 0.7, 108);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { initial_samples: 64, ..Default::default() };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);
        let levels = tree.nlevels();
        let max_csp = (0..levels)
            .map(|l| part.csp_far(&tree, l))
            .chain([part.csp_near(&tree)])
            .max()
            .unwrap();
        let budget = levels * (20 + 2 * max_csp) * (1 + stats.rounds);
        assert!(
            stats.total_launches() <= budget,
            "{} launches exceeds O(L·Csp) budget {budget}",
            stats.total_launches()
        );
        // and in particular far fewer than the number of tree nodes
        assert!(stats.total_launches() < tree.nodes.len() * 4);
    }

    /// Same seed ⇒ identical result (bitwise).
    #[test]
    fn deterministic_by_seed() {
        let (tree, part, km) = cov_problem(1000, 16, 0.7, 109);
        let cfg = SketchConfig { initial_samples: 48, ..Default::default() };
        let (a, _) =
            sketch_construct(&km, &km, tree.clone(), part.clone(), &Runtime::parallel(), &cfg);
        let (b, _) =
            sketch_construct(&km, &km, tree.clone(), part.clone(), &Runtime::parallel(), &cfg);
        let mut d = a.to_dense();
        d.axpy(-1.0, &b.to_dense());
        assert_eq!(d.norm_max(), 0.0, "same-seed construction must be bitwise identical");
    }

    /// Weak admissibility partition turns Algorithm 1 into the HSS
    /// construction it generalizes (Martinsson 2011).
    #[test]
    fn weak_admissibility_hss_construction() {
        let pts = h2_tree::uniform_cube(400, 110);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        // Smooth kernel so weak-admissible blocks are low rank.
        let km = KernelMatrix::new(ExponentialKernel { l: 3.0 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 64,
            max_rank: 200,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 111);
        assert!(e < 1e-6, "HSS-mode rel err {e}");
    }

    /// The paper's third application: recompress an H2 matrix plus a rank-32
    /// low-rank product into a fresh H2 matrix, with the sampler being the
    /// fast H2 matvec and entry evaluation coming from the compressed
    /// representation.
    #[test]
    fn lowrank_update_recompression() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 112);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-7, initial_samples: 80, ..Default::default() };
        let (base, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);

        let p = h2_dense::gaussian_mat(1500, 8, 113);
        let mut pscaled = p.clone();
        pscaled.scale(0.05); // keep the update comparable to K's scale
        let updated = LowRankUpdate::symmetric(&base, pscaled.clone());

        let rt2 = Runtime::parallel();
        let (recompressed, stats) =
            sketch_construct(&updated, &updated, tree.clone(), part, &rt2, &cfg);
        assert!(stats.total_samples >= 80);

        // Reference: dense kernel + update, vs recompressed.
        let mut want = Mat::from_fn(1500, 1500, |i, j| km.entry(i, j));
        let ppt =
            h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, pscaled.rf(), pscaled.rf());
        want.axpy(1.0, &ppt);
        let got = recompressed.to_dense();
        let mut d = got;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        // Two compressions stack their errors; stay within an order of
        // magnitude of the base tolerance.
        assert!(rel < 1e-5, "update recompression error {rel}");
    }

    /// Sketching from a *dense* operator (frontal-matrix style input where
    /// the sampler is a plain matrix product).
    #[test]
    fn dense_operator_input() {
        let (tree, part, km) = cov_problem(1024, 16, 0.7, 114);
        let dense = Mat::from_fn(1024, 1024, |i, j| km.entry(i, j));
        let op = DenseOp::new(dense.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig { initial_samples: 64, ..Default::default() };
        let (h2, _) = sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "dense-input rel err {rel}");
    }

    /// Tiny problems degrade to a single dense block.
    #[test]
    fn tiny_problem_all_dense() {
        let pts = h2_tree::uniform_cube(20, 115);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::sequential();
        let (h2, stats) =
            sketch_construct(&km, &km, tree.clone(), part, &rt, &SketchConfig::default());
        assert_eq!(stats.total_samples, 0, "no sketching needed for a dense-only partition");
        let dense = Mat::from_fn(20, 20, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        assert_eq!(d.norm_max(), 0.0, "dense-only representation is exact");
        assert_eq!(rt.profile().launches(Kernel::Id), 0);
    }

    /// Tighter tolerance must give a more accurate representation.
    #[test]
    fn tolerance_monotonicity() {
        let (tree, part, km) = cov_problem(1500, 16, 0.7, 116);
        let err_at = |tol: f64| {
            let rt = Runtime::parallel();
            let cfg =
                SketchConfig { tol, initial_samples: 48, sample_block: 16, ..Default::default() };
            let (h2, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg);
            relative_error_2(&km, &h2, 20, 117)
        };
        let e_loose = err_at(1e-3);
        let e_tight = err_at(1e-8);
        assert!(e_tight < e_loose, "tight {e_tight} vs loose {e_loose}");
        assert!(e_tight < 1e-6);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use h2_dense::relative_error_2;
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_runtime::Runtime;
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn problem(n: usize, seed: u64) -> (Arc<ClusterTree>, Arc<Partition>, KernelMatrix<ExponentialKernel>) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
        (tree, part, km)
    }

    /// The max_samples cap is respected exactly and the construction still
    /// terminates with a usable (if less accurate) matrix.
    #[test]
    fn sample_budget_is_hard_cap() {
        let (tree, part, km) = problem(2000, 401);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-12, // unreachable: forces the adaptive loop to the cap
            initial_samples: 8,
            sample_block: 8,
            max_samples: 40,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.total_samples <= 40, "budget violated: {}", stats.total_samples);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 15, 402);
        assert!(e < 0.5, "even budget-capped construction stays sane, err {e}");
    }

    /// max_rank truncates node ranks without breaking structure.
    #[test]
    fn rank_cap_is_enforced() {
        let (tree, part, km) = problem(1500, 403);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-10,
            initial_samples: 96,
            max_rank: 6,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let (_, hi) = h2.rank_range();
        assert!(hi <= 6, "rank cap violated: {hi}");
    }

    /// Adaptive rounds can trigger at inner levels, not just the leaves:
    /// the updateSamples upsweep machinery is exercised when upper levels
    /// carry more rank than the initial samples cover.
    #[test]
    fn inner_level_adaptation_happens() {
        let (tree, part, km) = problem(3000, 404);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-8,
            initial_samples: 12,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0);
        assert_eq!(
            stats.rounds_per_level.iter().sum::<usize>(),
            stats.rounds,
            "per-level accounting must add up"
        );
        let e = relative_error_2(&km, &h2, 15, 405);
        assert!(e < 1e-6, "err {e} after adaptation at levels {:?}", stats.rounds_per_level);
    }

    /// The norm estimate feeding the relative threshold is in the right
    /// ballpark (sanity of the §III.B mechanism).
    #[test]
    fn norm_estimate_reported() {
        let (tree, part, km) = problem(1200, 406);
        let rt = Runtime::sequential();
        let cfg = SketchConfig { initial_samples: 48, ..Default::default() };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let exact = h2_dense::estimate_norm_2(&km, 40, 407);
        assert!(stats.norm_estimate > 0.3 * exact && stats.norm_estimate < 1.2 * exact);
    }

    /// Phase timings cover the construction: the recorded phases account
    /// for the bulk of the wall-clock elapsed time.
    #[test]
    fn phase_accounting_covers_runtime() {
        let (tree, part, km) = problem(2000, 408);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { initial_samples: 64, ..Default::default() };
        let (_, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        let covered = stats.phase_total();
        let wall = stats.elapsed.as_secs_f64();
        assert!(covered > 0.6 * wall, "phases cover {covered:.3}s of {wall:.3}s");
        assert!(stats.total_launches() > 0);
    }
}
