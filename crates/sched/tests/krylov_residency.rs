//! Krylov vector-residency acceptance: a fabric-backed solve with
//! device-resident vectors ([`Residency::Resident`]) must be bit-identical
//! to the staged round-tripping dataflow ([`Residency::Staged`]) — even
//! across pipeline modes — while its per-iteration transfer bytes strictly
//! decrease: the `O(n)` [`TransferKind::VectorStage`] staging per apply
//! collapses to `8·(D−1)`-byte scalar allreduces per global reduction.
//! Both sides' `VectorStage` totals are pinned to their closed forms
//! ([`staged_apply_bytes`] / [`resident_reduce_bytes`]) exactly.

use h2_core::{sketch_construct, SketchConfig};
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{Runtime, TransferKind};
use h2_sched::{
    resident_reduce_bytes, resident_reduce_hook, staged_apply_bytes, DeviceFabric, FabricOp,
    Residency, UlvFabricPrecond,
};
use h2_solve::{pcg_with, IterResult, KrylovWorkspace, UlvFactor};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn line_points(n: usize) -> Vec<[f64; 3]> {
    (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
        }
    }
}

fn sym_hss(n: usize, leaf: usize) -> H2Matrix {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 2.0);
    h2
}

fn assert_bit_identical(a: &IterResult, b: &IterResult, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iteration counts");
    assert_eq!(a.history, b.history, "{what}: residual histories");
    assert_eq!(a.x.len(), b.x.len());
    for (i, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
        assert_eq!(
            xa.to_bits(),
            xb.to_bits(),
            "{what}: x[{i}] diverged bitwise"
        );
    }
}

#[test]
fn resident_solve_bit_identical_and_bytes_collapse() {
    const N: usize = 640;
    const D: usize = 4;
    let h2 = sym_hss(N, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let b: Vec<f64> = (0..N).map(|i| 1.0 + (0.013 * i as f64).sin()).collect();

    // Staged round-tripping on a synchronous fabric: every op and
    // preconditioner apply pays the O(n) vector staging.
    let staged_fabric = DeviceFabric::new(D);
    let (staged, staged_report) = {
        let op = FabricOp::new(&staged_fabric, &h2);
        let prec = UlvFabricPrecond::new(&staged_fabric, &ulv);
        assert_eq!(op.residency(), Residency::Staged);
        let mut ws = KrylovWorkspace::new(N);
        let res = pcg_with(&op, &prec, &b, 200, 1e-10, &mut ws);
        (res, staged_fabric.report("krylov staged"))
    };
    assert!(staged.converged, "staged PCG stalled");

    // Device-resident vectors on a *pipelined* fabric: the staging traffic
    // disappears; each global reduction charges one scalar allreduce.
    let resident_fabric = DeviceFabric::pipelined(D);
    let reduce_count = Arc::new(AtomicU64::new(0));
    let (resident, resident_report) = {
        let op = FabricOp::resident(&resident_fabric, &h2);
        let prec = UlvFabricPrecond::resident(&resident_fabric, &ulv);
        assert_eq!(op.residency(), Residency::Resident);
        let mut ws = KrylovWorkspace::new(N);
        let inner = resident_reduce_hook(&resident_fabric);
        let count = reduce_count.clone();
        ws.set_reduce_hook(Some(Arc::new(move || {
            count.fetch_add(1, Ordering::Relaxed);
            inner();
        })));
        let res = pcg_with(&op, &prec, &b, 200, 1e-10, &mut ws);
        (res, resident_fabric.report("krylov resident"))
    };

    // Same arithmetic, bit for bit — across residency AND pipeline mode.
    assert_bit_identical(&staged, &resident, "staged vs resident");

    // Staged VectorStage bytes: one full round trip per apply. PCG performs
    // `iterations + 1` operator applies (one in the exit residual) and
    // `iterations + 1` preconditioner applies (one before the loop).
    let applies = 2 * (staged.iterations as u64 + 1);
    let per_apply = staged_apply_bytes(N, 1, D, staged_fabric.wire());
    assert!(per_apply > 0);
    assert_eq!(
        staged_report.bytes_of_kind(TransferKind::VectorStage),
        applies * per_apply,
        "staged staging bytes must equal the closed form exactly"
    );

    // Resident VectorStage bytes: one scalar allreduce per global
    // reduction, nothing else.
    let reductions = reduce_count.load(Ordering::Relaxed);
    assert!(reductions > 0);
    assert_eq!(
        resident_report.bytes_of_kind(TransferKind::VectorStage),
        reductions * resident_reduce_bytes(D),
        "resident allreduce bytes must equal the closed form exactly"
    );

    // The headline: per-iteration fabric traffic strictly decreases (same
    // iteration count on both sides, so totals compare directly) — both for
    // the staging kind alone and for the whole solve.
    assert!(
        resident_report.bytes_of_kind(TransferKind::VectorStage)
            < staged_report.bytes_of_kind(TransferKind::VectorStage),
        "resident staging bytes must strictly decrease"
    );
    assert!(
        resident_report.total_comm_bytes() < staged_report.total_comm_bytes(),
        "resident total bytes must strictly decrease"
    );

    // One device stages nothing and reduces nothing across links.
    assert_eq!(staged_apply_bytes(N, 1, 1, staged_fabric.wire()), 0);
    assert_eq!(resident_reduce_bytes(1), 0);
}
