//! Property tests for the packed blocked GEMM against the retained naive
//! reference kernel.
//!
//! The packed kernel normalizes all four transpose combinations through its
//! packing buffers and pads edge tiles to full `MR x NR` registers, so the
//! dangerous inputs are exactly the ones exercised here: dimensions around
//! the microkernel tile (`0, 1, MR-1, MR, MR+1, ...`), the full alpha/beta
//! grid including the accumulate and overwrite cases, strided sub-views
//! whose leading dimension exceeds their row count, and random rectangular
//! shapes straddling the dispatch crossover. Agreement is required to
//! `1e-13` *relative* to the reference result.

use h2_dense::gemm::{MR, NR};
use h2_dense::{gaussian_mat, gemm, gemm_naive, Mat, Op};
use proptest::prelude::*;

const COEFFS: [f64; 3] = [0.0, 1.0, -2.5];

/// Relative max-norm gap between the packed dispatch path and the naive
/// reference on identical inputs.
fn packed_vs_naive_gap(ta: Op, tb: Op, alpha: f64, a: &Mat, b: &Mat, c0: &Mat, beta: f64) -> f64 {
    let mut c1 = c0.clone();
    let mut c2 = c0.clone();
    gemm(ta, tb, alpha, a.rf(), b.rf(), beta, c1.rm());
    gemm_naive(ta, tb, alpha, a.rf(), b.rf(), beta, c2.rm());
    let scale = c2.norm_max().max(1.0);
    let mut d = c1;
    d.axpy(-1.0, &c2);
    d.norm_max() / scale
}

/// Storage-shaped operand for `op(X)` of logical shape `r x c`.
fn operand(t: Op, r: usize, c: usize, seed: u64) -> Mat {
    match t {
        Op::NoTrans => gaussian_mat(r, c, seed),
        Op::Trans => gaussian_mat(c, r, seed),
    }
}

#[test]
fn tile_edge_shapes_all_combos_all_coeffs() {
    // Degenerate and tile-straddling dimensions around MR/NR.
    let dims = [0usize, 1, MR - 1, MR, MR + 1, 2 * MR + 3, 48];
    for &m in &dims {
        for &k in &dims {
            for &n in &dims {
                for ta in [Op::NoTrans, Op::Trans] {
                    for tb in [Op::NoTrans, Op::Trans] {
                        let a = operand(ta, m, k, 1 + (m * 31 + k) as u64);
                        let b = operand(tb, k, n, 2 + (k * 17 + n) as u64);
                        let c0 = gaussian_mat(m, n, 3 + (m + n) as u64);
                        for &alpha in &COEFFS {
                            for &beta in &COEFFS {
                                let gap = packed_vs_naive_gap(ta, tb, alpha, &a, &b, &c0, beta);
                                assert!(
                                    gap <= 1e-13,
                                    "gap {gap:.2e} for ({m},{k},{n}) {ta:?}{tb:?} \
                                     alpha={alpha} beta={beta}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn strided_subviews_match_reference() {
    // Operands and target embedded in larger parents: every view has
    // ld > rows, which the packing and the write-out must respect.
    let parent_a = gaussian_mat(150, 150, 41);
    let parent_b = gaussian_mat(150, 150, 42);
    let parent_c = gaussian_mat(150, 150, 43);
    for (m, k, n, r0, c0) in [
        (64usize, 80usize, 72usize, 3usize, 5usize),
        (MR + 1, 33, 2 * NR + 1, 17, 29),
        (96, 9, 40, 0, 1),
    ] {
        for ta in [Op::NoTrans, Op::Trans] {
            for tb in [Op::NoTrans, Op::Trans] {
                let (ar, ac) = match ta {
                    Op::NoTrans => (m, k),
                    Op::Trans => (k, m),
                };
                let (br, bc) = match tb {
                    Op::NoTrans => (k, n),
                    Op::Trans => (n, k),
                };
                let av = parent_a.view(r0, c0, ar, ac);
                let bv = parent_b.view(c0, r0, br, bc);
                let mut c1 = parent_c.clone();
                let mut c2 = parent_c.clone();
                gemm(ta, tb, -2.5, av, bv, 1.0, c1.view_mut(7, 11, m, n));
                gemm_naive(ta, tb, -2.5, av, bv, 1.0, c2.view_mut(7, 11, m, n));
                let scale = c2.norm_max().max(1.0);
                let mut d = c1;
                d.axpy(-1.0, &c2);
                assert!(
                    d.norm_max() / scale <= 1e-13,
                    "strided gap {} for ({m},{k},{n}) {ta:?}{tb:?}",
                    d.norm_max() / scale
                );
                // Writes must stay inside the target window: everything
                // outside it still matches the parent.
                for j in 0..150 {
                    for i in 0..150 {
                        let inside = (7..7 + m).contains(&i) && (11..11 + n).contains(&j);
                        if !inside {
                            assert_eq!(d[(i, j)], 0.0, "out-of-window write at ({i},{j})");
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random rectangular shapes straddling the crossover, random
    /// coefficient picks from the grid, all transpose combos.
    #[test]
    fn random_shapes_match_reference(
        seed in 0u64..10_000,
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        ca in 0usize..3,
        cb in 0usize..3,
        ta_t in proptest::bool::ANY,
        tb_t in proptest::bool::ANY,
    ) {
        let ta = if ta_t { Op::Trans } else { Op::NoTrans };
        let tb = if tb_t { Op::Trans } else { Op::NoTrans };
        let a = operand(ta, m, k, seed);
        let b = operand(tb, k, n, seed + 1);
        let c0 = gaussian_mat(m, n, seed + 2);
        let gap = packed_vs_naive_gap(ta, tb, COEFFS[ca], &a, &b, &c0, COEFFS[cb]);
        prop_assert!(gap <= 1e-13, "gap {gap:.2e} for ({m},{k},{n}) {ta:?}{tb:?}");
    }
}
