//! Solver-sweep acceptance tests: the fabric-sharded ULV solve must
//! reproduce the in-process solve exactly for device counts 1, 2, 3 and 7
//! in both side layouts and both pipeline modes, and its transfer byte
//! totals must *equal* the `simulate_solve` prediction on the
//! factorization's own `SolveSpec` — the solver arm of the
//! simulator-equivalence suite (asserted in CI like construction/matvec).

use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{DeviceModel, PipelineMode, Runtime, TransferKind};
use h2_sched::{
    compare_solve_with_simulator, shard_ulv_solve, shard_ulv_solve_with_report, DeviceFabric,
    FabricOp, LinkModel, UlvFabricPrecond,
};
use h2_solve::{gmres, pcg, Identity, UlvFactor};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn line_points(n: usize) -> Vec<[f64; 3]> {
    (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
        }
    }
}

/// Shifted symmetric HSS over a weak 1-D partition.
fn sym_hss(n: usize, leaf: usize) -> H2Matrix {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 2.0);
    h2
}

/// Shifted unsymmetric (two-stream) HSS with a convection kernel.
fn unsym_hss(n: usize, leaf: usize) -> H2Matrix {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-10,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 3.0);
    h2
}

fn assert_bitwise_equal(got: &h2_dense::Mat, want: &h2_dense::Mat, what: &str) {
    assert_eq!(got.rows(), want.rows());
    assert_eq!(got.cols(), want.cols());
    let mut d = got.clone();
    d.axpy(-1.0, want);
    assert_eq!(d.norm_max(), 0.0, "{what}: sharded sweep diverged");
}

#[test]
fn sharded_sweep_matches_inprocess_sym_and_unsym() {
    let sym = sym_hss(640, 32);
    let unsym = unsym_hss(512, 32);
    for (h2, n, tag) in [(&sym, 640usize, "sym"), (&unsym, 512usize, "unsym")] {
        let ulv = UlvFactor::new(h2).unwrap();
        let b = gaussian_mat(n, 3, 71);
        let want = ulv.solve(&b);
        for devices in DEVICE_COUNTS {
            let fabric = DeviceFabric::new(devices);
            let got = shard_ulv_solve(&fabric, &ulv, &b);
            assert_bitwise_equal(&got, &want, &format!("{tag} D={devices}"));
        }
    }
}

#[test]
fn sharded_sweep_bytes_equal_simulator() {
    let sym = sym_hss(640, 32);
    let unsym = unsym_hss(512, 32);
    let model = DeviceModel::default();
    for (h2, n, tag) in [(&sym, 640usize, "sym"), (&unsym, 512usize, "unsym")] {
        let ulv = UlvFactor::new(h2).unwrap();
        let b = gaussian_mat(n, 4, 72);
        let spec = ulv.solve_spec(4);
        for devices in DEVICE_COUNTS {
            let fabric = DeviceFabric::new(devices);
            let (_, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
            let cmp = compare_solve_with_simulator(&report, &spec, &model);
            assert!(
                cmp.bytes_match(),
                "{tag} D={devices}: solve traffic diverges: measured {} vs predicted {}",
                cmp.measured_bytes,
                cmp.predicted_bytes
            );
            assert!(
                cmp.flops_rel_err() < 1e-9,
                "{tag} D={devices}: solve work diverges ({:.3e} rel)",
                cmp.flops_rel_err()
            );
            let ratio = cmp.makespan_ratio();
            assert!(
                (1.0 / 3.0..=3.0).contains(&ratio),
                "{tag} D={devices}: makespan ratio {ratio} outside the 3x band"
            );
            if devices == 1 {
                assert_eq!(
                    report.total_comm_bytes(),
                    0,
                    "one device never communicates"
                );
            } else {
                assert!(
                    report.bytes_of_kind(TransferKind::ChildGather) > 0,
                    "{tag} D={devices}: forward pass-up must move retained blocks"
                );
                assert!(
                    report.bytes_of_kind(TransferKind::PartialSum) > 0,
                    "{tag} D={devices}: backward distribution must move solutions"
                );
            }
        }
    }
}

#[test]
fn pipelined_sweep_is_bit_identical_and_bytes_equal() {
    let h2 = sym_hss(640, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let b = gaussian_mat(640, 2, 73);
    let want = ulv.solve(&b);
    let model = DeviceModel::default();
    let spec = ulv.solve_spec(2);
    for devices in [2usize, 7] {
        let fabric =
            DeviceFabric::with_config(devices, PipelineMode::Pipelined, LinkModel::default());
        let (got, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
        assert_bitwise_equal(&got, &want, &format!("pipelined D={devices}"));
        let cmp = compare_solve_with_simulator(&report, &spec, &model);
        assert!(
            cmp.bytes_match(),
            "pipelined D={devices}: bytes {} vs {}",
            cmp.measured_bytes,
            cmp.predicted_bytes
        );
    }
}

#[test]
fn zero_node_devices_are_harmless_in_sweeps() {
    // Narrow upper levels on 7 devices: most chunks are empty there.
    let h2 = sym_hss(300, 16);
    let tree = &h2.tree;
    assert!(
        (0..=tree.leaf_level()).any(|l| tree.level_len(l) < 7),
        "test geometry must have a level narrower than the device count"
    );
    let ulv = UlvFactor::new(&h2).unwrap();
    let b = gaussian_mat(300, 2, 74);
    let want = ulv.solve(&b);
    let fabric = DeviceFabric::new(7);
    let got = shard_ulv_solve(&fabric, &ulv, &b);
    assert_bitwise_equal(&got, &want, "zero-node D=7");
}

#[test]
fn fabric_op_routes_krylov_matvecs_and_sweep_preconditions() {
    // GMRES on the fabric-sharded operator with the fabric-sharded ULV
    // sweep as preconditioner: the full solver stack on the fabric.
    let h2 = unsym_hss(512, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let matvec_fabric = DeviceFabric::new(3);
    let sweep_fabric = DeviceFabric::new(2);
    let op = FabricOp::new(&matvec_fabric, &h2);
    let prec = UlvFabricPrecond::new(&sweep_fabric, &ulv);
    let b: Vec<f64> = (0..512).map(|i| (0.02 * i as f64).cos()).collect();
    let res = gmres(&op, &prec, &b, 30, 200, 1e-10);
    assert!(
        res.converged,
        "fabric GMRES residual {}",
        res.relative_residual
    );
    assert!(
        res.iterations <= 3,
        "exact-inverse preconditioning must converge almost immediately ({} its)",
        res.iterations
    );
    // The matvec fabric actually moved coupling traffic.
    let report = matvec_fabric.report("krylov tail");
    assert!(report.bytes_of_kind(TransferKind::OmegaFetch) > 0);

    // And a plain identity-preconditioned run agrees with the in-process
    // operator's solution.
    let res_plain = gmres(&h2, &Identity { n: 512 }, &b, 30, 400, 1e-10);
    let mut d = 0.0f64;
    for i in 0..512 {
        d = d.max((res.x[i] - res_plain.x[i]).abs());
    }
    assert!(d < 1e-6, "fabric and in-process solutions disagree by {d}");
}

#[test]
fn sweep_preconditioner_in_pcg_on_symmetric_operator() {
    let h2 = sym_hss(512, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let fabric = DeviceFabric::new(2);
    let prec = UlvFabricPrecond::new(&fabric, &ulv);
    let b: Vec<f64> = (0..512).map(|i| (0.01 * i as f64).sin()).collect();
    let plain = pcg(&h2, &Identity { n: 512 }, &b, 400, 1e-10);
    let fast = pcg(&h2, &prec, &b, 400, 1e-10);
    assert!(fast.converged);
    assert!(
        fast.iterations < plain.iterations.max(2),
        "sweep precond {} its vs plain {}",
        fast.iterations,
        plain.iterations
    );
}
