//! Facade crate re-exporting the whole h2sketch workspace.
pub use h2_baselines as baselines;
pub use h2_core as sketch;
pub use h2_dense as dense;
pub use h2_frontal as frontal;
pub use h2_kernels as kernels;
pub use h2_matrix as matrix;
pub use h2_runtime as runtime;
pub use h2_sched as sched;
pub use h2_solve as solve;
pub use h2_tree as tree;
