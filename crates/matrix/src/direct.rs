//! Direct (entry-evaluation) H2 construction via proxy-column row IDs.
//!
//! The paper's experiments feed Algorithm 1 with a *fast black-box sampler*;
//! for the covariance/IE kernels they use the H2 matvec of a matrix already
//! constructed by H2Opus's entry-based constructor. This module is our
//! equivalent substrate: a bottom-up skeletonization where each cluster's
//! row basis is computed from an ID of `K(I_τ, proxy)` with proxy columns
//! drawn from the cluster's far field (the ASKIT/H2Pack-style construction).
//! It requires only the [`EntryAccess`] input — no sketching operator — and
//! bootstraps the reference operators used in benchmarks; it also serves as
//! an independent cross-check of the sketching constructor in tests.

use crate::format::H2Matrix;
use h2_dense::cpqr::{row_id, Truncation};
use h2_dense::{EntryAccess, Mat};
use h2_tree::{ClusterTree, Partition};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// Configuration of the direct constructor.
#[derive(Clone, Copy, Debug)]
pub struct DirectConfig {
    /// Per-block relative ID tolerance.
    pub tol: f64,
    /// Number of proxy columns sampled from the far field per node.
    pub n_proxy: usize,
    /// Hard cap on per-node rank.
    pub max_rank: usize,
    /// RNG seed for proxy selection.
    pub seed: u64,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            tol: 1e-9,
            n_proxy: 160,
            max_rank: 256,
            seed: 0x5EED,
        }
    }
}

/// Construct an H2 matrix from entry evaluations only.
pub fn direct_construct(
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    cfg: &DirectConfig,
) -> H2Matrix {
    let mut h2 = H2Matrix::new_shell(tree.clone(), partition.clone());
    let leaf_level = tree.leaf_level();
    let top = partition.top_far_level(&tree).unwrap_or(leaf_level);

    // Bottom-up skeletonization, level by level.
    for l in (top..=leaf_level).rev() {
        let ids: Vec<usize> = tree.level(l).collect();
        let results: Vec<(usize, Mat, Vec<usize>)> = ids
            .par_iter()
            .map(|&id| {
                // Candidate rows: all leaf indices (at the leaf level) or the
                // children's skeletons (inner levels — nested basis).
                let rows: Vec<usize> = if l == leaf_level {
                    let (b, e) = tree.range(id);
                    (b..e).collect()
                } else {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    h2.skel[c1]
                        .iter()
                        .chain(h2.skel[c2].iter())
                        .copied()
                        .collect()
                };
                let far = partition.far_field_ranges(&tree, id);
                let far_total: usize = far.iter().map(|&(b, e)| e - b).sum();
                if far_total == 0 || rows.is_empty() {
                    // No admissible interaction anywhere above: empty basis.
                    return (id, Mat::zeros(rows.len(), 0), Vec::new());
                }
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let proxies = sample_from_ranges(&far, cfg.n_proxy.min(far_total), &mut rng);
                let sample = gen.block_mat(&rows, &proxies);
                let mut id_res = row_id(&sample, Truncation::Relative(cfg.tol));
                if id_res.rank() > cfg.max_rank {
                    id_res = row_id(&sample, Truncation::Rank(cfg.max_rank));
                }
                let skel: Vec<usize> = id_res.skel.iter().map(|&r| rows[r]).collect();
                (id, id_res.u, skel)
            })
            .collect();
        for (id, u, skel) in results {
            h2.basis[id] = u;
            h2.skel[id] = skel;
        }
    }

    fill_blocks(gen, &tree, &partition, &mut h2);
    h2
}

/// Evaluate all coupling and dense blocks of a skeletonized shell
/// (shared with tests that build bases another way).
pub fn fill_blocks(
    gen: &dyn EntryAccess,
    tree: &ClusterTree,
    partition: &Partition,
    h2: &mut H2Matrix,
) {
    // Coupling blocks at the skeleton indices, one per unordered pair.
    let mut far_pairs: Vec<(usize, usize)> = Vec::new();
    for (s, list) in partition.far_of.iter().enumerate() {
        for &t in list.iter().filter(|&&t| s <= t) {
            far_pairs.push((s, t));
        }
    }
    let far_blocks: Vec<Mat> = far_pairs
        .par_iter()
        .map(|&(s, t)| gen.block_mat(&h2.skel[s], &h2.skel[t]))
        .collect();
    for ((s, t), b) in far_pairs.into_iter().zip(far_blocks) {
        h2.coupling.insert(s, t, b);
    }

    // Dense leaf blocks.
    let mut near_pairs: Vec<(usize, usize)> = Vec::new();
    for (s, list) in partition.near_of.iter().enumerate() {
        for &t in list.iter().filter(|&&t| s <= t) {
            near_pairs.push((s, t));
        }
    }
    let near_blocks: Vec<Mat> = near_pairs
        .par_iter()
        .map(|&(s, t)| {
            let (sb, se) = tree.range(s);
            let (tb, te) = tree.range(t);
            let rows: Vec<usize> = (sb..se).collect();
            let cols: Vec<usize> = (tb..te).collect();
            gen.block_mat(&rows, &cols)
        })
        .collect();
    for ((s, t), b) in near_pairs.into_iter().zip(near_blocks) {
        h2.dense.insert(s, t, b);
    }
}

/// Sample `k` distinct indices (sorted) from a union of disjoint intervals.
fn sample_from_ranges(ranges: &[(usize, usize)], k: usize, rng: &mut SmallRng) -> Vec<usize> {
    let total: usize = ranges.iter().map(|&(b, e)| e - b).sum();
    if k >= total {
        let mut all = Vec::with_capacity(total);
        for &(b, e) in ranges {
            all.extend(b..e);
        }
        return all;
    }
    // Draw with replacement into a set until k distinct samples.
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        let mut r = rng.random_range(0..total);
        for &(b, e) in ranges {
            let w = e - b;
            if r < w {
                picked.insert(b + r);
                break;
            }
            r -= w;
        }
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_from_ranges_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ranges = [(0usize, 5usize), (10, 12), (20, 30)];
        let s = sample_from_ranges(&ranges, 8, &mut rng);
        assert_eq!(s.len(), 8);
        for &i in &s {
            assert!(
                ranges.iter().any(|&(b, e)| i >= b && i < e),
                "index {i} outside ranges"
            );
        }
        // sorted + distinct
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn sample_all_when_k_exceeds_total() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = sample_from_ranges(&[(3, 6), (8, 9)], 100, &mut rng);
        assert_eq!(s, vec![3, 4, 5, 8]);
    }
}
