//! A minimal JSON value type with a serializer and a recursive-descent
//! parser — just enough for the Chrome trace exporter, the unified bench
//! report schema, and the CI trace validator, with no external crates.
//!
//! Numbers are stored as `f64` but serialized without a fractional part
//! when they are exact integers below 2^53, so byte counts and launch
//! totals round-trip exactly (every total this repo asserts on is far
//! below that bound).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (the Chrome trace format
/// is order-insensitive, but stable output makes diffs readable).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Exact integer constructor (u64 counts below 2^53 round-trip).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric member as an exact u64 (fails on negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007199254740992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 9.007199254740992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_integers() {
        let v = Json::obj(vec![
            ("bytes", Json::u64(123_456_789_012)),
            ("label", Json::str("construct L3")),
            ("ratio", Json::Num(1.75)),
            ("items", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = v.dump();
        assert!(text.contains("123456789012"), "no exponent form: {text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("bytes").unwrap().as_u64(), Some(123_456_789_012));
        let pretty = Json::parse(&v.pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn escapes_and_rejects_trailing_garbage() {
        let v = Json::str("a\"b\\c\nd\tと");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back, v);
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap().as_str(), Some("\u{e9}"));
    }
}
