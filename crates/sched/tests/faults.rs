//! Chaos acceptance for the fault-tolerant fabric: under every seeded
//! [`FaultPlan`] of the grid (each fault kind × device counts × both
//! pipeline modes) the construction must complete **bit-identical** to
//! the fault-free run, with measured bytes — retry traffic included —
//! exactly equal to the extended simulator's prediction. Plus the typed
//! timeout path, the panic-safety regression (fabric reusable after a
//! propagated job panic), deterministic replay, and exact retry
//! accounting at rate 1.0.

use h2_core::{level_specs, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_runtime::{DeviceModel, PipelineMode, Precision, Transfer, TransferKind};
use h2_sched::{
    compare_with_simulator_faulted, shard_construct, shard_construct_unsym, DeviceFabric,
    FabricError, FaultKind, FaultPlan,
};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xC4A0_5EED;

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        ..Default::default()
    }
}

fn fabric_for(devices: usize, mode: PipelineMode) -> Arc<DeviceFabric> {
    match mode {
        PipelineMode::Synchronous => DeviceFabric::new(devices),
        PipelineMode::Pipelined => DeviceFabric::pipelined(devices),
    }
}

/// The acceptance grid: every fault kind × D ∈ {1, 2, 4} × both modes.
/// One fault-free baseline (results are already pinned identical across
/// device counts and modes by `tests/pipeline.rs`) anchors bit-identity.
#[test]
fn chaos_grid_bit_identical_and_bytes_exact() {
    let n = 1400;
    let (tree, part, km) = sym_problem(n, 16, 107);
    let model = DeviceModel::default();
    let clean = DeviceFabric::new(1);
    let (h2_clean, stats_clean, _) =
        shard_construct(&clean, &km, &km, tree.clone(), part.clone(), &cfg());
    assert_eq!(stats_clean.rounds, 0, "grid config must be non-adaptive");
    let probe = gaussian_mat(n, 3, 108);
    let want = h2_clean.apply_permuted_mat(&probe);

    for kind in FaultKind::ALL {
        for devices in [1usize, 2, 4] {
            for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
                let plan = Arc::new(FaultPlan::chaos(SEED, kind));
                let fabric = fabric_for(devices, mode);
                fabric.set_fault_plan(Some(plan.clone()));
                let (h2, stats, report) =
                    shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
                let ctx = format!("kind={} D={devices} mode={mode:?}", kind.name());

                assert_eq!(
                    h2.apply_permuted_mat(&probe),
                    want,
                    "{ctx}: faulted construction must be bit-identical to fault-free"
                );

                let cmp = compare_with_simulator_faulted(
                    &report,
                    &level_specs(&h2),
                    stats.total_samples,
                    &model,
                    &plan,
                );
                assert!(
                    cmp.bytes_match(),
                    "{ctx}: measured {} bytes vs extended simulator {} (base {} + retries {})",
                    cmp.base.measured_bytes,
                    cmp.predicted_bytes(),
                    cmp.base.predicted_bytes,
                    cmp.predicted_retry_bytes
                );

                let counters = fabric.fault_counters();
                match kind {
                    FaultKind::TransferDrop | FaultKind::TransferCorrupt if devices > 1 => {
                        assert!(
                            counters.retries > 0,
                            "{ctx}: a 0.2 rate over real traffic must retry at least once"
                        );
                        assert!(
                            cmp.predicted_retry_bytes > 0,
                            "{ctx}: the census must predict the same nonzero retry traffic"
                        );
                    }
                    FaultKind::DeviceFailStop if devices > 1 => {
                        assert!(
                            fabric.reshard_version() > 0,
                            "{ctx}: the scheduled fail-stop must reshard"
                        );
                        assert!(
                            stats.recoveries >= 1,
                            "{ctx}: the level loop must observe the reshard at a checkpoint"
                        );
                        assert!(
                            stats.checkpoints > 0,
                            "{ctx}: sharded construction must seal per-level checkpoints"
                        );
                    }
                    FaultKind::KernelPoison => {
                        assert!(
                            counters.recoveries > 0,
                            "{ctx}: a 0.15 poison rate over 64 columns must heal at least once"
                        );
                    }
                    _ => {}
                }
                assert!(
                    fabric.take_fault_error().is_none(),
                    "{ctx}: bounded recovery must leave no terminal error"
                );
            }
        }
    }
}

/// The unsymmetric two-stream engine through the harshest transfer kind.
#[test]
fn chaos_unsym_drop_bit_identical() {
    let n = 700;
    let pts = h2_tree::uniform_cube(n, 109);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let clean = DeviceFabric::new(1);
    let (h2c, _, _) = shard_construct_unsym(&clean, &km, &km, tree.clone(), part.clone(), &cfg());
    let probe = gaussian_mat(n, 2, 110);
    let want = h2c.apply_permuted_mat(&probe);
    let model = DeviceModel::default();
    for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
        let plan = Arc::new(FaultPlan::chaos(SEED ^ 1, FaultKind::TransferDrop));
        let fabric = fabric_for(4, mode);
        fabric.set_fault_plan(Some(plan.clone()));
        let (h2, stats, report) =
            shard_construct_unsym(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        assert_eq!(h2.apply_permuted_mat(&probe), want, "mode={mode:?}");
        let cmp = compare_with_simulator_faulted(
            &report,
            &level_specs(&h2),
            stats.total_samples,
            &model,
            &plan,
        );
        assert!(
            cmp.bytes_match(),
            "mode={mode:?}: measured {} vs predicted {}",
            cmp.base.measured_bytes,
            cmp.predicted_bytes()
        );
        assert!(cmp.predicted_retry_bytes > 0);
    }
}

/// Two runs under the same plan replay the identical fault sequence:
/// byte-for-byte equal traffic and equal event counters.
#[test]
fn fault_injection_replays_deterministically() {
    let (tree, part, km) = sym_problem(600, 16, 111);
    let run = || {
        let fabric = DeviceFabric::pipelined(2);
        fabric.set_fault_plan(Some(Arc::new(FaultPlan::chaos(
            SEED ^ 2,
            FaultKind::TransferCorrupt,
        ))));
        let (_, _, report) = shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        (
            report.total_comm_bytes(),
            report.total_comm_messages(),
            fabric.fault_counters(),
        )
    };
    let (b1, m1, c1) = run();
    let (b2, m2, c2) = run();
    assert_eq!(b1, b2, "replayed byte totals must be identical");
    assert_eq!(m1, m2, "replayed message counts must be identical");
    assert_eq!(c1, c2, "replayed fault counters must be identical");
}

/// Exact retry arithmetic: at drop rate 1.0 with `max_retries = 2` every
/// transfer fails attempts 0 and 1 and succeeds on attempt 2, so the
/// queue carries exactly 3x the bytes and the retry counter 2 per
/// transfer — in both service paths (inline and prefetched).
#[test]
fn retry_accounting_is_exact_at_rate_one() {
    let t = Transfer {
        src: 0,
        dst: 1,
        bytes: 4096,
        kind: TransferKind::OmegaFetch,
        prec: Precision::F64,
    };
    for prefetched in [false, true] {
        let fabric = DeviceFabric::new(2);
        fabric.set_fault_plan(Some(Arc::new(
            FaultPlan::new(SEED ^ 3).with_drops(1.0).with_max_retries(2),
        )));
        if prefetched {
            let _ticket = fabric.prefetch_transfer(t);
        } else {
            fabric.record_transfer(t);
        }
        let report = fabric.report("retry accounting");
        assert_eq!(
            report.total_comm_bytes(),
            3 * t.bytes,
            "prefetched={prefetched}: original + 2 charged retries"
        );
        assert_eq!(report.total_comm_messages(), 3);
        let counters = fabric.fault_counters();
        assert_eq!(counters.retries, 2);
        assert_eq!(counters.faults, 2);
    }
}

/// A dependency that outlives the armed ticket deadline surfaces as a
/// typed [`FabricError::TransferTimeout`] at the barrier — and the
/// fabric stays fully usable afterwards.
#[test]
fn ticket_deadline_turns_hang_into_typed_error() {
    let fabric = DeviceFabric::pipelined(2);
    fabric.set_transfer_delay(Some(Arc::new(|_: &Transfer| Duration::from_millis(80))));
    fabric.set_ticket_deadline(Some(Duration::from_millis(5)));
    let t = Transfer {
        src: 0,
        dst: 1,
        bytes: 1 << 20,
        kind: TransferKind::OmegaFetch,
        prec: Precision::F64,
    };
    let ticket = fabric.prefetch_transfer(t);
    assert_ne!(ticket, 0);
    let ran = AtomicUsize::new(0);
    // SAFETY: the barrier in the catch_unwind below (and the reset after)
    // runs before `ran` leaves scope.
    unsafe {
        fabric.enqueue(1, &[ticket], {
            let ran = &ran;
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        });
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fabric.flush()));
    assert!(err.is_err(), "the timeout must surface at the barrier");
    match fabric.take_fault_error() {
        Some(FabricError::TransferTimeout {
            ticket: stuck,
            waited_nanos,
        }) => {
            assert_eq!(stuck, ticket);
            assert!(
                waited_nanos >= 5_000_000,
                "must have waited the deadline out"
            );
        }
        other => panic!("expected TransferTimeout, got {other:?}"),
    }
    assert_eq!(
        ran.load(Ordering::SeqCst),
        1,
        "the dependent job proceeds after diagnosis (virtual transfer)"
    );
    // Reusable: a fresh accounting scope runs cleanly.
    fabric.set_transfer_delay(None);
    fabric.set_ticket_deadline(None);
    fabric.reset();
    let hits = AtomicUsize::new(0);
    fabric.run_jobs(
        (0..2)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as h2_runtime::ShardJob<'_>
            })
            .collect(),
    );
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    assert!(fabric.take_fault_error().is_none());
}

/// Panic-safety regression: a deliberately panicking kernel closure in a
/// pipelined chain scope propagates at the barrier, and the fabric —
/// every lock crossed by the unwinding host thread included — stays
/// usable: reset, rerun, report.
#[test]
fn panicking_job_leaves_fabric_reusable() {
    let fabric = DeviceFabric::pipelined(2);
    for round in 0..2 {
        fabric.chain_begin();
        // SAFETY: chain_end below barriers before any borrow ends.
        unsafe {
            fabric.enqueue(0, &[], Box::new(|| panic!("deliberate kernel panic")));
            fabric.enqueue(1, &[], Box::new(|| {}));
        }
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fabric.chain_end()));
        assert!(
            caught.is_err(),
            "round {round}: the job panic must propagate"
        );
        // The poisoned-flag recovery is the regression under test: every
        // subsequent fabric operation must work as if the panic never
        // happened structurally.
        fabric.reset();
        let hits = AtomicUsize::new(0);
        fabric.run_jobs(
            (0..2)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as h2_runtime::ShardJob<'_>
                })
                .collect(),
        );
        assert_eq!(hits.load(Ordering::SeqCst), 2, "round {round}");
        let report = fabric.report("after panic");
        assert!(report.epochs.len() <= 2);
        fabric.reset();
    }
}
