//! Unsymmetric kernel operators.
//!
//! The paper's test matrices are symmetric, but the construction "can be
//! easily extended to un-symmetric ... matrices" (§II.A). These operators
//! provide realistic unsymmetric test problems whose far field is still
//! numerically low rank (smooth away from the diagonal):
//!
//! * [`ConvectionKernel`] — a diffusion kernel with a directional drift
//!   term, `K(x,y) = exp(-r/l) · (1 + v·(x - y))`, the structure of a
//!   convection-diffusion volume operator;
//! * [`ScaledKernelMatrix`] — a two-sided diagonal scaling `D_r K D_c` of a
//!   symmetric kernel matrix, the structure produced by row equilibration
//!   or non-Galerkin discretizations.

use crate::Kernel;
use h2_dense::{EntryAccess, LinOp, MatMut, MatRef};
use h2_tree::{dist, Point};
use rayon::prelude::*;

/// A general (possibly unsymmetric) kernel function of two points.
pub trait Kernel2: Sync + Send {
    /// Evaluate `K(x, y)` for distinct points.
    fn eval2(&self, x: &Point, y: &Point) -> f64;

    /// Value for coincident points.
    fn diag(&self) -> f64;
}

/// Exponential diffusion with a directional drift:
/// `K(x, y) = exp(-|x-y|/l) · (1 + v · (x - y))`.
///
/// The drift term is antisymmetric in `(x, y)`, so `K(x,y) ≠ K(y,x)` while
/// the function stays smooth away from the diagonal — admissible blocks keep
/// the low numerical rank the construction relies on.
#[derive(Clone, Copy, Debug)]
pub struct ConvectionKernel {
    /// Correlation length of the diffusive part.
    pub l: f64,
    /// Drift velocity.
    pub v: [f64; 3],
}

impl Default for ConvectionKernel {
    fn default() -> Self {
        ConvectionKernel { l: 0.2, v: [0.4, -0.25, 0.1] }
    }
}

impl Kernel2 for ConvectionKernel {
    fn eval2(&self, x: &Point, y: &Point) -> f64 {
        let r = dist(x, y);
        let drift: f64 = (0..3).map(|c| self.v[c] * (x[c] - y[c])).sum();
        (-r / self.l).exp() * (1.0 + drift)
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// A kernel matrix for a general two-point kernel, in tree-permuted order.
pub struct UnsymKernelMatrix<K: Kernel2> {
    pub kernel: K,
    pub points: Vec<Point>,
}

impl<K: Kernel2> UnsymKernelMatrix<K> {
    pub fn new(kernel: K, points: Vec<Point>) -> Self {
        UnsymKernelMatrix { kernel, points }
    }

    pub fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn value(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.kernel.diag();
        }
        let x = &self.points[i];
        let y = &self.points[j];
        if dist(x, y) == 0.0 {
            self.kernel.diag()
        } else {
            self.kernel.eval2(x, y)
        }
    }

    fn apply_dir(&self, x: MatRef<'_>, y: MatMut<'_>, transpose: bool) {
        let n = self.n();
        assert_eq!(x.rows(), n);
        assert_eq!(y.rows(), n);
        let d = x.cols();
        let mut cols: Vec<MatMut<'_>> = Vec::with_capacity(d);
        let mut rest = y;
        for _ in 0..d {
            let (head, tail) = rest.split_cols(1);
            cols.push(head);
            rest = tail;
        }
        cols.into_par_iter().enumerate().for_each(|(j, mut yj)| {
            let xj = x.col(j);
            for i in 0..n {
                let mut s = 0.0;
                for (l, xl) in xj.iter().enumerate() {
                    let v = if transpose { self.value(l, i) } else { self.value(i, l) };
                    s += v * xl;
                }
                *yj.at_mut(i, 0) = s;
            }
        });
    }
}

impl<K: Kernel2> EntryAccess for UnsymKernelMatrix<K> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.value(i, j)
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        assert_eq!(out.rows(), rows.len());
        assert_eq!(out.cols(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            let col = out.col_mut(jj);
            for (ii, &i) in rows.iter().enumerate() {
                col[ii] = self.value(i, j);
            }
        }
    }
}

impl<K: Kernel2> LinOp for UnsymKernelMatrix<K> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    /// Exact dense product, O(N² d): ground truth for tests.
    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_dir(x, y, false);
    }

    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_dir(x, y, true);
    }
}

/// Two-sided diagonal scaling `D_r K D_c` of a symmetric kernel matrix.
pub struct ScaledKernelMatrix<K: Kernel> {
    pub inner: crate::KernelMatrix<K>,
    /// Row scaling `D_r` (length N).
    pub row_scale: Vec<f64>,
    /// Column scaling `D_c` (length N).
    pub col_scale: Vec<f64>,
}

impl<K: Kernel> ScaledKernelMatrix<K> {
    pub fn new(inner: crate::KernelMatrix<K>, row_scale: Vec<f64>, col_scale: Vec<f64>) -> Self {
        assert_eq!(inner.n(), row_scale.len());
        assert_eq!(inner.n(), col_scale.len());
        ScaledKernelMatrix { inner, row_scale, col_scale }
    }

    pub fn n(&self) -> usize {
        self.inner.n()
    }
}

impl<K: Kernel> EntryAccess for ScaledKernelMatrix<K> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.row_scale[i] * self.inner.entry(i, j) * self.col_scale[j]
    }
}

impl<K: Kernel> LinOp for ScaledKernelMatrix<K> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        // y = D_r K D_c x
        let n = self.n();
        let d = x.cols();
        let mut xs = x.to_mat();
        for j in 0..d {
            let col = xs.col_mut(j);
            for i in 0..n {
                col[i] *= self.col_scale[i];
            }
        }
        self.inner.apply(xs.rf(), y.rb_mut());
        for j in 0..d {
            let col = y.col_mut(j);
            for i in 0..n {
                col[i] *= self.row_scale[i];
            }
        }
    }

    fn apply_transpose(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        // (D_r K D_c)^T = D_c K D_r (K symmetric)
        let n = self.n();
        let d = x.cols();
        let mut xs = x.to_mat();
        for j in 0..d {
            let col = xs.col_mut(j);
            for i in 0..n {
                col[i] *= self.row_scale[i];
            }
        }
        self.inner.apply(xs.rf(), y.rb_mut());
        for j in 0..d {
            let col = y.col_mut(j);
            for i in 0..n {
                col[i] *= self.col_scale[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentialKernel, KernelMatrix};
    use h2_dense::{gaussian_mat, Mat};
    use h2_tree::uniform_cube;

    #[test]
    fn convection_kernel_is_unsymmetric() {
        let k = ConvectionKernel::default();
        let x = [0.1, 0.2, 0.3];
        let y = [0.7, 0.1, 0.5];
        let a = k.eval2(&x, &y);
        let b = k.eval2(&y, &x);
        assert!((a - b).abs() > 1e-3, "drift must break symmetry: {a} vs {b}");
    }

    #[test]
    fn unsym_apply_matches_dense() {
        let pts = uniform_cube(80, 201);
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let dense = Mat::from_fn(80, 80, |i, j| km.entry(i, j));
        let x = gaussian_mat(80, 3, 202);
        let y = km.apply_mat(&x);
        let want = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::NoTrans, dense.rf(), x.rf());
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
    }

    #[test]
    fn unsym_apply_transpose_matches_dense() {
        let pts = uniform_cube(70, 203);
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let dense = Mat::from_fn(70, 70, |i, j| km.entry(i, j));
        let x = gaussian_mat(70, 2, 204);
        let mut y = Mat::zeros(70, 2);
        km.apply_transpose(x.rf(), y.rm());
        let want = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, dense.rf(), x.rf());
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
    }

    #[test]
    fn scaled_kernel_entries_and_apply_agree() {
        let pts = uniform_cube(60, 205);
        let inner = KernelMatrix::new(ExponentialKernel::default(), pts);
        let dr: Vec<f64> = (0..60).map(|i| 1.0 + 0.01 * i as f64).collect();
        let dc: Vec<f64> = (0..60).map(|i| 2.0 - 0.02 * i as f64).collect();
        let sk = ScaledKernelMatrix::new(inner, dr, dc);
        let dense = Mat::from_fn(60, 60, |i, j| sk.entry(i, j));
        let x = gaussian_mat(60, 2, 206);
        let y = sk.apply_mat(&x);
        let want = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::NoTrans, dense.rf(), x.rf());
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);

        // transpose path
        let mut yt = Mat::zeros(60, 2);
        sk.apply_transpose(x.rf(), yt.rm());
        let want_t = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, dense.rf(), x.rf());
        let mut dt = yt;
        dt.axpy(-1.0, &want_t);
        assert!(dt.norm_max() < 1e-11);
    }

    #[test]
    fn convection_far_blocks_low_rank() {
        // Separated clusters: the unsymmetric far block must still compress.
        let mut pts = uniform_cube(64, 207);
        for p in pts.iter_mut().take(32) {
            for c in p.iter_mut() {
                *c *= 0.2;
            }
        }
        for p in pts.iter_mut().skip(32) {
            for c in p.iter_mut() {
                *c = 0.8 + 0.2 * *c;
            }
        }
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let rows: Vec<usize> = (0..32).collect();
        let cols: Vec<usize> = (32..64).collect();
        let b = km.block_mat(&rows, &cols);
        let f = h2_dense::svd(&b);
        let rel_rank = f.s.iter().take_while(|&&s| s > 1e-8 * f.s[0]).count();
        assert!(rel_rank <= 24, "unsym far block rank {rel_rank}");
    }
}
