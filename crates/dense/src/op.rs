//! Abstract linear operators and spectral-norm estimation.
//!
//! [`LinOp`] is the "black-box sketching operator" interface of the paper:
//! anything that can compute `Y = K Ω` for a block of vectors. [`EntryAccess`]
//! is the companion "entry evaluation function" used by `batchedGen`.
//! Kernel matrices, H2 matrices, dense matrices, low-rank updates and frontal
//! matrices all implement both, so every experiment plugs into the same
//! construction code.

use crate::gemm::{par_gemm, Op};
use crate::mat::{Mat, MatMut, MatRef};
use crate::rand::gaussian_mat;

/// A linear operator supporting block application (`Y = A X`).
///
/// Implementations must be `Sync`: the batched runtime applies operators from
/// worker threads.
pub trait LinOp: Sync {
    fn nrows(&self) -> usize;
    fn ncols(&self) -> usize;

    /// `y = A x` for a block of vectors (`x: ncols x d`, `y: nrows x d`).
    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>);

    /// `y = A^T x`. Defaults to `apply` — correct for the symmetric operators
    /// the paper works with; non-symmetric implementations **must override**
    /// (the unsymmetric construction's column stream samples through this
    /// method, and guards the adjoint identity `xᵀ(Ay) = (Aᵀx)ᵀy` at
    /// startup to catch a forgotten override).
    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply(x, y);
    }

    /// Convenience: allocate and return `A X`.
    fn apply_mat(&self, x: &Mat) -> Mat {
        let mut y = Mat::zeros(self.nrows(), x.cols());
        self.apply(x.rf(), y.rm());
        y
    }
}

/// Entry-level access to a matrix: the paper's second required input.
pub trait EntryAccess: Sync {
    fn entry(&self, i: usize, j: usize) -> f64;

    /// Evaluate the sub-block `A(rows, cols)` into `out`.
    ///
    /// The default loops over [`EntryAccess::entry`]; implementations with
    /// cheaper bulk evaluation (kernel matrices) override this.
    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        assert_eq!(out.rows(), rows.len());
        assert_eq!(out.cols(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            let col = out.col_mut(jj);
            for (ii, &i) in rows.iter().enumerate() {
                col[ii] = self.entry(i, j);
            }
        }
    }

    /// Allocate and return the sub-block `A(rows, cols)`.
    fn block_mat(&self, rows: &[usize], cols: &[usize]) -> Mat {
        let mut m = Mat::zeros(rows.len(), cols.len());
        self.block(rows, cols, &mut m.rm());
        m
    }
}

/// A dense matrix as a [`LinOp`] + [`EntryAccess`] (tests, frontal matrices,
/// small reference problems).
pub struct DenseOp {
    pub a: Mat,
}

impl DenseOp {
    pub fn new(a: Mat) -> Self {
        DenseOp { a }
    }
}

impl LinOp for DenseOp {
    fn nrows(&self) -> usize {
        self.a.rows()
    }

    fn ncols(&self) -> usize {
        self.a.cols()
    }

    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        par_gemm(Op::NoTrans, Op::NoTrans, 1.0, self.a.rf(), x, 0.0, y);
    }

    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        par_gemm(Op::Trans, Op::NoTrans, 1.0, self.a.rf(), x, 0.0, y);
    }
}

impl EntryAccess for DenseOp {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.a[(i, j)]
    }
}

/// The difference `A - B` of two operators (for error estimation).
pub struct DiffOp<'a> {
    pub a: &'a dyn LinOp,
    pub b: &'a dyn LinOp,
}

impl LinOp for DiffOp<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn ncols(&self) -> usize {
        self.a.ncols()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        self.a.apply(x, y.rb_mut());
        let mut yb = Mat::zeros(self.b.nrows(), x.cols());
        self.b.apply(x, yb.rm());
        y.axpy(-1.0, yb.rf());
    }

    fn apply_transpose(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        self.a.apply_transpose(x, y.rb_mut());
        let mut yb = Mat::zeros(self.b.ncols(), x.cols());
        self.b.apply_transpose(x, yb.rm());
        y.axpy(-1.0, yb.rf());
    }
}

/// Estimate `‖A‖₂` by power iteration on `A^T A` (the paper's §V.A "a few
/// iterations of the power method").
pub fn estimate_norm_2(a: &dyn LinOp, iters: usize, seed: u64) -> f64 {
    let n = a.ncols();
    if n == 0 || a.nrows() == 0 {
        return 0.0;
    }
    let mut v = gaussian_mat(n, 1, seed);
    normalize(&mut v);
    let mut sigma = 0.0_f64;
    let mut w = Mat::zeros(a.nrows(), 1);
    for _ in 0..iters.max(1) {
        a.apply(v.rf(), w.rm());
        let wn = w.norm_fro();
        if wn == 0.0 {
            return 0.0;
        }
        // With v unit-norm, ||A v|| is the current singular-value estimate;
        // it increases monotonically toward sigma_max as v converges.
        sigma = sigma.max(wn);
        a.apply_transpose(w.rf(), v.rm());
        normalize(&mut v);
    }
    // Final refinement with the converged direction.
    a.apply(v.rf(), w.rm());
    sigma.max(w.norm_fro())
}

/// Relative spectral-norm error `‖A - B‖₂ / ‖A‖₂` estimated by power
/// iteration, exactly as the paper measures construction accuracy.
pub fn relative_error_2(a: &dyn LinOp, b: &dyn LinOp, iters: usize, seed: u64) -> f64 {
    let diff = DiffOp { a, b };
    let na = estimate_norm_2(a, iters, seed);
    if na == 0.0 {
        return 0.0;
    }
    estimate_norm_2(&diff, iters, seed.wrapping_add(17)) / na
}

fn normalize(v: &mut Mat) {
    let n = v.norm_fro();
    if n > 0.0 {
        v.scale(1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::spectral_norm;

    #[test]
    fn dense_op_applies() {
        let a = gaussian_mat(6, 4, 51);
        let x = gaussian_mat(4, 2, 52);
        let op = DenseOp::new(a.clone());
        let y = op.apply_mat(&x);
        let want = crate::gemm::matmul(Op::NoTrans, Op::NoTrans, a.rf(), x.rf());
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-13);
    }

    #[test]
    fn entry_block_default_impl() {
        let a = gaussian_mat(5, 5, 53);
        let op = DenseOp::new(a.clone());
        let b = op.block_mat(&[4, 0], &[1, 3, 2]);
        assert_eq!(b[(0, 0)], a[(4, 1)]);
        assert_eq!(b[(1, 2)], a[(0, 2)]);
    }

    #[test]
    fn norm_estimate_close_to_svd() {
        let a = gaussian_mat(30, 30, 54);
        let exact = spectral_norm(&a);
        let est = estimate_norm_2(&DenseOp::new(a), 30, 55);
        assert!(
            (est - exact).abs() < 0.05 * exact,
            "est {est} exact {exact}"
        );
    }

    #[test]
    fn relative_error_detects_perturbation() {
        let a = gaussian_mat(25, 25, 56);
        let mut b = a.clone();
        b[(3, 7)] += 0.5;
        let ra = DenseOp::new(a);
        let rb = DenseOp::new(b);
        let e = relative_error_2(&ra, &rb, 30, 57);
        assert!(e > 1e-3 && e < 1.0, "e={e}");
        let e0 = relative_error_2(&ra, &ra, 10, 58);
        assert!(e0 < 1e-12);
    }
}
