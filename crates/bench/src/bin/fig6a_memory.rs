//! Fig. 6(a): memory consumption of the constructed H2 matrices for the
//! covariance and IE kernels — the expected O(N) growth.
//!
//! Usage: `--sizes 8192,16384,32768,65536 [--leaf 64] [--eta 0.7] [--tol 1e-6]
//!         [--trace trace.json]`

use h2_bench::{build_problem, gib, header, mib, reference_h2, row, App, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig};

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[4096, 8192, 16384, 32768]);
    let leaf: usize = args.get("leaf", 64);
    let eta: f64 = args.get("eta", 0.7);
    let tol: f64 = args.get("tol", 1e-6);
    let sink = TraceSink::from_args(&args);

    println!(
        "# Fig. 6(a): memory of the constructed H2 matrix (leaf={leaf}, eta={eta}, tol={tol})\n"
    );
    header(&[
        "N",
        "app",
        "total (GiB)",
        "dense (MiB)",
        "coupling (MiB)",
        "basis (MiB)",
        "bytes/point",
        "rank range",
    ]);

    for &n in &sizes {
        for app in [App::Covariance, App::IntegralEquation] {
            let problem = build_problem(app, n, leaf, eta, 0xF6A);
            let reference = reference_h2(&problem, tol * 1e-2);
            let rt = sink.runtime();
            let cfg = SketchConfig {
                tol,
                initial_samples: 128,
                ..Default::default()
            };
            let (h2, _) = sketch_construct(
                &reference,
                &problem.kernel,
                problem.tree.clone(),
                problem.partition.clone(),
                &rt,
                &cfg,
            );
            let b = h2.memory_breakdown();
            let (lo, hi) = h2.rank_range();
            row(&[
                n.to_string(),
                app.name().to_string(),
                format!("{:.3}", gib(b.total())),
                format!("{:.1}", mib(b.dense)),
                format!("{:.1}", mib(b.coupling)),
                format!("{:.1}", mib(b.basis)),
                format!("{:.0}", b.total() as f64 / n as f64),
                format!("{lo}-{hi}"),
            ]);
        }
    }
    println!("\n(bytes/point flattening out with N is the paper's linear-memory claim;\n the dense near field dominates, as in the paper where eta=0.7 keeps Csp large in 3-D.)");
    sink.finish();
}
