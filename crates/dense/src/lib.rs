//! # h2-dense
//!
//! Dense linear-algebra substrate for the H2 sketching workspace.
//!
//! The paper's GPU implementation leans on KBLAS/MAGMA/cuBLAS for batched
//! dense kernels; this crate provides the equivalent single-matrix
//! operations, written from scratch:
//!
//! * column-major [`Mat`] / [`MatRef`] / [`MatMut`] storage with
//!   leading-dimension views (so batched workspaces can be sliced in place),
//! * [`gemm`](gemm::gemm) with all transpose combinations and a
//!   column-parallel variant for large products,
//! * Householder QR ([`qr`]) — the adaptive convergence test,
//! * column-pivoted QR and interpolative decompositions ([`cpqr`]) — the
//!   skeletonization step,
//! * triangular solves, LU, Cholesky, one-sided Jacobi SVD,
//! * the [`LinOp`](op::LinOp) / [`EntryAccess`](op::EntryAccess) traits — the
//!   paper's two black-box inputs — plus power-iteration norm estimation,
//! * the storage/wire precision tier ([`prec`]): [`Precision`], the f32
//!   storage type [`Mat32`] with demote/promote conversion kernels, and the
//!   mixed-precision [`gemm_mixed`](gemm::gemm_mixed) whose f32 operand is
//!   promoted at the packing stage while every accumulation stays f64.

pub mod aca;
pub mod cpqr;
pub mod gemm;
pub mod krylov;
pub mod lu;
pub mod mat;
pub mod op;
pub mod prec;
pub mod qr;
pub mod rand;
pub mod svd;
pub mod tri;

pub use aca::{aca, AcaResult};
pub use cpqr::{col_id, cpqr_factor, row_id, select_rank, ColId, RowId, Truncation};
pub use gemm::{
    dispatched_mr, gemm, gemm_mixed, gemm_naive, gemm_rhs, gemv, matmul, par_gemm, simd_tier, Op,
    SimdTier,
};
pub use krylov::{cg, hutchinson_trace, power_eig_max, SolveResult};
pub use lu::{cholesky_in_place, cholesky_solve, lu_factor, LuFactor};
pub use mat::{Mat, MatMut, MatRef};
pub use op::{estimate_norm_2, relative_error_2, DenseOp, DiffOp, EntryAccess, LinOp};
pub use prec::{demote_roundtrip, Mat32, Precision};
pub use qr::{orthonormalize, qr_factor, qr_in_place, QrFactor};
pub use rand::{fill_gaussian, gaussian_mat, random_low_rank, standard_normal};
pub use svd::{spectral_norm, svd, Svd};
pub use tri::{
    solve_triangular_left, solve_triangular_left_transposed, solve_triangular_right, Diag, Triangle,
};
