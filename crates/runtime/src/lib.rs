//! # h2-runtime
//!
//! Batched device runtime reproducing the paper's GPU execution model on
//! CPU threads.
//!
//! The paper's central implementation idea (§IV) is that an H2 construction
//! consists of *many small variable-size dense operations*, which are only
//! fast on a GPU when organized as **batched kernels**: trees stored
//! level-contiguously, a marshaling phase gathering operands, a single
//! workspace allocation per level sized by a parallel prefix sum, and one
//! kernel launch per level per operation (at most `Csp` for the BSR
//! product). This crate reproduces that model:
//!
//! * [`Runtime`] — backend switch (sequential "CPU" vs parallel "GPU") plus
//!   kernel-launch accounting and Fig.-7 phase timers,
//! * [`VarBatch`] — one-allocation variable-size batched workspaces,
//! * [`ops`] — the batched kernels annotated in Algorithm 1
//!   (`batchedRand`, `batchedGen`, `batchedID`, `batchedShrink`,
//!   `batchedGemm`, marshaling gathers),
//! * [`bsr`] — the `batchedBSRGemm` with the paper's `Csp`-slot
//!   conflict-free decomposition,
//! * [`solve_ops`] — the batched *solver* primitives (variable-size QR/LU,
//!   triangular and LU solves, Q application) the per-level ULV elimination
//!   is built from, accounted with the same simulator formulas.

pub mod batch;
pub mod bsr;
pub mod multidev;
pub mod ops;
pub mod profile;
pub mod runtime;
pub mod shard;
pub mod solve_ops;

pub use batch::{cost_chunk_bounds, VarBatch};
pub use bsr::{bsr_gemm, bsr_gemm_stream, hint_bsr_fetches, BsrBlock, BsrPattern};
pub use h2_dense::Precision;
// Re-exported so downstream crates (core, solve, sched) reach the
// observability layer through the runtime they already depend on.
pub use h2_obs::{ArgValue, Registry, SpanGuard, Tracer};
pub use multidev::{
    combine_terms, owner, simulate, simulate_prec, simulate_prec_mode, simulate_solve,
    simulate_solve_prec, simulate_solve_prec_mode, transfer_census, DeviceModel, LevelSpec,
    SimReport, SolveLevel, SolveSpec, StreamSpec,
};
pub use ops::{
    batched_gen, batched_row_id, gather_rows, gemm_at_x, hcat_batches, qr_min_rdiag, rand_mat,
    shrink_rows, stack_children, GenBlock,
};
pub use profile::{Kernel, Phase, Profile, KERNEL_COUNT, PHASE_COUNT};
pub use runtime::{Backend, Runtime};
pub use shard::{
    chunk_bounds, FetchKey, FetchPlanner, PipelineMode, ShardDispatch, ShardJob, Transfer,
    TransferKind,
};
pub use solve_ops::{
    batched_apply_qt, batched_lu, batched_lu_solve, batched_qr, batched_transpose, batched_trsm,
};
