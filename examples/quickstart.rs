//! Quickstart: compress a 3-D exponential-covariance kernel matrix with the
//! adaptive sketching construction and verify the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use h2sketch::dense::relative_error_2;
use h2sketch::kernels::{ExponentialKernel, KernelMatrix};
use h2sketch::matrix::{direct_construct, DirectConfig};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn main() {
    // 1. Geometry: N uniform points in the unit cube (the paper's setup).
    let n = 8192;
    let points = uniform_cube(n, 7);

    // 2. Cluster tree (KD, leaf 64) and strong-admissibility partition.
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    println!(
        "tree: {} levels, {} leaves; partition: complete={}, Csp(dense)={}",
        tree.nlevels(),
        tree.level_len(tree.leaf_level()),
        partition.is_complete(&tree),
        partition.csp_near(&tree),
    );

    // 3. The two black-box inputs of Algorithm 1:
    //    (a) entry evaluation — the kernel matrix itself,
    //    (b) a fast sketching operator Y = K·Ω — here the O(N) matvec of a
    //        reference H2 matrix built by the direct (entry-based)
    //        constructor, playing the role H2Opus's matvec plays in the
    //        paper's experiments.
    let kernel = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let sampler = direct_construct(
        &kernel,
        tree.clone(),
        partition.clone(),
        &DirectConfig {
            tol: 1e-9,
            ..Default::default()
        },
    );

    // 4. Adaptive sketching construction (paper Algorithm 1).
    let rt = Runtime::parallel(); // the batched "GPU" execution model
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 128,
        sample_block: 32,
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(&sampler, &kernel, tree.clone(), partition, &rt, &cfg);

    // 5. Inspect the result.
    let (rank_lo, rank_hi) = h2.rank_range();
    println!(
        "constructed in {:.3}s with {} samples ({} adaptive rounds); ranks {rank_lo}-{rank_hi}; \
         memory {:.1} MiB",
        stats.elapsed.as_secs_f64(),
        stats.total_samples,
        stats.rounds,
        h2.memory_bytes() as f64 / (1 << 20) as f64,
    );
    println!("kernel launches: {:?}", stats.launches);

    // 6. Verify: relative spectral error against the exact kernel operator,
    //    estimated by power iteration (the paper's §V.A metric).
    let err = relative_error_2(&kernel, &h2, 15, 99);
    println!("relative error |K_comp - K| / |K| ≈ {err:.3e} (target 1e-6)");
    assert!(err < 1e-5, "construction failed the tolerance check");

    // 7. Use it: one fast matvec in the original point ordering.
    let x = h2sketch::dense::gaussian_mat(n, 1, 3);
    let y = h2.apply_original(&x);
    println!("matvec done, |y|_2 = {:.3e}", y.norm_fro());
}
