//! General matrix-matrix multiplication for column-major views.
//!
//! `gemm` computes `C = alpha * op(A) * op(B) + beta * C` with the four
//! transpose combinations. Two kernels back it:
//!
//! * **Packed blocked kernel** (BLIS-style, the default above the small-
//!   matrix crossover). The macro loops tile the product `NC → KC → MC`
//!   (columns of C, the inner dimension, rows of C); within an
//!   `MC × KC × NC` block, `op(A)` is packed into `MR`-row micro-panels and
//!   `op(B)` into `NR`-column micro-panels, which normalizes all four
//!   transpose combinations into one contiguous layout — the inner kernel
//!   never sees a stride or a transpose again. The register-tiled `MR × NR`
//!   microkernel walks the shared `KC` dimension over both packed panels
//!   (pure FMA chains, no per-element zero-check branch), accumulates in
//!   registers, and fuses `alpha` into the single write-out pass (`beta` is
//!   applied once up front, so the macro loops only ever accumulate).
//!   Runtime CPU detection routes the microkernel through one of three
//!   compilation tiers without changing build flags: AVX-512F (a widened
//!   `MR512 × NR` register tile), AVX2+FMA (the `MR × NR` tile), or the
//!   portable baseline. Per-`(i,j)` accumulation order along `k` is the
//!   same in every tier, so tier selection never changes results bitwise.
//!
//! * **Naive axpy/dot kernel** ([`gemm_naive`], retained verbatim). The
//!   innermost loop walks a contiguous column, which is optimal for the
//!   tiny blocks that dominate deep tree levels, where packing would cost
//!   more than it saves. [`gemm`] falls back to it below the crossover, so
//!   small-block performance is unchanged by construction; it is also the
//!   reference implementation the property tests compare against.
//!
//! # Blocking parameters
//!
//! | param | value | constraint |
//! |---|---|---|
//! | `MR × NR` | 8 × 4 | AVX2/baseline tile: 32 accumulators = 8 AVX2 vectors |
//! | `MR512 × NR` | 16 × 4 | AVX-512F tile: 64 accumulators = 8 zmm vectors |
//! | `MC` | 128 | `MC × KC` packed A block ≈ 256 KiB (L2-resident) |
//! | `KC` | 256 | `KC × NR` B micro-panel ≈ 8 KiB (L1-resident) |
//! | `NC` | 512 | `KC × NC` packed B block ≈ 1 MiB (LLC-resident) |
//!
//! The row tile is chosen **per call** by [`dispatched_mr`]: the AVX-512
//! tier packs `MR512`-row panels when `op(A)` has at least `MR512` rows and
//! falls back to the `MR` tile below that, so mid-size blocks
//! (`MR ≤ m < MR512`) keep taking the packed path instead of silently
//! dropping to [`gemm_naive`] — the crossover guard consults the same
//! per-call tile, never a compile-time constant.
//!
//! # Packing layout
//!
//! `pack_a` stores `op(A)[ic.., pc..]` as `ceil(mc/MR)` panels; panel `q`
//! holds rows `q*MR..q*MR+MR` in k-major order (`buf[q*MR*kc + p*MR + i]`),
//! zero-padded to a full `MR` rows so the microkernel needs no row bound.
//! `pack_b` mirrors this with `NR`-column panels
//! (`buf[q*NR*kc + p*NR + j]`). Packing traffic is counted in
//! [`stats`] and surfaced through `h2_runtime`'s profile.
//!
//! # Small-matrix crossover
//!
//! Measured with `h2_bench --bin kernels` on the CI container: the packed
//! kernel is ahead of the axpy form for every square size probed down to
//! n = 8 (1.0–1.4x there, 2–3x by n = 24, 3–40x at n = 512), so the
//! crossover is expressed as *dimension* guards rather than a flop volume:
//! [`gemm`] dispatches to the packed path when `m ≥ dispatched_mr(m)`
//! (the per-call row tile — effectively `m ≥ MR` on every tier), `k ≥ 8`,
//! `n ≥ NR` and the product volume is at least 8³. Below any of those, a
//! tile would be mostly padding and the axpy form is kept — so
//! sub-crossover performance is unchanged by construction.
//!
//! Batch-level parallelism lives in `h2-runtime`; [`par_gemm`] parallelizes
//! the *same* packed kernel for the few genuinely large single products
//! (dense samplers, frontal Schur updates): tall C splits into `MC`-row
//! bands that **share each packed `KC × NC` B panel** (packed once, read by
//! every worker — no per-worker repacking), short-and-wide C falls back to
//! disjoint column panels where the redundant A packing is cheap.

use crate::mat::{Mat, MatMut, MatRef};
use crate::prec::Mat32;
use rayon::prelude::*;

/// Transpose selector, mirroring the BLAS `trans` argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    NoTrans,
    Trans,
}

impl Op {
    /// Rows of `op(A)` given the storage shape of `A`.
    pub fn rows_of(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.rows(),
            Op::Trans => a.cols(),
        }
    }

    /// Columns of `op(A)` given the storage shape of `A`.
    pub fn cols_of(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.cols(),
            Op::Trans => a.rows(),
        }
    }
}

/// Microkernel row tile of the AVX2/baseline tiers (accumulator rows).
pub const MR: usize = 8;
/// Widened microkernel row tile of the AVX-512F tier.
pub const MR512: usize = 16;
/// Microkernel column tile (accumulator columns, all tiers).
pub const NR: usize = 4;
/// Rows of C per packed-A block.
const MC: usize = 128;
/// Shared inner dimension per packed block pair.
const KC: usize = 256;
/// Columns of C per packed-B block.
const NC: usize = 512;

/// Process-wide counters for the dense-kernel activity the batched runtime
/// cannot see from the outside: packed-GEMM invocations, bytes staged
/// through the packing buffers, and `gemv` calls. `h2_runtime::Runtime`
/// drains them into its launch/phase profile so the Fig. 7 breakdown
/// reflects the blocked kernel structure.
///
/// Because the counters are process-wide, *draining* them is gated behind
/// an exclusive [`StatsClaim`] handle: exactly one profile at a time may
/// swap the counters to zero, so two concurrent profiles (parallel tests,
/// a multi-tenant server) can no longer silently steal each other's
/// pack/gemv counts. [`snapshot`] stays available to everyone — reading
/// without resetting is race-free by nature.
pub mod stats {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static PACK_CALLS: AtomicU64 = AtomicU64::new(0);
    static PACK_BYTES: AtomicU64 = AtomicU64::new(0);
    static GEMV_CALLS: AtomicU64 = AtomicU64::new(0);

    /// Snapshot of the dense-kernel counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct GemmStats {
        /// Packed-kernel invocations (each packs at least one block pair).
        pub pack_calls: u64,
        /// Bytes written into packing buffers (A and B panels).
        pub pack_bytes: u64,
        /// `gemv` invocations.
        pub gemv_calls: u64,
    }

    pub(super) fn add_pack(calls: u64, bytes: u64) {
        PACK_CALLS.fetch_add(calls, Ordering::Relaxed);
        PACK_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(super) fn add_gemv() {
        GEMV_CALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Read the counters without resetting them.
    pub fn snapshot() -> GemmStats {
        GemmStats {
            pack_calls: PACK_CALLS.load(Ordering::Relaxed),
            pack_bytes: PACK_BYTES.load(Ordering::Relaxed),
            gemv_calls: GEMV_CALLS.load(Ordering::Relaxed),
        }
    }

    static CLAIMED: AtomicBool = AtomicBool::new(false);

    /// Exclusive right to drain the process-wide counters. Held by at most
    /// one owner at a time; dropping it releases the gate. While a claim
    /// is live, every other would-be drainer observes [`claim`] returning
    /// `None` and must fall back to attribution-free [`snapshot`]s.
    #[derive(Debug)]
    pub struct StatsClaim(());

    impl StatsClaim {
        /// Read and zero the counters (the profile-drain primitive). Only
        /// the claim holder can reset, so drained deltas are attributable
        /// to the holder's measurement window.
        pub fn take(&self) -> GemmStats {
            GemmStats {
                pack_calls: PACK_CALLS.swap(0, Ordering::Relaxed),
                pack_bytes: PACK_BYTES.swap(0, Ordering::Relaxed),
                gemv_calls: GEMV_CALLS.swap(0, Ordering::Relaxed),
            }
        }
    }

    impl Drop for StatsClaim {
        fn drop(&mut self) {
            CLAIMED.store(false, Ordering::Release);
        }
    }

    /// Try to acquire the exclusive drain handle. On success the counters
    /// are swapped to zero first (leftovers from unclaimed work are
    /// discarded), so the new holder starts from a clean window. Returns
    /// `None` while another claim is live.
    pub fn claim() -> Option<StatsClaim> {
        if CLAIMED
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire)
            .is_ok()
        {
            let handle = StatsClaim(());
            let _ = handle.take();
            Some(handle)
        } else {
            None
        }
    }
}

/// The SIMD compilation tier the microkernel dispatcher selected for this
/// host, detected once per process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdTier {
    /// Portable baseline (the compiler's default codegen, SSE2 on x86-64).
    Baseline,
    /// AVX2 + FMA: the `MR × NR` register tile.
    Avx2Fma,
    /// AVX-512F: the widened `MR512 × NR` register tile.
    Avx512,
}

/// Runtime-detected microkernel tier (cached after the first call).
pub fn simd_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static TIER: AtomicU8 = AtomicU8::new(0);
        let state = TIER.load(Ordering::Relaxed);
        let code = if state == 0 {
            let c = if std::is_x86_feature_detected!("avx512f") {
                3
            } else if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
            {
                2
            } else {
                1
            };
            TIER.store(c, Ordering::Relaxed);
            c
        } else {
            state
        };
        match code {
            3 => SimdTier::Avx512,
            2 => SimdTier::Avx2Fma,
            _ => SimdTier::Baseline,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdTier::Baseline
}

/// The row tile the packed path will use for an `m`-row `op(A)`: the
/// AVX-512 tier's `MR512` when the host has it *and* the operand fills at
/// least one widened panel row-wise, else `MR`. Mid-size operands
/// (`MR ≤ m < MR512`) deliberately keep the narrow tile — a 16-row panel
/// would be half padding there, and more importantly the crossover guard
/// below must not push them to the naive kernel on AVX-512 hosts.
#[inline]
pub fn dispatched_mr(m: usize) -> usize {
    if simd_tier() == SimdTier::Avx512 && m >= MR512 {
        MR512
    } else {
        MR
    }
}

/// The measured crossover: use the packed kernel only when the flop volume
/// amortizes the packing pass (see the module doc). The row guard compares
/// against the *per-call* tile of [`dispatched_mr`] — which by construction
/// never exceeds `m` once `m ≥ MR` — so the AVX-512 tier widening the
/// preferred tile to `MR512` cannot demote `MR ≤ m < MR512` blocks to the
/// naive kernel.
#[inline]
fn use_packed(m: usize, n: usize, k: usize) -> bool {
    m >= dispatched_mr(m) && k >= 8 && n >= NR && m.saturating_mul(n).saturating_mul(k) >= 512
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes are checked: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
pub fn gemm(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, n, k) = check_and_scale(ta, tb, a, b, beta, &mut c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_packed(m, n, k) {
        packed_accumulate(ta, tb, alpha, a, b, c);
    } else {
        naive_accumulate(ta, tb, alpha, a, b, c);
    }
}

/// The RHS-width-invariant crossover: the same row/depth guards as
/// [`use_packed`], with the volume term evaluated at the `NR`-column
/// saturation point instead of the true `n` — a function of `(m, k)` only.
#[inline]
fn use_packed_rhs(m: usize, k: usize) -> bool {
    m >= dispatched_mr(m) && k >= 8 && m.saturating_mul(NR).saturating_mul(k) >= 512
}

/// `C = alpha * op(A) * op(B) + beta * C` with a kernel choice that is a
/// function of `op(A)`'s shape **only** — never of the RHS width `n`.
///
/// Both kernels accumulate each column of C independently with a fixed
/// order along `k`: the naive axpy form walks `l` in order per column, and
/// the packed path splits `k` into the same `KC` panels and runs the same
/// per-`(i, j)` FMA chain into a private accumulator lane no matter how
/// many columns share the call (padding lanes of a partial `NR` panel are
/// separate accumulators that never touch real columns). With the
/// dispatch decided by [`use_packed_rhs`]`(m, k)` alone, **column `j` of
/// the result is bitwise identical for every RHS width it rides in**: the
/// `n = 32` call produces in `C[:, j]` exactly what the `n = 1` call on
/// `B[:, j]` produces. [`gemm`] deliberately does *not* have this property
/// (its crossover reads `n`, so a single column can take the twice-rounding
/// naive kernel while a block takes the once-rounding FMA microkernel).
///
/// This is the GEMM analogue of `blocked_dot`'s fixed reduction tree, and
/// the contract the blocked multi-RHS solve sweep pins its
/// blocked-vs-sequential bit-identity on. The price is that single-column
/// calls above the crossover pay the packed path's padded microkernel
/// lanes; use it on the sweep-critical products where the invariance is the
/// point, and plain [`gemm`] everywhere else.
pub fn gemm_rhs(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, n, k) = check_and_scale(ta, tb, a, b, beta, &mut c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_packed_rhs(m, k) {
        packed_accumulate(ta, tb, alpha, a, b, c);
    } else {
        naive_accumulate(ta, tb, alpha, a, b, c);
    }
}

/// The retained axpy/dot-form reference kernel (the pre-blocking `gemm`).
/// Identical semantics to [`gemm`]; used below the small-matrix crossover
/// and as the ground truth in property tests and kernel benchmarks.
pub fn gemm_naive(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, n, k) = check_and_scale(ta, tb, a, b, beta, &mut c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    naive_accumulate(ta, tb, alpha, a, b, c);
}

/// Shared entry: shape checks plus the single up-front `beta` application
/// (everything downstream purely accumulates).
fn check_and_scale(
    ta: Op,
    tb: Op,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) -> (usize, usize, usize) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    let k2 = tb.rows_of(b);
    let n = tb.cols_of(b);
    assert_eq!(k, k2, "gemm: inner dimension mismatch ({k} vs {k2})");
    assert_eq!(c.rows(), m, "gemm: C row mismatch");
    assert_eq!(c.cols(), n, "gemm: C col mismatch");
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill(0.0);
        } else {
            c.scale(beta);
        }
    }
    (m, n, k)
}

/// The pre-blocking kernels: innermost loop walks a contiguous column
/// (axpy / dot form), which auto-vectorizes well for tiny blocks.
fn naive_accumulate(ta: Op, tb: Op, alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    let n = tb.cols_of(b);
    match (ta, tb) {
        (Op::NoTrans, Op::NoTrans) => {
            // C[:,j] += alpha * B[l,j] * A[:,l]  (axpy over contiguous columns)
            for j in 0..n {
                let bj = b.col(j);
                let cj = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * bj[l];
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::NoTrans) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j])
            for j in 0..n {
                let bj = b.col(j);
                for i in 0..m {
                    let ai = a.col(i);
                    let mut s = 0.0;
                    for l in 0..k {
                        s += ai[l] * bj[l];
                    }
                    *c.at_mut(i, j) += alpha * s;
                }
            }
        }
        (Op::NoTrans, Op::Trans) => {
            // C[:,j] += alpha * B[j,l] * A[:,l]
            for j in 0..n {
                let cj = c.col_mut(j);
                for l in 0..k {
                    let s = alpha * b.at(j, l);
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::Trans) => {
            // C[i,j] += alpha * sum_l A[l,i] * B[j,l]
            for j in 0..n {
                for i in 0..m {
                    let ai = a.col(i);
                    let mut s = 0.0;
                    for l in 0..k {
                        s += ai[l] * b.at(j, l);
                    }
                    *c.at_mut(i, j) += alpha * s;
                }
            }
        }
    }
}

/// Size `buf` to `len` without the full zero-fill of `resize` on reuse:
/// growth zero-initializes (first call), shrinking truncates. Callers
/// overwrite every non-padding lane and explicitly zero the padding, so
/// stale values from a previous block can never leak into a panel.
fn ensure_pack_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    } else {
        buf.truncate(len);
    }
}

/// Pack `op(A)[ic..ic+mc, pc..pc+kc]` into `mrt`-row micro-panels
/// (`buf[q*mrt*kc + p*mrt + i]`), zero-padding the last panel to `mrt`
/// rows. `mrt` is the dispatched row tile (`MR` or `MR512`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ta: Op,
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    mrt: usize,
    buf: &mut Vec<f64>,
) {
    let panels = mc.div_ceil(mrt);
    ensure_pack_len(buf, panels * mrt * kc);
    // Zero only the padding lanes: rows mc..panels*mrt of the last panel.
    let tail = mc % mrt;
    if tail != 0 {
        let base = (panels - 1) * mrt * kc;
        for p in 0..kc {
            buf[base + p * mrt + tail..base + p * mrt + mrt].fill(0.0);
        }
    }
    match ta {
        Op::NoTrans => {
            // Source columns are contiguous: walk column p, scatter to panels.
            for p in 0..kc {
                let col = a.col(pc + p);
                for q in 0..panels {
                    let i0 = q * mrt;
                    let cnt = mrt.min(mc - i0);
                    buf[q * mrt * kc + p * mrt..][..cnt]
                        .copy_from_slice(&col[ic + i0..ic + i0 + cnt]);
                }
            }
        }
        Op::Trans => {
            // op(A) row i is the contiguous source column ic + i.
            for q in 0..panels {
                let i0 = q * mrt;
                let cnt = mrt.min(mc - i0);
                for i in 0..cnt {
                    let col = a.col(ic + i0 + i);
                    let base = q * mrt * kc + i;
                    for p in 0..kc {
                        buf[base + p * mrt] = col[pc + p];
                    }
                }
            }
        }
    }
}

/// Pack `op(A)` micro-panels from an **f32-stored** matrix, promoting each
/// element at pack time — the promote-on-pack conversion point of the
/// mixed-precision path. Produces bitwise the same f64 panel as [`pack_a`]
/// on `a.promote()` (promotion is exact), so the microkernel downstream is
/// untouched and the mixed product equals the all-f64 product on the
/// promoted working copy exactly.
#[allow(clippy::too_many_arguments)]
fn pack_a32(
    ta: Op,
    a: &Mat32,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    mrt: usize,
    buf: &mut Vec<f64>,
) {
    let panels = mc.div_ceil(mrt);
    ensure_pack_len(buf, panels * mrt * kc);
    let tail = mc % mrt;
    if tail != 0 {
        let base = (panels - 1) * mrt * kc;
        for p in 0..kc {
            buf[base + p * mrt + tail..base + p * mrt + mrt].fill(0.0);
        }
    }
    match ta {
        Op::NoTrans => {
            for p in 0..kc {
                let col = a.col(pc + p);
                for q in 0..panels {
                    let i0 = q * mrt;
                    let cnt = mrt.min(mc - i0);
                    let dst = &mut buf[q * mrt * kc + p * mrt..][..cnt];
                    for (d, &v) in dst.iter_mut().zip(&col[ic + i0..ic + i0 + cnt]) {
                        *d = v as f64;
                    }
                }
            }
        }
        Op::Trans => {
            for q in 0..panels {
                let i0 = q * mrt;
                let cnt = mrt.min(mc - i0);
                for i in 0..cnt {
                    let col = a.col(ic + i0 + i);
                    let base = q * mrt * kc + i;
                    for p in 0..kc {
                        buf[base + p * mrt] = col[pc + p] as f64;
                    }
                }
            }
        }
    }
}

/// Pack `op(B)[pc..pc+kc, jc..jc+nc]` into `NR`-column micro-panels
/// (`buf[q*NR*kc + p*NR + j]`), zero-padding the last panel to `NR` columns.
fn pack_b(tb: Op, b: MatRef<'_>, pc: usize, jc: usize, kc: usize, nc: usize, buf: &mut Vec<f64>) {
    let panels = nc.div_ceil(NR);
    ensure_pack_len(buf, panels * NR * kc);
    // Zero only the padding lanes: columns nc..panels*NR of the last panel.
    let tail = nc % NR;
    if tail != 0 {
        let base = (panels - 1) * NR * kc;
        for p in 0..kc {
            buf[base + p * NR + tail..base + p * NR + NR].fill(0.0);
        }
    }
    match tb {
        Op::NoTrans => {
            // op(B) column j is the contiguous source column jc + j.
            for q in 0..panels {
                let j0 = q * NR;
                let cnt = NR.min(nc - j0);
                for j in 0..cnt {
                    let col = b.col(jc + j0 + j);
                    let base = q * NR * kc + j;
                    for p in 0..kc {
                        buf[base + p * NR] = col[pc + p];
                    }
                }
            }
        }
        Op::Trans => {
            // Source columns are contiguous over j: walk column pc + p.
            for p in 0..kc {
                let col = b.col(pc + p);
                for q in 0..panels {
                    let j0 = q * NR;
                    let cnt = NR.min(nc - j0);
                    let base = q * NR * kc + p * NR;
                    buf[base..base + cnt].copy_from_slice(&col[jc + j0..jc + j0 + cnt]);
                }
            }
        }
    }
}

/// Register-tiled inner product of one packed A panel against one packed B
/// panel over the shared `kc` dimension. Branch-free FMA chains; the padded
/// panels make every lane valid.
#[inline(always)]
fn micro_accumulate(ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let av: &[f64; MR] = av.try_into().unwrap();
        let bv: &[f64; NR] = bv.try_into().unwrap();
        for j in 0..NR {
            let s = bv[j];
            for i in 0..MR {
                acc[j][i] += av[i] * s;
            }
        }
    }
    acc
}

/// The same microkernel compiled with AVX2+FMA codegen, selected at runtime
/// so the default (SSE2 baseline) build still uses the host's vector units.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn micro_accumulate_fma(ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    micro_accumulate(ap, bp)
}

/// The widened `MR512 × NR` inner product over `MR512`-row packed panels.
/// Same per-`(i,j)` accumulation order along `k` as the narrow tile, so
/// tile width never changes results bitwise.
#[inline(always)]
fn micro_accumulate_16(ap: &[f64], bp: &[f64]) -> [[f64; MR512]; NR] {
    let mut acc = [[0.0f64; MR512]; NR];
    for (av, bv) in ap.chunks_exact(MR512).zip(bp.chunks_exact(NR)) {
        let av: &[f64; MR512] = av.try_into().unwrap();
        let bv: &[f64; NR] = bv.try_into().unwrap();
        for j in 0..NR {
            let s = bv[j];
            for i in 0..MR512 {
                acc[j][i] += av[i] * s;
            }
        }
    }
    acc
}

/// The widened microkernel compiled with AVX-512F codegen: each of the NR
/// accumulator rows is two zmm vectors (8 zmm total), `av` two zmm loads,
/// `bv[j]` a broadcast — pure vfmadd chains on the packed panels.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn micro_accumulate_avx512(ap: &[f64], bp: &[f64]) -> [[f64; MR512]; NR] {
    micro_accumulate_16(ap, bp)
}

/// Run the microkernel for the dispatched row tile `mrt`, accumulating into
/// the caller's max-width tile (only `acc[j][..mrt]` is written/meaningful).
/// `mrt == MR512` is only ever dispatched on an AVX-512 host (see
/// [`dispatched_mr`]); the portable 16-wide body is kept as a safety net.
#[inline(always)]
fn run_micro(mrt: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; MR512]; NR]) {
    if mrt == MR512 {
        #[cfg(target_arch = "x86_64")]
        if simd_tier() == SimdTier::Avx512 {
            // SAFETY: guarded by the runtime tier check above.
            *acc = unsafe { micro_accumulate_avx512(ap, bp) };
            return;
        }
        *acc = micro_accumulate_16(ap, bp);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd_tier() != SimdTier::Baseline {
        // AVX-512 hosts also take this arm for narrow (m < MR512) calls:
        // the AVX2 tile is the better fit there and zmm warm-up is avoided.
        // SAFETY: Avx2Fma/Avx512 both imply avx2+fma support.
        let t = unsafe { micro_accumulate_fma(ap, bp) };
        for j in 0..NR {
            acc[j][..MR].copy_from_slice(&t[j]);
        }
        return;
    }
    let t = micro_accumulate(ap, bp);
    for j in 0..NR {
        acc[j][..MR].copy_from_slice(&t[j]);
    }
}

/// The blocked-packed macro loops over one C target (serial). `beta` has
/// already been applied; this purely accumulates `alpha * op(A) op(B)`.
fn packed_accumulate(ta: Op, tb: Op, alpha: f64, a: MatRef<'_>, b: MatRef<'_>, c: MatMut<'_>) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    let mrt = dispatched_mr(m);
    packed_macro_loops(mrt, tb, alpha, m, k, b, c, |ic, pc, mc, kc, buf| {
        pack_a(ta, a, ic, pc, mc, kc, mrt, buf)
    });
}

/// The macro-loop body shared by the all-f64 and mixed-precision packed
/// kernels: only the pack-A stage differs (where the f32 → f64 promotion
/// happens), so everything downstream of packing is literally the same code.
#[allow(clippy::too_many_arguments)]
fn packed_macro_loops<PA>(
    mrt: usize,
    tb: Op,
    alpha: f64,
    m: usize,
    k: usize,
    b: MatRef<'_>,
    mut c: MatMut<'_>,
    pack_a_block: PA,
) where
    PA: Fn(usize, usize, usize, usize, &mut Vec<f64>),
{
    let n = tb.cols_of(b);
    let mut apack: Vec<f64> = Vec::new();
    let mut bpack: Vec<f64> = Vec::new();
    let mut packed_bytes = 0u64;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(tb, b, pc, jc, kc, nc, &mut bpack);
            packed_bytes += (bpack.len() * 8) as u64;
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a_block(ic, pc, mc, kc, &mut apack);
                packed_bytes += (apack.len() * 8) as u64;
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * NR * kc..][..NR * kc];
                    for ir in (0..mc).step_by(mrt) {
                        let mr = mrt.min(mc - ir);
                        let ap = &apack[(ir / mrt) * mrt * kc..][..mrt * kc];
                        let mut acc = [[0.0f64; MR512]; NR];
                        run_micro(mrt, ap, bp, &mut acc);
                        // Single write-out pass with alpha fused; only the
                        // valid mr x nr corner of the padded tile lands.
                        for j in 0..nr {
                            let col = c.col_mut(jc + jr + j);
                            let dst = &mut col[ic + ir..ic + ir + mr];
                            let accj = &acc[j];
                            for (d, &v) in dst.iter_mut().zip(accj.iter()) {
                                *d += alpha * v;
                            }
                        }
                    }
                }
            }
        }
    }
    stats::add_pack(1, packed_bytes);
}

/// Mixed-precision GEMM: `C = alpha * op(A₃₂) * op(B) + beta * C` with the
/// `A` operand **stored in f32** and all arithmetic accumulating in f64.
///
/// Above the crossover this packs the f32 operand straight into the f64
/// micro-panels ([`pack_a32`] — promotion happens at the packing stage, so
/// the register-tiled microkernel is byte-for-byte the all-f64 one); below
/// it the operand is promoted once and the naive kernel runs. Either way
/// the result is **bitwise identical** to [`gemm`] on `a.promote()` — the
/// contract that lets block stores keep a promoted f64 working copy while
/// shipping and storing the f32 form.
pub fn gemm_mixed(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: &Mat32,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, k) = match ta {
        Op::NoTrans => (a.rows(), a.cols()),
        Op::Trans => (a.cols(), a.rows()),
    };
    let k2 = tb.rows_of(b);
    let n = tb.cols_of(b);
    assert_eq!(k, k2, "gemm_mixed: inner dimension mismatch ({k} vs {k2})");
    assert_eq!(c.rows(), m, "gemm_mixed: C row mismatch");
    assert_eq!(c.cols(), n, "gemm_mixed: C col mismatch");
    if beta != 1.0 {
        if beta == 0.0 {
            c.fill(0.0);
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_packed(m, n, k) {
        let mrt = dispatched_mr(m);
        packed_macro_loops(mrt, tb, alpha, m, k, b, c, |ic, pc, mc, kc, buf| {
            pack_a32(ta, a, ic, pc, mc, kc, mrt, buf)
        });
    } else {
        let ap = a.promote();
        naive_accumulate(ta, tb, alpha, ap.rf(), b, c);
    }
}

/// Convenience: allocate and return `op(A) * op(B)`.
pub fn matmul(ta: Op, tb: Op, a: MatRef<'_>, b: MatRef<'_>) -> Mat {
    let mut c = Mat::zeros(ta.rows_of(a), tb.cols_of(b));
    gemm(ta, tb, 1.0, a, b, 0.0, c.rm());
    c
}

/// Parallel GEMM for large products (`C = alpha op(A) op(B) + beta C`).
///
/// Two decompositions of the same packed kernel, chosen by the shape of C:
///
/// * **Tall C (`m ≥ 2·MC`): row bands sharing packed B.** Each `KC × NC`
///   panel of `op(B)` is packed **once** and every pool task's macro loop
///   reads it; a task owns one `MC`-row band of C and packs only its own
///   `op(A)` block. Nothing is packed twice per `jc` sweep — this removes
///   the per-worker repacking of the previous column-split scheme, where
///   every task re-packed the *entire* `op(A)` (threads × m × k staged
///   bytes).
/// * **Short-and-wide C: disjoint `NR`-aligned column panels.** Each task
///   runs the full serial kernel on its panel against the matching columns
///   of `op(B)`. B panels are disjoint by construction and the redundant
///   per-task A packing is cheap exactly when `m` is small.
///
/// Used by dense samplers and the frontal Schur updates where a single
/// product is the whole workload.
pub fn par_gemm(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    let n = c.cols();
    let m = c.rows();
    let k = ta.cols_of(a);
    let work = m.saturating_mul(n).saturating_mul(k);
    // Size guard first: the thread-count query hits the (cached) cgroup
    // probe, and small products must stay exactly as cheap as `gemm`.
    if work < 1 << 18 {
        gemm(ta, tb, alpha, a, b, beta, c);
        return;
    }
    let threads = rayon::current_num_threads().max(1);
    if threads == 1 {
        gemm(ta, tb, alpha, a, b, beta, c);
        return;
    }
    // Shared-B row bands only make sense on the packed kernel; large
    // sub-crossover shapes (e.g. skinny-k rank updates) keep the parallel
    // column split, whose panel tasks run the naive kernel concurrently.
    if m >= 2 * MC && use_packed(m, n, k) {
        par_gemm_shared_b(ta, tb, alpha, a, b, beta, c);
        return;
    }
    if n < 2 * NR {
        gemm(ta, tb, alpha, a, b, beta, c);
        return;
    }
    // NR-aligned column panels, at most NC wide, ~4 per thread so the
    // work-stealing pool can balance panels of unequal cost.
    let chunk = n
        .div_ceil(threads * 4)
        .div_ceil(NR)
        .saturating_mul(NR)
        .clamp(NR, NC);

    // Partition C into disjoint column views, pairing each with the
    // matching columns of op(B).
    let mut tasks: Vec<(usize, MatMut<'_>)> = Vec::new();
    let mut rest = c;
    let mut j0 = 0;
    while j0 < n {
        let w = chunk.min(n - j0);
        let (head, tail) = rest.split_cols(w);
        tasks.push((j0, head));
        rest = tail;
        j0 += w;
    }
    tasks.into_par_iter().for_each(|(j0, cj)| {
        let w = cj.cols();
        let bj = match tb {
            Op::NoTrans => b.view(0, j0, b.rows(), w),
            Op::Trans => b.view(j0, 0, w, b.cols()),
        };
        gemm(ta, tb, alpha, a, bj, beta, cj);
    });
}

/// Base pointer of C handed to the row-band tasks; bands write provably
/// disjoint row ranges of every column, which column-major slices cannot
/// express as disjoint subslices.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: every task writes only its own `MC`-row band (disjoint row
// ranges), so concurrent access never aliases an element.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// The shared-B parallel macro loop: `jc`/`pc` sweeps are serial, each
/// `KC × NC` B panel is packed once, and the `MC`-row bands of C run on the
/// pool — each band packing only its own A block and accumulating straight
/// into its rows of C.
fn par_gemm_shared_b(
    ta: Op,
    tb: Op,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, n, k) = check_and_scale(ta, tb, a, b, beta, &mut c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let (cptr, ld) = c.raw_parts_mut();
    let cptr = SendPtr(cptr);
    let nbands = m.div_ceil(MC);
    let mrt = dispatched_mr(m);
    let mut bpack: Vec<f64> = Vec::new();
    let mut packed_bytes = 0u64;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(tb, b, pc, jc, kc, nc, &mut bpack);
            packed_bytes += (bpack.len() * 8) as u64;
            let bref: &[f64] = &bpack;
            (0..nbands)
                .collect::<Vec<usize>>()
                .into_par_iter()
                .for_each(|band| {
                    // Bind the wrapper so the closure captures `SendPtr`
                    // (Send + Sync), not the raw pointer field.
                    let cp = cptr;
                    let ic = band * MC;
                    let mc = MC.min(m - ic);
                    let mut apack: Vec<f64> = Vec::new();
                    pack_a(ta, a, ic, pc, mc, kc, mrt, &mut apack);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let bp = &bref[(jr / NR) * NR * kc..][..NR * kc];
                        for ir in (0..mc).step_by(mrt) {
                            let mr = mrt.min(mc - ir);
                            let ap = &apack[(ir / mrt) * mrt * kc..][..mrt * kc];
                            let mut acc = [[0.0f64; MR512]; NR];
                            run_micro(mrt, ap, bp, &mut acc);
                            for j in 0..nr {
                                // SAFETY: this band owns rows ic..ic+mc of
                                // every column; tiles of one band are
                                // visited serially.
                                let col = unsafe { cp.0.add((jc + jr + j) * ld + ic + ir) };
                                let accj = &acc[j];
                                for (i, &v) in accj.iter().take(mr).enumerate() {
                                    unsafe { *col.add(i) += alpha * v };
                                }
                            }
                        }
                    }
                });
            // A bands are packed exactly once per (jc, pc) block across all
            // tasks — count their staging traffic analytically.
            packed_bytes += (0..nbands)
                .map(|band| {
                    let mc = MC.min(m - band * MC);
                    (mc.div_ceil(mrt) * mrt * kc * 8) as u64
                })
                .sum::<u64>();
        }
    }
    stats::add_pack(1, packed_bytes);
}

/// Matrix-vector product `y = alpha * op(A) * x + beta * y`.
pub fn gemv(ta: Op, alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let m = ta.rows_of(a);
    let k = ta.cols_of(a);
    assert_eq!(x.len(), k, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    stats::add_gemv();
    if beta != 1.0 {
        if beta == 0.0 {
            y.fill(0.0);
        } else {
            for v in y.iter_mut() {
                *v *= beta;
            }
        }
    }
    match ta {
        Op::NoTrans => {
            for l in 0..k {
                let s = alpha * x[l];
                if s != 0.0 {
                    for (yi, ai) in y.iter_mut().zip(a.col(l)) {
                        *yi += s * ai;
                    }
                }
            }
        }
        Op::Trans => {
            for (i, yi) in y.iter_mut().enumerate() {
                let ai = a.col(i);
                let mut s = 0.0;
                for l in 0..k {
                    s += ai[l] * x[l];
                }
                *yi += alpha * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::gaussian_mat;

    fn naive(ta: Op, tb: Op, a: &Mat, b: &Mat) -> Mat {
        let ar = ta.rows_of(a.rf());
        let ak = ta.cols_of(a.rf());
        let bn = tb.cols_of(b.rf());
        let get_a = |i: usize, l: usize| match ta {
            Op::NoTrans => a[(i, l)],
            Op::Trans => a[(l, i)],
        };
        let get_b = |l: usize, j: usize| match tb {
            Op::NoTrans => b[(l, j)],
            Op::Trans => b[(j, l)],
        };
        Mat::from_fn(ar, bn, |i, j| {
            (0..ak).map(|l| get_a(i, l) * get_b(l, j)).sum()
        })
    }

    #[test]
    fn all_transpose_combos_match_naive() {
        for (m, k, n) in [(3, 4, 5), (1, 7, 2), (6, 1, 3), (5, 5, 5)] {
            for ta in [Op::NoTrans, Op::Trans] {
                for tb in [Op::NoTrans, Op::Trans] {
                    let a = match ta {
                        Op::NoTrans => gaussian_mat(m, k, 1),
                        Op::Trans => gaussian_mat(k, m, 1),
                    };
                    let b = match tb {
                        Op::NoTrans => gaussian_mat(k, n, 2),
                        Op::Trans => gaussian_mat(n, k, 2),
                    };
                    let c = matmul(ta, tb, a.rf(), b.rf());
                    let want = naive(ta, tb, &a, &b);
                    let mut diff = c.clone();
                    diff.axpy(-1.0, &want);
                    assert!(diff.norm_max() < 1e-12, "mismatch for {ta:?},{tb:?}");
                }
            }
        }
    }

    #[test]
    fn packed_path_matches_naive_reference() {
        // Sizes chosen above the crossover with non-multiple-of-tile edges.
        for (m, k, n) in [(61, 67, 59), (128, 64, 37), (40, 300, 40)] {
            for ta in [Op::NoTrans, Op::Trans] {
                for tb in [Op::NoTrans, Op::Trans] {
                    let a = match ta {
                        Op::NoTrans => gaussian_mat(m, k, 11),
                        Op::Trans => gaussian_mat(k, m, 11),
                    };
                    let b = match tb {
                        Op::NoTrans => gaussian_mat(k, n, 12),
                        Op::Trans => gaussian_mat(n, k, 12),
                    };
                    let mut c1 = gaussian_mat(m, n, 13);
                    let mut c2 = c1.clone();
                    gemm(ta, tb, 1.5, a.rf(), b.rf(), -0.5, c1.rm());
                    gemm_naive(ta, tb, 1.5, a.rf(), b.rf(), -0.5, c2.rm());
                    let mut diff = c1;
                    diff.axpy(-1.0, &c2);
                    let scale = c2.norm_max().max(1.0);
                    assert!(
                        diff.norm_max() / scale < 1e-13,
                        "packed mismatch for {ta:?},{tb:?} ({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatched_mr_is_consistent_with_tier() {
        // The per-call tile never exceeds m once m >= MR, so the crossover
        // guard cannot demote mid-size blocks on any tier.
        for m in [8, 9, 12, 15, 16, 17, 31, 64] {
            let mrt = dispatched_mr(m);
            assert!(mrt == MR || mrt == MR512);
            assert!(m >= mrt, "tile {mrt} exceeds m={m}");
            if mrt == MR512 {
                assert_eq!(simd_tier(), SimdTier::Avx512);
                assert!(m >= MR512);
            }
        }
        // Below a full narrow panel the naive kernel keeps the call.
        assert!(!use_packed(MR - 1, 64, 64));
        // The satellite-1 regression: every m in [MR, MR512) must stay on
        // the packed path even when the host dispatches the wide tile for
        // larger operands.
        for m in MR..MR512 {
            assert!(use_packed(m, 64, 64), "m={m} fell off the packed path");
        }
    }

    #[test]
    fn wide_tile_boundary_shapes_match_naive() {
        // Shapes straddling the MR512 panel boundary (and the mc tails the
        // widened packing pads) — on an AVX-512 host these run the 16-row
        // microkernel, elsewhere the narrow tile; both must equal the
        // reference bitwise-agnostically.
        for (m, k, n) in [(16, 32, 8), (17, 64, 12), (15, 64, 12), (48, 33, 20)] {
            for ta in [Op::NoTrans, Op::Trans] {
                for tb in [Op::NoTrans, Op::Trans] {
                    let a = match ta {
                        Op::NoTrans => gaussian_mat(m, k, 61),
                        Op::Trans => gaussian_mat(k, m, 61),
                    };
                    let b = match tb {
                        Op::NoTrans => gaussian_mat(k, n, 62),
                        Op::Trans => gaussian_mat(n, k, 62),
                    };
                    let mut c1 = gaussian_mat(m, n, 63);
                    let mut c2 = c1.clone();
                    gemm(ta, tb, 1.25, a.rf(), b.rf(), -0.75, c1.rm());
                    gemm_naive(ta, tb, 1.25, a.rf(), b.rf(), -0.75, c2.rm());
                    let mut diff = c1;
                    diff.axpy(-1.0, &c2);
                    let scale = c2.norm_max().max(1.0);
                    assert!(
                        diff.norm_max() / scale < 1e-13,
                        "tile-boundary mismatch for {ta:?},{tb:?} ({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_rhs_per_column_bitwise_invariant_in_width() {
        // The blocked-solve contract: column j of C must be bitwise
        // identical whether computed alone (n = 1) or inside any wider
        // RHS panel — including widths on both sides of NR and the
        // `use_packed` volume crossover that `gemm_rhs` deliberately
        // ignores.
        for (m, k) in [(32, 16), (17, 64), (8, 8), (5, 4), (48, 33)] {
            for ta in [Op::NoTrans, Op::Trans] {
                let a = match ta {
                    Op::NoTrans => gaussian_mat(m, k, 41),
                    Op::Trans => gaussian_mat(k, m, 41),
                };
                let b = gaussian_mat(k, 32, 42);
                let c0 = gaussian_mat(m, 32, 43);
                let mut wide = c0.clone();
                gemm_rhs(ta, Op::NoTrans, 1.5, a.rf(), b.rf(), -0.5, wide.rm());
                for n in [1usize, 3, 8] {
                    for c0col in [0usize, 32 - n] {
                        let mut narrow = c0.col_block(c0col, n).to_mat();
                        gemm_rhs(
                            ta,
                            Op::NoTrans,
                            1.5,
                            a.rf(),
                            b.col_block(c0col, n),
                            -0.5,
                            narrow.rm(),
                        );
                        assert_eq!(
                            narrow.as_slice(),
                            wide.col_block(c0col, n).to_mat().as_slice(),
                            "gemm_rhs column drifted with width ({m},{k}) n={n} at {c0col}"
                        );
                    }
                }
                // And the dispatch must still agree numerically with the
                // reference kernel.
                let mut check = c0.clone();
                gemm_naive(ta, Op::NoTrans, 1.5, a.rf(), b.rf(), -0.5, check.rm());
                let mut diff = wide.clone();
                diff.axpy(-1.0, &check);
                let scale = check.norm_max().max(1.0);
                assert!(
                    diff.norm_max() / scale < 1e-13,
                    "gemm_rhs vs naive ({m},{k})"
                );
            }
        }
    }

    #[test]
    fn packed_path_records_pack_traffic() {
        let a = gaussian_mat(96, 96, 21);
        let b = gaussian_mat(96, 96, 22);
        let before = stats::snapshot();
        let _ = matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf());
        let after = stats::snapshot();
        assert!(
            after.pack_calls > before.pack_calls,
            "a 96^3 product must take the packed path"
        );
        assert!(after.pack_bytes > before.pack_bytes);
    }

    #[test]
    fn gemm_mixed_bitwise_equals_gemm_on_promoted_copy() {
        // Both the packed (large) and naive (small) shapes: the mixed path
        // must equal the all-f64 kernel on the round-trip working copy
        // exactly, not merely to roundoff — that is the promote-on-pack
        // contract block stores rely on.
        for (m, k, n) in [(61, 67, 59), (5, 4, 3), (128, 64, 16)] {
            for ta in [Op::NoTrans, Op::Trans] {
                for tb in [Op::NoTrans, Op::Trans] {
                    let a = match ta {
                        Op::NoTrans => gaussian_mat(m, k, 17),
                        Op::Trans => gaussian_mat(k, m, 17),
                    };
                    let b = match tb {
                        Op::NoTrans => gaussian_mat(k, n, 18),
                        Op::Trans => gaussian_mat(n, k, 18),
                    };
                    let a32 = Mat32::demote(a.rf());
                    let awork = a32.promote();
                    let mut c1 = gaussian_mat(m, n, 19);
                    let mut c2 = c1.clone();
                    gemm_mixed(ta, tb, 1.5, &a32, b.rf(), -0.5, c1.rm());
                    gemm(ta, tb, 1.5, awork.rf(), b.rf(), -0.5, c2.rm());
                    assert_eq!(c1, c2, "mixed path diverged for {ta:?},{tb:?}");
                }
            }
        }
    }

    #[test]
    fn gemm_mixed_error_within_f32_eps_bound() {
        // vs the f64 reference on the *original* A: per entry the demotion
        // perturbs each of the k products by at most eps32 relative, so
        // |C_mixed - C_f64| <= eps32 * sum_l |A_il B_lj| <= eps32 * k * max.
        let (m, k, n) = (48, 96, 32);
        let a = gaussian_mat(m, k, 27);
        let b = gaussian_mat(k, n, 28);
        let a32 = Mat32::demote(a.rf());
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        gemm_mixed(Op::NoTrans, Op::NoTrans, 1.0, &a32, b.rf(), 0.0, c1.rm());
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c2.rm());
        let amax = a.norm_max();
        let bmax = b.norm_max();
        let bound = f32::EPSILON as f64 * k as f64 * amax * bmax;
        let mut diff = c1;
        diff.axpy(-1.0, &c2);
        assert!(
            diff.norm_max() <= bound,
            "mixed error {} exceeds eps32*k bound {}",
            diff.norm_max(),
            bound
        );
        assert!(diff.norm_max() > 0.0, "demotion must actually perturb");
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = gaussian_mat(4, 3, 3);
        let b = gaussian_mat(3, 2, 4);
        let mut c = gaussian_mat(4, 2, 5);
        let c0 = c.clone();
        gemm(Op::NoTrans, Op::NoTrans, 2.0, a.rf(), b.rf(), 0.5, c.rm());
        let mut want = matmul(Op::NoTrans, Op::NoTrans, a.rf(), b.rf());
        want.scale(2.0);
        want.axpy(0.5, &c0);
        let mut diff = c;
        diff.axpy(-1.0, &want);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn gemm_on_views() {
        let a = gaussian_mat(8, 8, 6);
        let b = gaussian_mat(8, 8, 7);
        let mut c = Mat::zeros(3, 4);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            a.view(2, 1, 3, 5),
            b.view(3, 2, 5, 4),
            0.0,
            c.rm(),
        );
        let asub = a.view(2, 1, 3, 5).to_mat();
        let bsub = b.view(3, 2, 5, 4).to_mat();
        let want = matmul(Op::NoTrans, Op::NoTrans, asub.rf(), bsub.rf());
        let mut diff = c;
        diff.axpy(-1.0, &want);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn packed_gemm_on_strided_views() {
        // Views of a larger parent exercise ld > rows through the packing.
        let a = gaussian_mat(200, 200, 31);
        let b = gaussian_mat(200, 200, 32);
        let (m, k, n) = (120, 100, 90);
        let av = a.view(7, 3, m, k);
        let bv = b.view(11, 5, k, n);
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, av, bv, 0.0, c1.rm());
        gemm_naive(Op::NoTrans, Op::NoTrans, 1.0, av, bv, 0.0, c2.rm());
        let mut diff = c1;
        diff.axpy(-1.0, &c2);
        assert!(diff.norm_max() < 1e-12 * c2.norm_max().max(1.0));
    }

    #[test]
    fn par_gemm_matches_gemm() {
        let a = gaussian_mat(64, 96, 8);
        let b = gaussian_mat(96, 200, 9);
        let mut c1 = Mat::zeros(64, 200);
        let mut c2 = Mat::zeros(64, 200);
        gemm(Op::NoTrans, Op::NoTrans, 1.5, a.rf(), b.rf(), 0.0, c1.rm());
        par_gemm(Op::NoTrans, Op::NoTrans, 1.5, a.rf(), b.rf(), 0.0, c2.rm());
        let mut diff = c1;
        diff.axpy(-1.0, &c2);
        assert!(diff.norm_max() < 1e-12);
    }

    #[test]
    fn par_gemm_shared_b_matches_gemm_all_combos() {
        // m >= 2*MC routes through the shared-B row-band path; edge sizes
        // exercise partial bands/tiles, alpha/beta the fused write-out.
        let (m, k, n) = (2 * super::MC + 37, 83, 57);
        for ta in [Op::NoTrans, Op::Trans] {
            for tb in [Op::NoTrans, Op::Trans] {
                let a = match ta {
                    Op::NoTrans => gaussian_mat(m, k, 41),
                    Op::Trans => gaussian_mat(k, m, 41),
                };
                let b = match tb {
                    Op::NoTrans => gaussian_mat(k, n, 42),
                    Op::Trans => gaussian_mat(n, k, 42),
                };
                let mut c1 = gaussian_mat(m, n, 43);
                let mut c2 = c1.clone();
                gemm(ta, tb, 1.5, a.rf(), b.rf(), -0.5, c1.rm());
                par_gemm(ta, tb, 1.5, a.rf(), b.rf(), -0.5, c2.rm());
                let mut diff = c1;
                diff.axpy(-1.0, &c2);
                let scale = c2.norm_max().max(1.0);
                assert!(
                    diff.norm_max() / scale < 1e-13,
                    "shared-B mismatch for {ta:?},{tb:?}"
                );
            }
        }
    }

    #[test]
    fn par_gemm_shared_b_on_strided_views() {
        // Sub-views force ld > rows through the row-band raw-pointer writes.
        let parent_a = gaussian_mat(400, 200, 51);
        let parent_b = gaussian_mat(200, 100, 52);
        let mut parent_c = gaussian_mat(400, 100, 53);
        let (m, k, n) = (300, 150, 64);
        let av = parent_a.view(9, 11, m, k);
        let bv = parent_b.view(3, 5, k, n);
        let mut c2 = parent_c.view(7, 13, m, n).to_mat();
        par_gemm(
            Op::NoTrans,
            Op::NoTrans,
            2.0,
            av,
            bv,
            1.0,
            parent_c.view_mut(7, 13, m, n),
        );
        gemm(Op::NoTrans, Op::NoTrans, 2.0, av, bv, 1.0, c2.rm());
        let got = parent_c.view(7, 13, m, n).to_mat();
        let mut diff = got;
        diff.axpy(-1.0, &c2);
        assert!(diff.norm_max() < 1e-12 * c2.norm_max().max(1.0));
    }

    #[test]
    fn gemv_matches_gemm() {
        let a = gaussian_mat(5, 4, 10);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let mut y = vec![1.0; 5];
        gemv(Op::NoTrans, 2.0, a.rf(), &x, 3.0, &mut y);
        let xm = Mat::from_vec(4, 1, x);
        let mut want = Mat::from_vec(5, 1, vec![1.0; 5]);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            2.0,
            a.rf(),
            xm.rf(),
            3.0,
            want.rm(),
        );
        for i in 0..5 {
            assert!((y[i] - want[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 2);
        let mut c = Mat::zeros(0, 2);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c.rm());
        let a2 = Mat::zeros(2, 0);
        let b2 = Mat::zeros(0, 3);
        let mut c2 = Mat::from_fn(2, 3, |_, _| 7.0);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            1.0,
            a2.rf(),
            b2.rf(),
            0.0,
            c2.rm(),
        );
        assert_eq!(c2.norm_max(), 0.0, "k=0 with beta=0 must clear C");
    }
}
