//! `ExecReport` invariants: per device and epoch the accounted durations
//! exactly tile the epoch span (`busy + stall + overlapped + idle ==
//! span`), and `modeled_makespan` is exactly the sum over epochs of the
//! max-over-devices schedule-aware projection — in both fabric modes at
//! D ∈ {1, 2, 4}. Also pins the metrics-export reconciliation: the
//! observability counters equal the report accessors byte-for-byte and
//! launch-for-launch.

use h2_core::SketchConfig;
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_runtime::{DeviceModel, PipelineMode, Registry};
use h2_sched::{shard_construct, DeviceFabric, ExecReport, LinkModel};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        adaptive: false,
        ..Default::default()
    }
}

fn run_construct(devices: usize, mode: PipelineMode) -> ExecReport {
    let (tree, part, km) = sym_problem(1200, 16, 181);
    // A CPU-scale link so transfers take visible time: stall (sync) and
    // overlapped (pipelined) durations are exercised, not just zeros.
    let fabric = DeviceFabric::with_config(devices, mode, LinkModel::cpu_scale());
    let (_, _, report) = shard_construct(&fabric, &km, &km, tree, part, &cfg());
    report
}

/// Independent re-derivation of the projection formula, used to pin
/// `modeled_makespan` as exactly the sum of per-epoch schedule terms.
fn recompute_makespan(report: &ExecReport, model: &DeviceModel) -> f64 {
    report
        .epochs
        .iter()
        .map(|e| {
            let compute_max = e
                .per_device
                .iter()
                .map(|d| (d.flops + model.entry_cost * d.gen_entries) / model.flops_per_sec)
                .fold(0.0, f64::max);
            let comm = e.comm_bytes as f64 / model.link_bandwidth
                + e.comm_messages as f64 * model.link_latency;
            let launches_max = e.per_device.iter().map(|d| d.launches).max().unwrap_or(0);
            let launch = launches_max as f64 * model.launch_overhead;
            // Synchronous: the three terms serialize. Pipelined: job-level
            // dependency chaining overlaps them, so the epoch costs
            // whichever single term dominates.
            match report.mode {
                PipelineMode::Synchronous => compute_max + comm + launch,
                PipelineMode::Pipelined => compute_max.max(comm).max(launch),
            }
        })
        .sum()
}

#[test]
fn durations_exactly_tile_every_epoch_span() {
    for devices in DEVICE_COUNTS {
        for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
            let report = run_construct(devices, mode);
            assert!(!report.epochs.is_empty());
            for (i, e) in report.epochs.iter().enumerate() {
                assert_eq!(e.per_device.len(), devices);
                for (dev, d) in e.per_device.iter().enumerate() {
                    let tiled = d.busy + d.stall + d.overlapped + d.idle;
                    assert_eq!(
                        tiled, e.span,
                        "D={devices} {mode:?} epoch {i} ({}) dev {dev}: \
                         busy {:?} + stall {:?} + overlapped {:?} + idle {:?} != span {:?}",
                        e.label, d.busy, d.stall, d.overlapped, d.idle, e.span
                    );
                }
            }
            // The tiling implies the totals tile the summed spans too.
            let spans: std::time::Duration = report.epochs.iter().map(|e| e.span).sum();
            let busy: std::time::Duration = report.busy_per_device().iter().sum();
            let accounted =
                busy + report.stall_total() + report.overlapped_total() + report.idle_total();
            let spans_all_devices = spans * devices as u32;
            assert_eq!(accounted, spans_all_devices, "D={devices} {mode:?}");
        }
    }
}

#[test]
fn modeled_makespan_is_sum_of_per_epoch_projections() {
    let model = DeviceModel::default();
    for devices in DEVICE_COUNTS {
        for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
            let report = run_construct(devices, mode);
            let recomputed = recompute_makespan(&report, &model);
            let got = report.modeled_makespan(&model);
            assert_eq!(
                got, recomputed,
                "D={devices} {mode:?}: modeled_makespan diverged from the \
                 per-epoch schedule projection"
            );
            // And the per-epoch accessor decomposes it exactly.
            let summed: f64 = (0..report.epochs.len())
                .map(|i| report.epoch_makespan(i, &model))
                .sum();
            assert_eq!(got, summed, "D={devices} {mode:?}");
            // epoch_terms is the same decomposition one level down.
            for i in 0..report.epochs.len() {
                let (compute, comm, launch) = report.epoch_terms(i, &model);
                let combined = match mode {
                    PipelineMode::Synchronous => compute + comm + launch,
                    PipelineMode::Pipelined => compute.max(comm).max(launch),
                };
                assert_eq!(report.epoch_makespan(i, &model), combined);
            }
        }
    }
}

#[test]
fn exported_metrics_reconcile_with_report_totals() {
    let report = run_construct(4, PipelineMode::Pipelined);
    let registry = Registry::new();
    report.export_metrics(&registry);
    assert_eq!(
        registry.counter_value("fabric.comm_bytes"),
        Some(report.total_comm_bytes()),
        "byte-for-byte reconciliation"
    );
    assert_eq!(
        registry.counter_value("fabric.comm_messages"),
        Some(report.total_comm_messages() as u64)
    );
    assert_eq!(
        registry.counter_value("fabric.launches"),
        Some(report.total_launches() as u64),
        "launch-for-launch reconciliation"
    );
    assert_eq!(
        registry.counter_value("fabric.epochs"),
        Some(report.epochs.len() as u64)
    );
    // Per-kind byte counters partition the total.
    let snap = registry.snapshot();
    let kind_sum: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("fabric.bytes."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(kind_sum, report.total_comm_bytes());
    // Per-device time counters match the report's duration totals.
    let busy = report.busy_per_device();
    for dev in 0..report.devices {
        assert_eq!(
            registry.counter_value(&format!("fabric.dev{dev}.busy_ns")),
            Some(busy[dev].as_nanos() as u64)
        );
    }
    let stall_sum: u64 = (0..report.devices)
        .map(|d| {
            registry
                .counter_value(&format!("fabric.dev{d}.stall_ns"))
                .unwrap()
        })
        .sum();
    assert_eq!(stall_sum, report.stall_total().as_nanos() as u64);
}
