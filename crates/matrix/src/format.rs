//! The side-generic H2 matrix representation.
//!
//! An H2 matrix (paper §II.A) stores:
//! * explicit bases `U_τ` at leaf clusters,
//! * transfer matrices `E_{ν1}, E_{ν2}` at inner clusters (stored stacked as
//!   one `(k_{ν1}+k_{ν2}) x k_τ` matrix — the nested-basis property,
//!   eq. (2)),
//! * small coupling matrices `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)` for admissible
//!   pairs,
//! * dense blocks `D_{s,t} = K(I_s, I_t)` for inadmissible leaf pairs.
//!
//! One type covers both symmetry regimes. The *row* side (`basis`/`skel` —
//! the basis tree `U` and row skeletons `Ĩ^r`) always exists. The *column*
//! side is [`BasisSide`]-valued and optional:
//!
//! * **symmetric** (`col == None`, the paper's simplification `V_t = U_t`):
//!   the column side aliases the row side, and the block stores deduplicate
//!   by unordered pair (`s <= t`) with the transposed orientation applied on
//!   the fly;
//! * **unsymmetric** (`col == Some(..)`): an independent column basis tree
//!   `V` with its own skeletons `Ĩ^c`, and block stores keyed by *ordered*
//!   pairs — for an unsymmetric matrix `K(I_s, I_t)` and `K(I_t, I_s)` are
//!   disjoint entry sets, so near-field memory doubles inherently.
//!
//! The same [`BlockStore`] implements both keying disciplines (and therefore
//! one `memory_bytes` accounting); [`BlockStore::get_op`] answers "the block
//! of `K` or `Kᵀ` at ordered position `(s, t)`" uniformly, which is what the
//! matvec and the construction's BSR subtraction consume.
//!
//! ## Storage precision tier
//!
//! Every block carries a storage [`Precision`]. Blocks are inserted f64 and
//! optionally **demoted** to f32 by the norm-aware rule of
//! [`BlockStore::demote_pending`]: a block `B` moves to f32 storage only
//! when the rounding error it introduces — at most `(ε₃₂/2)·‖B‖_F` with
//! `ε₃₂ = f32::EPSILON` — stays below the construction's absolute tolerance,
//! so the H2 approximation error bound survives demotion by construction
//! rather than by hope. A demoted block keeps an f64 *working copy* whose
//! entries are exactly the stored f32 values round-tripped
//! ([`h2_dense::demote_roundtrip`]), so every consumer that reads the `Mat`
//! computes bitwise the same result as the promote-on-pack mixed-precision
//! GEMM reading the f32 block directly ([`h2_dense::gemm_mixed`] — the
//! matvec's coupling/near-field path). [`BlockStore::memory_bytes`] counts
//! demoted blocks at their stored width (4 bytes/element), the footprint a
//! device-resident build would hold; basis demotion on [`H2Matrix`] follows
//! the same rule per node via [`H2Matrix::demote_level`].

use h2_dense::{demote_roundtrip, Mat, Mat32, Precision};
use h2_tree::{ClusterTree, Partition};
use std::collections::HashMap;
use std::sync::Arc;

/// Keying discipline of a [`BlockStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreLayout {
    /// Blocks stored once per unordered pair (`s <= t`); the `(t, s)` block
    /// is the stored block transposed (valid for symmetric matrices).
    Symmetric,
    /// Blocks stored per ordered pair; `(s, t)` and `(t, s)` are
    /// independent.
    Ordered,
}

/// Storage for per-pair blocks under either keying discipline.
pub struct BlockStore {
    /// Stored pair keys (unordered `s <= t` for [`StoreLayout::Symmetric`],
    /// ordered otherwise), in insertion order.
    pub pairs: Vec<(usize, usize)>,
    /// `blocks[i]` is the block of `pairs[i]`, oriented as
    /// `K(rows(pairs[i].0), cols(pairs[i].1))`. For a demoted block this is
    /// the f64 *working copy* of the stored f32 block (exactly
    /// f32-representable values — see the module docs).
    pub blocks: Vec<Mat>,
    /// `blocks32[i]` is the f32 storage of a demoted block, `None` while
    /// the block is stored f64. Always the same length as `blocks`.
    pub blocks32: Vec<Option<Mat32>>,
    index: HashMap<(usize, usize), usize>,
    layout: StoreLayout,
    /// Demotion cursor: blocks below this index have been through
    /// [`BlockStore::demote_pending`].
    scanned: usize,
}

impl Default for BlockStore {
    fn default() -> Self {
        BlockStore::symmetric()
    }
}

impl BlockStore {
    /// A symmetric (unordered-pair) store — the historical default.
    pub fn new() -> Self {
        BlockStore::symmetric()
    }

    pub fn symmetric() -> Self {
        BlockStore {
            pairs: Vec::new(),
            blocks: Vec::new(),
            blocks32: Vec::new(),
            index: HashMap::new(),
            layout: StoreLayout::Symmetric,
            scanned: 0,
        }
    }

    pub fn ordered() -> Self {
        BlockStore {
            pairs: Vec::new(),
            blocks: Vec::new(),
            blocks32: Vec::new(),
            index: HashMap::new(),
            layout: StoreLayout::Ordered,
            scanned: 0,
        }
    }

    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Insert the block for pair `(s, t)`.
    ///
    /// Symmetric layout requires the canonical orientation `s <= t`; ordered
    /// layout accepts any pair. Duplicate keys panic in both layouts.
    pub fn insert(&mut self, s: usize, t: usize, block: Mat) {
        if self.layout == StoreLayout::Symmetric {
            assert!(
                s <= t,
                "symmetric BlockStore stores unordered pairs; pass s <= t"
            );
        }
        let idx = self.blocks.len();
        let prev = self.index.insert((s, t), idx);
        assert!(prev.is_none(), "duplicate block ({s},{t})");
        self.pairs.push((s, t));
        self.blocks.push(block);
        self.blocks32.push(None);
    }

    /// Norm-aware demotion sweep over blocks inserted since the last sweep
    /// (the construction calls this as each level's blocks finalize):
    /// a block `B` is demoted to f32 storage iff the rounding error bound
    /// `(ε₃₂/2)·‖B‖_F ≤ eps_abs`, i.e. iff demotion provably cannot breach
    /// the construction tolerance. The f64 entry in `blocks` is replaced by
    /// the round-tripped working copy. Returns how many blocks demoted.
    pub fn demote_pending(&mut self, eps_abs: f64) -> usize {
        let eps32 = 0.5 * f32::EPSILON as f64;
        let mut demoted = 0;
        for i in self.scanned..self.blocks.len() {
            let b = &self.blocks[i];
            if b.rows() * b.cols() == 0 || eps32 * b.norm_fro() > eps_abs {
                continue;
            }
            let m32 = Mat32::demote(b.rf());
            self.blocks[i] = m32.promote();
            self.blocks32[i] = Some(m32);
            demoted += 1;
        }
        self.scanned = self.blocks.len();
        demoted
    }

    /// Storage precision of block `i` (insertion order).
    pub fn precision_of(&self, i: usize) -> Precision {
        if self.blocks32[i].is_some() {
            Precision::F32
        } else {
            Precision::F64
        }
    }

    /// Number of blocks currently held in f32 storage.
    pub fn demoted_count(&self) -> usize {
        self.blocks32.iter().filter(|b| b.is_some()).count()
    }

    /// Re-establish the storage contract for block `i` after its working
    /// copy was mutated in place (e.g. a diagonal shift): a demoted block's
    /// f64 entry must stay the exact round-trip of its f32 storage, so the
    /// mutation is re-demoted and the working copy replaced by the new
    /// round-trip. No-op for blocks stored f64.
    pub fn resync_demoted(&mut self, i: usize) {
        if self.blocks32[i].is_some() {
            let m32 = Mat32::demote(self.blocks[i].rf());
            self.blocks[i] = m32.promote();
            self.blocks32[i] = Some(m32);
        }
    }

    /// The f32 storage of the block at ordered position `(s, t)` under
    /// `transpose` (same resolution as [`BlockStore::get_op`]), or `None`
    /// when the block is stored f64. The promote-on-pack GEMM path of the
    /// matvec consumes this.
    pub fn get_op32(&self, s: usize, t: usize, transpose: bool) -> Option<(&Mat32, bool)> {
        let (key, tr) = match self.layout {
            StoreLayout::Symmetric => ((s.min(t), s.max(t)), s > t),
            StoreLayout::Ordered => {
                if transpose {
                    ((t, s), true)
                } else {
                    ((s, t), false)
                }
            }
        };
        let &i = self.index.get(&key)?;
        self.blocks32[i].as_ref().map(|m| (m, tr))
    }

    /// Look up the block of `K` at the *ordered* position `(s, t)`. Returns
    /// the stored matrix and whether it must be read transposed.
    pub fn get(&self, s: usize, t: usize) -> Option<(&Mat, bool)> {
        match self.layout {
            StoreLayout::Symmetric => {
                let key = (s.min(t), s.max(t));
                self.index.get(&key).map(|&i| (&self.blocks[i], s > t))
            }
            StoreLayout::Ordered => self.index.get(&(s, t)).map(|&i| (&self.blocks[i], false)),
        }
    }

    /// Look up the block of `K` (`transpose == false`) or of `Kᵀ`
    /// (`transpose == true`) at the ordered position `(s, t)` —
    /// `Kᵀ(I_s, I_t) = K(I_t, I_s)ᵀ`. This is the one lookup the
    /// side-generic matvec and BSR subtraction need.
    ///
    /// A symmetric store represents a symmetric matrix, so `Kᵀ = K` and the
    /// flag is ignored — transpose products read *identical* blocks with
    /// identical orientations and are therefore bitwise equal to forward
    /// products, not merely equal up to roundoff.
    pub fn get_op(&self, s: usize, t: usize, transpose: bool) -> Option<(&Mat, bool)> {
        match self.layout {
            StoreLayout::Symmetric => self.get(s, t),
            StoreLayout::Ordered => {
                if transpose {
                    self.get(t, s).map(|(m, tr)| (m, !tr))
                } else {
                    self.get(s, t)
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Stored bytes of all blocks (identical accounting in both layouts):
    /// demoted blocks count at their f32 width — the footprint a
    /// device-resident build holds (the f64 working copy is a host-side
    /// convenience of this reference implementation).
    pub fn memory_bytes(&self) -> usize {
        let (f64b, f32b) = self.bytes_by_precision();
        f64b + f32b
    }

    /// Stored bytes split by precision: `(f64_bytes, f32_bytes)`.
    pub fn bytes_by_precision(&self) -> (usize, usize) {
        let mut out = (0usize, 0usize);
        for (i, b) in self.blocks.iter().enumerate() {
            match &self.blocks32[i] {
                Some(m32) => out.1 += m32.memory_bytes(),
                None => out.0 += b.memory_bytes(),
            }
        }
        out
    }
}

/// One side of the nested-basis pair: per-node bases/transfers plus
/// skeleton index lists.
#[derive(Default)]
pub struct BasisSide {
    /// Per node id: leaf basis (`m x k`) or stacked transfer
    /// `[E_{ν1}; E_{ν2}]` (`(k1+k2) x k`). Empty (0x0) above the top
    /// admissible level. For a demoted node this is the round-tripped f64
    /// working copy of the f32-stored basis.
    pub basis: Vec<Mat>,
    /// Per node id: skeleton (global permuted) indices, length = rank.
    pub skel: Vec<Vec<usize>>,
    /// Per node id: storage precision of the basis/transfer.
    pub prec: Vec<Precision>,
}

impl BasisSide {
    fn empty(nnodes: usize) -> Self {
        BasisSide {
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            prec: vec![Precision::F64; nnodes],
        }
    }
}

/// An H2 matrix over a cluster tree and block partition, symmetric or
/// unsymmetric (see the module docs for the side layout).
pub struct H2Matrix {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    /// Row-side basis `U_τ` (leaf) or stacked row transfers (inner).
    pub basis: Vec<Mat>,
    /// Row skeleton indices `Ĩ^r_τ` (global permuted), length = row rank.
    pub skel: Vec<Vec<usize>>,
    /// Per node id: storage precision of the row basis/transfer (demoted
    /// nodes hold the round-tripped working copy in `basis`).
    pub basis_prec: Vec<Precision>,
    /// Column side `V` / `Ĩ^c`. `None` means symmetric: the column side
    /// aliases the row side.
    pub col: Option<BasisSide>,
    /// Coupling blocks `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)` for admissible pairs.
    pub coupling: BlockStore,
    /// Dense leaf blocks `D_{s,t} = K(I_s, I_t)` for inadmissible pairs.
    pub dense: BlockStore,
}

impl H2Matrix {
    /// An empty *symmetric* shell ready to be populated by a constructor.
    pub fn new_shell(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2Matrix {
            tree,
            partition,
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            basis_prec: vec![Precision::F64; nnodes],
            col: None,
            coupling: BlockStore::symmetric(),
            dense: BlockStore::symmetric(),
        }
    }

    /// An empty *unsymmetric* shell: independent column side, ordered block
    /// stores.
    pub fn new_shell_unsym(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2Matrix {
            tree,
            partition,
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            basis_prec: vec![Precision::F64; nnodes],
            col: Some(BasisSide::empty(nnodes)),
            coupling: BlockStore::ordered(),
            dense: BlockStore::ordered(),
        }
    }

    pub fn n(&self) -> usize {
        self.tree.npoints()
    }

    /// Whether the column side aliases the row side.
    pub fn is_symmetric(&self) -> bool {
        self.col.is_none()
    }

    /// Column-side bases (the row side itself when symmetric).
    pub fn col_basis(&self) -> &[Mat] {
        match &self.col {
            Some(c) => &c.basis,
            None => &self.basis,
        }
    }

    /// Column-side skeletons (the row side itself when symmetric).
    pub fn col_skel(&self) -> &[Vec<usize>] {
        match &self.col {
            Some(c) => &c.skel,
            None => &self.skel,
        }
    }

    /// Row-side basis (leaf) or stacked transfer (inner) of one node.
    pub fn row_basis_of(&self, node: usize) -> &Mat {
        &self.basis[node]
    }

    /// Column-side basis/transfer of one node (the row side itself when
    /// symmetric) — the per-node accessor the two-sided solver paths use.
    pub fn col_basis_of(&self, node: usize) -> &Mat {
        match &self.col {
            Some(c) => &c.basis[node],
            None => &self.basis[node],
        }
    }

    /// The *independently stored* column basis of one node; `None` when the
    /// column side aliases the row side (symmetric layout). Callers that
    /// can share work between aliased sides (e.g. one QR instead of two in
    /// the ULV rotation) branch on this.
    pub fn col_basis_distinct(&self, node: usize) -> Option<&Mat> {
        self.col.as_ref().map(|c| &c.basis[node])
    }

    /// Row rank of node `τ` (0 when it has no basis). For symmetric
    /// matrices this is *the* rank.
    pub fn rank(&self, node: usize) -> usize {
        self.basis[node].cols()
    }

    /// Row rank of node `τ` (alias of [`H2Matrix::rank`]).
    pub fn row_rank(&self, node: usize) -> usize {
        self.rank(node)
    }

    /// Column rank of node `τ`.
    pub fn col_rank(&self, node: usize) -> usize {
        self.col_basis()[node].cols()
    }

    /// Whether node `τ` carries a row basis.
    pub fn has_basis(&self, node: usize) -> bool {
        self.rank(node) > 0
    }

    /// Total stored bytes of the representation (the paper's Fig. 6
    /// metric). Bases, skeletons and block stores of every *stored* side are
    /// counted once — the aliased symmetric column side costs nothing,
    /// consistently with the shared [`BlockStore::memory_bytes`] accounting.
    /// Demoted bases and blocks count at their f32 width.
    pub fn memory_bytes(&self) -> usize {
        let usize_bytes = std::mem::size_of::<usize>();
        let mut total = side_basis_bytes(&self.basis, &self.basis_prec);
        total += self
            .skel
            .iter()
            .map(|s| s.len() * usize_bytes)
            .sum::<usize>();
        if let Some(c) = &self.col {
            total += side_basis_bytes(&c.basis, &c.prec);
            total += c.skel.iter().map(|s| s.len() * usize_bytes).sum::<usize>();
        }
        total + self.coupling.memory_bytes() + self.dense.memory_bytes()
    }

    /// Memory broken down by component, in bytes.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let mut basis = side_basis_bytes(&self.basis, &self.basis_prec);
        if let Some(c) = &self.col {
            basis += side_basis_bytes(&c.basis, &c.prec);
        }
        MemoryBreakdown {
            basis,
            coupling: self.coupling.memory_bytes(),
            dense: self.dense.memory_bytes(),
        }
    }

    /// Norm-aware demotion of one completed level: round the level's bases
    /// (both stored sides) to f32 storage when the induced perturbation
    /// stays below the construction tolerance, then sweep the block stores
    /// for newly inserted coupling/dense blocks ([`BlockStore::demote_pending`]).
    ///
    /// A basis perturbation `ΔU` with `‖ΔU‖_F ≤ (ε₃₂/2)·‖U‖_F` enters the
    /// approximation error scaled by the operator blocks it multiplies —
    /// bounded by `norm_scale` (the construction's estimate of `‖K‖₂`) — so
    /// the node demotes iff `(ε₃₂/2)·‖U‖_F·norm_scale ≤ eps_abs`. Returns
    /// `(bases_demoted, blocks_demoted)`.
    pub fn demote_level(&mut self, level: usize, eps_abs: f64, norm_scale: f64) -> (usize, usize) {
        let eps32 = 0.5 * f32::EPSILON as f64;
        let ids: Vec<usize> = self.tree.level(level).collect();
        let mut bases = 0;
        for &id in &ids {
            let b = &self.basis[id];
            if b.cols() > 0 && eps32 * b.norm_fro() * norm_scale.max(1.0) <= eps_abs {
                self.basis[id] = demote_roundtrip(b);
                self.basis_prec[id] = Precision::F32;
                bases += 1;
            }
            if let Some(c) = &mut self.col {
                let b = &c.basis[id];
                if b.cols() > 0 && eps32 * b.norm_fro() * norm_scale.max(1.0) <= eps_abs {
                    c.basis[id] = demote_roundtrip(b);
                    c.prec[id] = Precision::F32;
                    bases += 1;
                }
            }
        }
        let blocks = self.coupling.demote_pending(eps_abs) + self.dense.demote_pending(eps_abs);
        (bases, blocks)
    }

    /// `(min, max)` rank over all nodes with a basis, across both sides
    /// (Table II "Rank range").
    pub fn rank_range(&self) -> (usize, usize) {
        let mut ranks: Vec<usize> = (0..self.basis.len())
            .map(|i| self.rank(i))
            .filter(|&r| r > 0)
            .collect();
        if let Some(c) = &self.col {
            ranks.extend(
                (0..c.basis.len())
                    .map(|i| c.basis[i].cols())
                    .filter(|&r| r > 0),
            );
        }
        match (ranks.iter().min(), ranks.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0, 0),
        }
    }

    /// Per-level `(min, max, mean)` row-rank statistics.
    pub fn rank_stats_per_level(&self) -> Vec<(usize, usize, f64)> {
        (0..self.tree.nlevels())
            .map(|l| {
                let ranks: Vec<usize> = self
                    .tree
                    .level(l)
                    .map(|id| self.rank(id))
                    .filter(|&r| r > 0)
                    .collect();
                if ranks.is_empty() {
                    (0, 0, 0.0)
                } else {
                    let mn = *ranks.iter().min().unwrap();
                    let mx = *ranks.iter().max().unwrap();
                    let mean = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
                    (mn, mx, mean)
                }
            })
            .collect()
    }

    /// Structural sanity checks: basis shapes consistent with tree and
    /// children ranks on every stored side, skeleton indices inside cluster
    /// ranges, block shapes consistent with side ranks / cluster sizes, all
    /// partition blocks present under the store's keying discipline.
    pub fn validate(&self) -> Result<(), String> {
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        let mut sides: Vec<(&str, &[Mat], &[Vec<usize>])> = vec![("row", &self.basis, &self.skel)];
        if let Some(c) = &self.col {
            sides.push(("col", &c.basis, &c.skel));
        }
        for (name, basis, skel) in sides {
            for (id, c) in tree.nodes.iter().enumerate() {
                let k = basis[id].cols();
                if k == 0 {
                    continue;
                }
                let b = &basis[id];
                if tree.level_of(id) == leaf_level {
                    if b.rows() != c.len() {
                        return Err(format!(
                            "{name} leaf {id}: basis rows {} != cluster size {}",
                            b.rows(),
                            c.len()
                        ));
                    }
                } else {
                    let (c1, c2) = c.children.unwrap();
                    let want = basis[c1].cols() + basis[c2].cols();
                    if b.rows() != want {
                        return Err(format!(
                            "{name} inner {id}: transfer rows {} != child ranks {want}",
                            b.rows()
                        ));
                    }
                }
                if skel[id].len() != k {
                    return Err(format!("{name} node {id}: skeleton len != rank"));
                }
                for &i in &skel[id] {
                    if i < c.begin || i >= c.end {
                        return Err(format!(
                            "{name} node {id}: skeleton index {i} outside cluster"
                        ));
                    }
                }
            }
        }
        let symmetric = self.is_symmetric();
        // Every admissible pair has a coupling block of matching shape.
        for (s, list) in self.partition.far_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| !symmetric || s <= t) {
                match self.coupling.get(s, t) {
                    None => return Err(format!("missing coupling block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != self.row_rank(s) || b.cols() != self.col_rank(t) {
                            return Err(format!(
                                "coupling ({s},{t}) shape {}x{} != row/col ranks {}x{}",
                                b.rows(),
                                b.cols(),
                                self.row_rank(s),
                                self.col_rank(t)
                            ));
                        }
                    }
                }
            }
        }
        // Every near pair has a dense block of matching shape.
        for (s, list) in self.partition.near_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| !symmetric || s <= t) {
                match self.dense.get(s, t) {
                    None => return Err(format!("missing dense block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != tree.nodes[s].len() || b.cols() != tree.nodes[t].len() {
                            return Err(format!("dense ({s},{t}) shape mismatch"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Stored bytes of one basis side: demoted nodes at 4 bytes/element.
fn side_basis_bytes(basis: &[Mat], prec: &[Precision]) -> usize {
    basis
        .iter()
        .zip(prec)
        .map(|(b, p)| b.memory_bytes() / 8 * p.bytes())
        .sum()
}

/// Bytes per component of an [`H2Matrix`].
#[derive(Clone, Copy, Debug)]
pub struct MemoryBreakdown {
    pub basis: usize,
    pub coupling: usize,
    pub dense: usize,
}

impl MemoryBreakdown {
    pub fn total(&self) -> usize {
        self.basis + self.coupling + self.dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_store_symmetric_lookup() {
        let mut s = BlockStore::new();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let (b, t) = s.get(2, 5).unwrap();
        assert!(!t);
        assert_eq!(b[(0, 1)], 2.0);
        let (b2, t2) = s.get(5, 2).unwrap();
        assert!(t2);
        assert_eq!(b2[(0, 1)], 2.0);
        assert!(s.get(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "s <= t")]
    fn block_store_rejects_unordered() {
        let mut s = BlockStore::new();
        s.insert(5, 2, Mat::zeros(1, 1));
    }

    #[test]
    fn ordered_store_roundtrip() {
        let mut s = BlockStore::ordered();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        s.insert(5, 2, Mat::from_rows(&[&[3.0], &[4.0]]));
        assert_eq!(s.get(2, 5).unwrap().0[(0, 1)], 2.0);
        assert!(
            !s.get(2, 5).unwrap().1,
            "ordered lookups are never transposed"
        );
        assert_eq!(s.get(5, 2).unwrap().0[(1, 0)], 4.0);
        assert!(s.get(2, 2).is_none());
        assert_eq!(s.len(), 2);
        assert_eq!(s.memory_bytes(), 4 * 8);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn ordered_store_rejects_duplicates() {
        let mut s = BlockStore::ordered();
        s.insert(1, 2, Mat::zeros(1, 1));
        s.insert(1, 2, Mat::zeros(1, 1));
    }

    #[test]
    fn get_op_is_transpose_consistent_across_layouts() {
        // Symmetric store: K(5,2) = K(2,5)^T read through the flag.
        let mut sym = BlockStore::symmetric();
        sym.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        let (m, tr) = sym.get_op(2, 5, false).unwrap();
        assert!(!tr);
        assert_eq!(m[(0, 1)], 2.0);
        // Kᵀ at (2,5) = K(5,2)ᵀ = (K(2,5)ᵀ)ᵀ = K(2,5) for the stored block.
        let (m, tr) = sym.get_op(2, 5, true).unwrap();
        assert!(!tr);
        assert_eq!(m[(0, 1)], 2.0);

        // Ordered store: Kᵀ at (2,5) reads the (5,2) block transposed.
        let mut ord = BlockStore::ordered();
        ord.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        ord.insert(5, 2, Mat::from_rows(&[&[3.0], &[4.0]]));
        let (m, tr) = ord.get_op(2, 5, true).unwrap();
        assert!(tr);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn memory_accounting_consistent_across_layouts() {
        let mut sym = BlockStore::new();
        sym.insert(0, 1, Mat::zeros(10, 10));
        sym.insert(1, 2, Mat::zeros(5, 4));
        assert_eq!(sym.memory_bytes(), (100 + 20) * 8);
        let mut ord = BlockStore::ordered();
        ord.insert(0, 1, Mat::zeros(10, 10));
        ord.insert(1, 2, Mat::zeros(5, 4));
        assert_eq!(ord.memory_bytes(), sym.memory_bytes());
    }

    #[test]
    fn demotion_is_norm_aware() {
        use h2_dense::gaussian_mat;
        let mut s = BlockStore::new();
        // A small-norm block (demotable at eps_abs) and a large-norm one
        // (kept f64 because f32 rounding would breach the tolerance).
        let small = gaussian_mat(8, 6, 1);
        let mut big = gaussian_mat(8, 6, 2);
        big.scale(1e6);
        let eps_abs = 0.5 * f32::EPSILON as f64 * (small.norm_fro() * 10.0);
        assert!(0.5 * f32::EPSILON as f64 * big.norm_fro() > eps_abs);
        s.insert(0, 1, small.clone());
        s.insert(1, 2, big.clone());
        assert_eq!(s.demote_pending(eps_abs), 1);
        assert_eq!(s.demoted_count(), 1);
        assert_eq!(s.precision_of(0), Precision::F32);
        assert_eq!(s.precision_of(1), Precision::F64);
        // The working copy is the round-trip of the original, and its error
        // stays below the bound the rule guarantees.
        let (wc, _) = s.get(0, 1).unwrap();
        let mut d = wc.clone();
        d.axpy(-1.0, &small);
        assert!(d.norm_fro() <= eps_abs, "{} > {eps_abs}", d.norm_fro());
        assert_eq!(wc, &demote_roundtrip(&small));
        // Memory counts the demoted block at half width.
        assert_eq!(s.memory_bytes(), 48 * 4 + 48 * 8);
        assert_eq!(s.bytes_by_precision(), (48 * 8, 48 * 4));
        // The sweep is incremental: a block inserted later is picked up by
        // the next sweep only.
        s.insert(2, 3, gaussian_mat(4, 4, 3));
        assert_eq!(s.precision_of(2), Precision::F64);
        assert_eq!(s.demote_pending(f64::INFINITY), 1);
        assert_eq!(s.precision_of(2), Precision::F32);
    }

    #[test]
    fn get_op32_resolves_like_get_op() {
        use h2_dense::gaussian_mat;
        // Symmetric store: (t, s) reads the stored block transposed, and
        // the transpose flag of get_op is ignored.
        let mut sym = BlockStore::symmetric();
        sym.insert(2, 5, gaussian_mat(3, 4, 11));
        sym.demote_pending(f64::INFINITY);
        for &(s, t, transpose) in &[(2, 5, false), (5, 2, false), (2, 5, true), (5, 2, true)] {
            let (m64, tr64) = sym.get_op(s, t, transpose).unwrap();
            let (m32, tr32) = sym.get_op32(s, t, transpose).unwrap();
            assert_eq!(tr64, tr32);
            assert_eq!(&m32.promote(), m64);
        }
        // Ordered store: Kᵀ at (2,5) reads the (5,2) block transposed.
        let mut ord = BlockStore::ordered();
        ord.insert(2, 5, gaussian_mat(3, 4, 12));
        ord.insert(5, 2, gaussian_mat(4, 3, 13));
        ord.demote_pending(f64::INFINITY);
        for &(s, t, transpose) in &[(2, 5, false), (5, 2, false), (2, 5, true), (5, 2, true)] {
            let (m64, tr64) = ord.get_op(s, t, transpose).unwrap();
            let (m32, tr32) = ord.get_op32(s, t, transpose).unwrap();
            assert_eq!(tr64, tr32);
            assert_eq!(&m32.promote(), m64);
        }
        // A block kept f64 answers None on the 32-bit lookup.
        let mut kept = BlockStore::symmetric();
        kept.insert(0, 1, gaussian_mat(2, 2, 14));
        assert!(kept.get_op32(0, 1, false).is_none());
    }
}
