//! Multi-device scaling: §IV.B simulated *and* executed.
//!
//! The paper evaluates on a single A100 and sketches the multi-GPU
//! extension in §IV.B: per-level batches divide across devices, and only
//! `batchedBSRGemm` (Ω fetches) and the line-24 child gather communicate.
//! This harness grounds that discussion two ways on one problem:
//!
//! 1. **Projection** — extract the construction's per-level execution
//!    structure (`level_specs`) and run the closed-form `DeviceModel`
//!    simulator across device counts;
//! 2. **Execution** — run the same construction *for real* on the
//!    `h2_sched::DeviceFabric` (one worker thread + arena + account per
//!    virtual device), then compare the measured work/traffic/makespan
//!    against the projection, and time the sharded matvec.
//!
//! Usage: `cargo run --release -p h2_bench --bin ablation_multidevice --
//!         [--n 32768] [--samples 256] [--skip-real] [--pipeline on|off|both]
//!         [--trace trace.json]`
//!
//! `--pipeline` selects the fabric schedule for the executed section:
//! `off` = synchronous fork-join, `on` = pipelined (ordered queues +
//! prefetched transfers), `both` (default) = run the two back to back so
//! both curves land in one run.

use h2_bench::{build_problem, header, reference_h2, row, App, Args, TraceSink};
use h2_core::{level_specs, sketch_construct, SketchConfig};
use h2_runtime::{simulate, DeviceModel, PipelineMode, TransferKind};
use h2_sched::{compare_with_simulator, shard_construct, shard_matvec_with_report, DeviceFabric};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 32768);
    let d: usize = args.get("samples", 256);
    let tol: f64 = args.get("tol", 1e-6);
    let leaf: usize = args.get("leaf", 64);
    let skip_real = args.flag("skip-real");
    let pipeline: String = args.get("pipeline", "both".to_string());
    let exec_modes: Vec<PipelineMode> = match pipeline.as_str() {
        "off" => vec![PipelineMode::Synchronous],
        "on" => vec![PipelineMode::Pipelined],
        "both" => vec![PipelineMode::Synchronous, PipelineMode::Pipelined],
        other => panic!("--pipeline must be on|off|both, got {other}"),
    };

    let sink = TraceSink::from_args(&args);
    let problem = build_problem(App::Covariance, n, leaf, 0.7, 0xD1CE);
    let reference = reference_h2(&problem, tol * 1e-2);
    let rt = sink.runtime();
    let cfg = SketchConfig {
        tol,
        initial_samples: d.min(256),
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(
        &reference,
        &problem.kernel,
        problem.tree.clone(),
        problem.partition.clone(),
        &rt,
        &cfg,
    );
    let specs = level_specs(&h2);
    assert!(
        !specs.is_empty(),
        "partition is all-dense at N={n}, leaf={leaf}: no batched levels to \
         shard — rerun with a larger --n or smaller --leaf"
    );
    println!(
        "# Multi-device projection (covariance, N={n}, d={d}, {} processed levels, ranks {:?})\n",
        specs.len(),
        h2.rank_range()
    );
    println!(
        "construction used {} samples, {} adaptation rounds\n",
        stats.total_samples, stats.rounds
    );

    for (name, model) in [
        (
            "A100-class (10 TF/s, 200 GB/s links)",
            DeviceModel::default(),
        ),
        (
            "weak-compute (0.5 TF/s, 200 GB/s links)",
            DeviceModel {
                flops_per_sec: 5.0e11,
                ..DeviceModel::default()
            },
        ),
    ] {
        println!("## Simulated: {name}\n");
        header(&[
            "devices",
            "makespan (ms)",
            "speedup",
            "efficiency",
            "comm (MiB)",
            "launches",
        ]);
        let base = simulate(&specs, d, 1, &model).makespan;
        for devices in [1usize, 2, 4, 8, 16] {
            let rep = simulate(&specs, d, devices, &model);
            row(&[
                devices.to_string(),
                format!("{:.3}", rep.makespan * 1e3),
                format!("{:.2}x", base / rep.makespan),
                format!("{:.2}", rep.efficiency()),
                format!("{:.2}", rep.total_comm_bytes as f64 / (1 << 20) as f64),
                rep.total_launches.to_string(),
            ]);
        }
        println!();
    }

    if !skip_real {
        // ---- the real sharded executor on the same problem ----
        // The construction reruns on the fabric per device count (the specs
        // above describe its final kernel populations); work and traffic
        // totals must line up with the simulated columns, the makespan
        // within the documented scheduling band (see h2_sched::exec).
        let model = DeviceModel::default();
        for &mode in &exec_modes {
            let mode_name = match mode {
                PipelineMode::Synchronous => "synchronous",
                PipelineMode::Pipelined => "pipelined",
            };
            println!("## Executed: h2_sched::DeviceFabric ({mode_name}, measured)\n");
            header(&[
                "devices",
                "wall (ms)",
                "busy max/dev (ms)",
                "Ω-fetch (MiB)",
                "gather (MiB)",
                "modeled/sim makespan",
                "work rel err",
            ]);
            for devices in [1usize, 2, 4, 8] {
                let fabric =
                    DeviceFabric::with_config(devices, mode, h2_sched::LinkModel::default());
                sink.attach(&fabric);
                let (h2s, st, report) = shard_construct(
                    &fabric,
                    &reference,
                    &problem.kernel,
                    problem.tree.clone(),
                    problem.partition.clone(),
                    &cfg,
                );
                let cmp =
                    compare_with_simulator(&report, &level_specs(&h2s), st.total_samples, &model);
                let busy_max = report
                    .busy_per_device()
                    .into_iter()
                    .map(|b| b.as_secs_f64())
                    .fold(0.0, f64::max);
                row(&[
                    devices.to_string(),
                    format!("{:.1}", report.measured_makespan().as_secs_f64() * 1e3),
                    format!("{:.1}", busy_max * 1e3),
                    format!(
                        "{:.2}",
                        report.bytes_of_kind(TransferKind::OmegaFetch) as f64 / (1 << 20) as f64
                    ),
                    format!(
                        "{:.2}",
                        report.bytes_of_kind(TransferKind::ChildGather) as f64 / (1 << 20) as f64
                    ),
                    format!("{:.2}", cmp.makespan_ratio()),
                    format!("{:.1e}", cmp.flops_rel_err()),
                ]);
            }
            println!();

            println!("## Executed: sharded matvec ({mode_name}, 16 columns)\n");
            header(&["devices", "wall (ms)", "comm (MiB)", "partial-sum (MiB)"]);
            let x = h2_dense::gaussian_mat(n, 16, 0xBEEF);
            for devices in [1usize, 2, 4, 8] {
                let fabric =
                    DeviceFabric::with_config(devices, mode, h2_sched::LinkModel::default());
                sink.attach(&fabric);
                let t0 = std::time::Instant::now();
                let (_, rep) = shard_matvec_with_report(&fabric, &h2, &x, false);
                let wall = t0.elapsed().as_secs_f64();
                row(&[
                    devices.to_string(),
                    format!("{:.1}", wall * 1e3),
                    format!("{:.2}", rep.total_comm_bytes() as f64 / (1 << 20) as f64),
                    format!(
                        "{:.2}",
                        rep.bytes_of_kind(TransferKind::PartialSum) as f64 / (1 << 20) as f64
                    ),
                ]);
            }
            println!();
        }
    }

    println!("Interpretation: the batched construction is compute-bound at the leaves");
    println!("and latency/traffic-bound at the top levels; speedup saturates once the");
    println!("per-device level chunks stop amortizing Ω fetches — the §IV.B tradeoff.");
    println!("The executed rows validate the projection: identical work and byte");
    println!("totals, makespan agreeing within the scheduling band; wall times on");
    println!("CPU worker threads show the decomposition, not A100 throughput.");
    sink.finish();
}
