//! ULV direct factorization of weak-admissibility (HSS-pattern) H2
//! matrices — both side layouts, per-level batched elimination.
//!
//! The paper's bottom-up construction is motivated by fast H2 *arithmetic* —
//! inversion is its stated follow-up. For the weak-admissibility case the
//! classical ULV elimination applies directly to our representation and
//! gives an exact O(N k²) direct solver for the *compressed* operator, in
//! two flavors selected by the matrix's side layout:
//!
//! * **symmetric** (`V = U`, the Chandrasekaran–Gu–Pals ULV): one QR per
//!   node rotates both sides at once;
//! * **unsymmetric** (independent row/column bases, the LU-flavored ULV):
//!   two one-sided rotations — QR of the reduced *row* basis from the
//!   left, QR of the reduced *column* basis from the right — followed by
//!   an LU elimination of the rotated trailing block.
//!
//! At each node `τ` with reduced diagonal block `D_τ` (size `m`), reduced
//! row basis `W^r_τ` (`m × k_r`) and reduced column basis `W^c_τ`
//! (`m × k_c`, aliasing `W^r_τ` when symmetric):
//!
//! 1. factor `W^r_τ = Q_τ [R_τ; 0]` and `W^c_τ = P_τ [S_τ; 0]` (full
//!    Householder QRs) and rotate `D̃ = Q_τᵀ D_τ P_τ` — in the rotated
//!    coordinates all off-diagonal *row* coupling of `τ` lives in the top
//!    `k_r` rows (`Qᵀ U_τ = [R_τ; 0]`) and all *column* coupling in the
//!    first `k_c` columns (`V_τᵀ P = [S_τᵀ, 0]`),
//! 2. eliminate the trailing `e × e` block (`e = m − k`,
//!    `k = max(k_r, k_c)`) with an LU of `D̃₂₂` — those rows and columns
//!    couple to nothing else — leaving the `k × k` Schur complement
//!    `S_τ = D̃₁₁ − D̃₁₂ D̃₂₂⁻¹ D̃₂₁`,
//! 3. pass up per side: the parent's reduced diagonal block stacks the
//!    children's Schur complements around the rotated sibling coupling
//!    `R_{c1} B_{c1,c2} S_{c2}ᵀ` (and `R_{c2} B_{c2,c1} S_{c1}ᵀ` read from
//!    the ordered store; `B₂₁ = B₁₂ᵀ` when symmetric), and the parent's
//!    reduced bases are `blkdiag(R_{c1}, R_{c2}) · E^r` /
//!    `blkdiag(S_{c1}, S_{c2}) · E^c`.
//!
//! The root system is dense and small; one LU finishes the factorization.
//!
//! ## Storage precision
//!
//! The factorization reads the matrix's f64 working copies, which for
//! blocks demoted to f32 storage hold exactly the round-tripped values
//! (see `h2_matrix::format`) — so a ULV of a mixed-precision matrix is
//! the *exact* factorization of the stored operator, bitwise identical to
//! promoting every f32 block on the fly. Solve residuals against the
//! represented operator stay at machine precision regardless of the
//! storage tier; only the represented operator itself differs from the
//! original kernel by the (tolerance-bounded) demotion error.
//!
//! ## Per-level batched phases
//!
//! The default schedule ([`UlvSchedule::Batched`]) runs the elimination as
//! three batched phases per level — **rotate** (marshal the reduced bases
//! and diagonal blocks into [`h2_runtime::VarBatch`] workspaces,
//! [`h2_runtime::batched_qr`], two one-sided
//! [`h2_runtime::batched_apply_qt`] rotations), **eliminate**
//! ([`h2_runtime::batched_lu`] of the pivot blocks,
//! [`h2_runtime::batched_lu_solve`], one batched Schur GEMM), and
//! **pass-up** (parent assembly) — mirroring the paper's
//! one-workspace-per-level execution model. Each node's arithmetic is
//! identical to the retained per-node reference schedule
//! ([`UlvSchedule::PerNode`]), so the two produce bit-identical factors.
//!
//! The factorization is exact for the represented matrix (up to roundoff),
//! so `‖K_H2 x − b‖ ≈ ε_machine`, while `‖K x − b‖` reflects the
//! construction tolerance. A loosely-compressed HSS + ULV therefore makes
//! an effective *preconditioner* for iterating on the exact operator; the
//! solve sweeps themselves can run sharded on the device fabric
//! (`h2_sched::shard_ulv_solve`) through the [`UlvSweep`] phase kernels.

use crate::precond::Preconditioner;
use crate::smallops::stored_op;
use h2_dense::{gemm, gemm_rhs, lu_factor, matmul, qr_factor, LuFactor, Mat, MatMut, Op, QrFactor};
use h2_matrix::H2Matrix;
use h2_runtime::multidev::cost;
use h2_runtime::{
    batched_apply_qt, batched_lu, batched_lu_solve, batched_qr, batched_transpose, Kernel, Runtime,
    SolveLevel, SolveSpec, VarBatch,
};
use h2_tree::{Admissibility, ClusterTree};
use std::sync::Arc;

/// Why a ULV factorization could not be computed.
#[derive(Debug)]
pub enum UlvError {
    /// The H2 matrix was not built over a weak-admissibility partition.
    NotWeakPartition,
    /// A rotated pivot block `D̃₂₂` was exactly singular at this node.
    SingularBlock(usize),
    /// The assembled root system was singular.
    SingularRoot,
}

impl std::fmt::Display for UlvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlvError::NotWeakPartition => {
                write!(f, "ULV requires a weak-admissibility (HSS) partition")
            }
            UlvError::SingularBlock(id) => {
                write!(f, "singular rotated pivot block at node {id}")
            }
            UlvError::SingularRoot => write!(f, "singular root system"),
        }
    }
}

impl std::error::Error for UlvError {}

/// Which elimination schedule the factorization runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UlvSchedule {
    /// Node-at-a-time reference path (the classical recursion flattened to
    /// a level loop). Retained as the ground truth the batched schedule is
    /// validated against.
    PerNode,
    /// Per-level batched phases (rotate, eliminate, pass-up) over
    /// [`VarBatch`] workspaces — the default.
    Batched,
}

/// Per-node factorization data.
struct NodeFactor {
    /// Full-Q Householder factorization of the reduced row basis `W^r_τ`.
    row_qr: QrFactor,
    /// Full-Q factorization of the reduced column basis `W^c_τ`; `None`
    /// when the column side aliases the row side (symmetric layout).
    col_qr: Option<QrFactor>,
    /// Retained (skeleton) variable count `k = min(m, max(k_r, k_c))`.
    k: usize,
    /// Eliminated variable count (`m − k`).
    e: usize,
    /// LU of the rotated pivot block `D̃₂₂`.
    lu22: LuFactor,
    /// `D̃₁₂` (`k × e`).
    d12: Mat,
    /// `D̃₂₁` (`e × k`).
    d21: Mat,
    /// Row-side triangular factor `R_τ`, zero-padded to `k × k_r`.
    r: Mat,
    /// Column-side triangular factor `S_τ` (`k × k_c`); `None` aliases `r`.
    s: Option<Mat>,
}

impl NodeFactor {
    fn col_qr(&self) -> &QrFactor {
        self.col_qr.as_ref().unwrap_or(&self.row_qr)
    }

    fn s_pad(&self) -> &Mat {
        self.s.as_ref().unwrap_or(&self.r)
    }
}

/// The triangular factor of a compact QR, zero-padded to `k` rows (the
/// retained coordinate count, which may exceed this side's rank).
fn padded_r(qr: &QrFactor, k: usize) -> Mat {
    let r = qr.r();
    if r.rows() == k {
        return r;
    }
    let mut out = Mat::zeros(k, r.cols());
    out.view_mut(0, 0, r.rows(), r.cols()).copy_from(r.rf());
    out
}

/// A ULV factorization of a weak-admissibility H2 matrix (either side
/// layout).
pub struct UlvFactor {
    tree: Arc<ClusterTree>,
    /// Per node id; `None` for the root and any untouched nodes.
    nodes: Vec<Option<NodeFactor>>,
    /// LU of the assembled root system.
    root_lu: LuFactor,
    /// Size of the root system.
    root_size: usize,
    n: usize,
}

/// Fill `out` with the reduced basis of `id` on one side: the leaf basis
/// itself, or the stacked child transfer scaled by the children's
/// (padded) triangular factors.
fn fill_reduced_basis(
    h2: &H2Matrix,
    nodes: &[Option<NodeFactor>],
    l: usize,
    leaf_level: usize,
    id: usize,
    col_side: bool,
    mut out: MatMut<'_>,
) {
    let basis = if col_side {
        h2.col_basis_of(id)
    } else {
        h2.row_basis_of(id)
    };
    if l == leaf_level {
        out.copy_from(basis.rf());
        return;
    }
    let (c1, c2) = h2.tree.nodes[id].children.unwrap();
    let kp = basis.cols();
    let mut row_off = 0;
    let mut et_off = 0;
    for c in [c1, c2] {
        let nf = nodes[c].as_ref().expect("child factor");
        let f = if col_side { nf.s_pad() } else { &nf.r };
        let (kc, rc) = (f.rows(), f.cols());
        if kc > 0 && rc > 0 && kp > 0 {
            h2_dense::gemm(
                Op::NoTrans,
                Op::NoTrans,
                1.0,
                f.rf(),
                basis.view(et_off, 0, rc, kp),
                0.0,
                out.rb_mut().into_view(row_off, 0, kc, kp),
            );
        }
        row_off += kc;
        et_off += rc;
    }
    debug_assert_eq!(row_off, out.rows(), "reduced basis rows at node {id}");
    debug_assert_eq!(et_off, basis.rows(), "transfer split at node {id}");
}

/// Split the rotated block, LU the pivot, form the Schur complement and
/// pack the node factor — the arithmetic shared verbatim by both
/// schedules.
fn build_factor(
    id: usize,
    drot: &Mat,
    row_qr: QrFactor,
    col_qr: Option<QrFactor>,
    k: usize,
    e: usize,
) -> Result<(NodeFactor, Mat), UlvError> {
    let d11 = drot.view(0, 0, k, k).to_mat();
    let d12 = drot.view(0, k, k, e).to_mat();
    let d21 = drot.view(k, 0, e, k).to_mat();
    let d22 = drot.view(k, k, e, e).to_mat();
    let lu22 = lu_factor(d22).ok_or(UlvError::SingularBlock(id))?;
    let mut schur = d11;
    if e > 0 && k > 0 {
        let x = lu22.solve(&d21);
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            -1.0,
            d12.rf(),
            x.rf(),
            1.0,
            schur.rm(),
        );
    }
    let r = padded_r(&row_qr, k);
    let s = col_qr.as_ref().map(|q| padded_r(q, k));
    Ok((
        NodeFactor {
            row_qr,
            col_qr,
            k,
            e,
            lu22,
            d12,
            d21,
            r,
            s,
        },
        schur,
    ))
}

/// Retained size of a node given its reduced block size and side ranks.
fn retained_size(m: usize, kr: usize, kc: usize) -> usize {
    kr.max(kc).min(m)
}

/// One node of the reference schedule: rotate `D̃ = Qᵀ D P` and eliminate.
fn eliminate_node(
    id: usize,
    d: Mat,
    w_row: Mat,
    w_col: Option<Mat>,
) -> Result<(NodeFactor, Mat), UlvError> {
    let m = d.rows();
    assert_eq!(w_row.rows(), m, "reduced basis row mismatch at node {id}");
    let kr = w_row.cols();
    let kc = w_col.as_ref().map(|w| w.cols()).unwrap_or(kr);
    let k = retained_size(m, kr, kc);
    let e = m - k;
    let row_qr = qr_factor(w_row);
    let col_qr = w_col.map(qr_factor);
    // Rotate: D̃ = Qᵀ D P (apply Pᵀ to the columns through a transpose).
    let mut dt = d;
    row_qr.apply_qt(&mut dt.rm());
    let mut dtt = dt.transpose();
    col_qr.as_ref().unwrap_or(&row_qr).apply_qt(&mut dtt.rm());
    let drot = dtt.transpose();
    build_factor(id, &drot, row_qr, col_qr, k, e)
}

/// Rotated sibling coupling in retained coordinates:
/// `R_s · op(B_{s,t}) · S_tᵀ` (`k_s × k_t`), through the store's
/// orientation flag rather than a materialized transpose.
fn rotated_coupling(
    h2: &H2Matrix,
    nf_s: &NodeFactor,
    nf_t: &NodeFactor,
    s: usize,
    t: usize,
) -> Mat {
    match h2.coupling.get_op(s, t, false) {
        Some((b, tr)) => {
            let bt = matmul(stored_op(tr), Op::Trans, b.rf(), nf_t.s_pad().rf());
            matmul(Op::NoTrans, Op::NoTrans, nf_s.r.rf(), bt.rf())
        }
        None => Mat::zeros(nf_s.k, nf_t.k),
    }
}

/// Pass-up: the parent's reduced diagonal block from its children's Schur
/// complements and rotated sibling coupling.
fn assemble_parent(
    h2: &H2Matrix,
    nodes: &[Option<NodeFactor>],
    schur: &[Option<Mat>],
    p: usize,
) -> Mat {
    let (c1, c2) = h2.tree.nodes[p].children.unwrap();
    let nf1 = nodes[c1].as_ref().expect("child factor");
    let nf2 = nodes[c2].as_ref().expect("child factor");
    let s1 = schur[c1].as_ref().expect("child Schur");
    let s2 = schur[c2].as_ref().expect("child Schur");
    let (k1, k2) = (nf1.k, nf2.k);
    let c12 = rotated_coupling(h2, nf1, nf2, c1, c2);
    let c21 = if h2.is_symmetric() {
        c12.transpose()
    } else {
        rotated_coupling(h2, nf2, nf1, c2, c1)
    };
    let mut d = Mat::zeros(k1 + k2, k1 + k2);
    d.view_mut(0, 0, k1, k1).copy_from(s1.rf());
    d.view_mut(k1, k1, k2, k2).copy_from(s2.rf());
    d.view_mut(0, k1, k1, k2).copy_from(c12.rf());
    d.view_mut(k1, 0, k2, k1).copy_from(c21.rf());
    d
}

impl UlvFactor {
    /// Factor a weak-admissibility H2 matrix — symmetric or unsymmetric
    /// side layout — with the batched per-level schedule on a parallel
    /// runtime. O(N k²).
    pub fn new(h2: &H2Matrix) -> Result<Self, UlvError> {
        Self::with_schedule(h2, UlvSchedule::Batched, &Runtime::parallel())
    }

    /// The retained per-node reference schedule (single-threaded).
    pub fn new_per_node(h2: &H2Matrix) -> Result<Self, UlvError> {
        Self::with_schedule(h2, UlvSchedule::PerNode, &Runtime::sequential())
    }

    /// Factor with an explicit schedule and runtime (the batched schedule
    /// runs its phase kernels — QR, LU, triangular solves — through the
    /// runtime's batched dispatch, including a sharded one).
    pub fn with_schedule(
        h2: &H2Matrix,
        schedule: UlvSchedule,
        rt: &Runtime,
    ) -> Result<Self, UlvError> {
        if !matches!(h2.partition.rule, Admissibility::Weak) {
            return Err(UlvError::NotWeakPartition);
        }
        let tree = h2.tree.clone();
        let leaf_level = tree.leaf_level();
        let nnodes = tree.nodes.len();
        let mut nodes: Vec<Option<NodeFactor>> = (0..nnodes).map(|_| None).collect();

        // Reduced diagonal blocks, initialized at the leaves from the
        // stored dense blocks.
        let mut dloc: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        // Schur complements awaiting assembly into the parent.
        let mut schur: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();

        if leaf_level == 0 {
            // Single dense block: plain LU.
            let (blk, tr) = h2.dense.get(0, 0).expect("root dense block");
            let root = if tr { blk.transpose() } else { blk.clone() };
            let root_size = root.rows();
            let root_lu = lu_factor(root).ok_or(UlvError::SingularRoot)?;
            return Ok(UlvFactor {
                tree,
                nodes,
                root_lu,
                root_size,
                n: h2.n(),
            });
        }

        for id in tree.level(leaf_level) {
            let (blk, tr) = h2.dense.get(id, id).expect("leaf diagonal block");
            dloc[id] = Some(if tr { blk.transpose() } else { blk.clone() });
        }

        for l in (1..=leaf_level).rev() {
            let _level_span = rt.trace_span("ulv", || format!("ulv eliminate L{l}"));
            let ids: Vec<usize> = tree.level(l).collect();
            match schedule {
                UlvSchedule::PerNode => {
                    for &id in &ids {
                        let d = dloc[id].take().expect("reduced diagonal block");
                        let m = d.rows();
                        let mut w_row = Mat::zeros(m, h2.row_basis_of(id).cols());
                        fill_reduced_basis(h2, &nodes, l, leaf_level, id, false, w_row.rm());
                        let w_col = (!h2.is_symmetric()).then(|| {
                            let mut w = Mat::zeros(m, h2.col_basis_of(id).cols());
                            fill_reduced_basis(h2, &nodes, l, leaf_level, id, true, w.rm());
                            w
                        });
                        let (nf, sc) = eliminate_node(id, d, w_row, w_col)?;
                        schur[id] = Some(sc);
                        nodes[id] = Some(nf);
                    }
                }
                UlvSchedule::Batched => {
                    eliminate_level_batched(
                        rt, h2, &ids, l, leaf_level, &mut dloc, &mut nodes, &mut schur,
                    )?;
                }
            }

            // ---- pass-up phase: assemble parents' reduced blocks ----
            let _passup_span = rt.trace_span("ulv", || format!("ulv pass-up L{l}"));
            let parents: Vec<usize> = tree.level(l - 1).collect();
            let assembled: Vec<Mat> = match schedule {
                UlvSchedule::PerNode => parents
                    .iter()
                    .map(|&p| assemble_parent(h2, &nodes, &schur, p))
                    .collect(),
                UlvSchedule::Batched => {
                    rt.launch(Kernel::Marshal);
                    rt.launch(Kernel::Gemm);
                    let nodes_ref = &nodes;
                    let schur_ref = &schur;
                    let parents_ref = &parents;
                    let cost_of = |j: usize| {
                        let (c1, c2) = tree.nodes[parents[j]].children.unwrap();
                        let k1 = nodes[c1].as_ref().map(|n| n.k).unwrap_or(0);
                        let k2 = nodes[c2].as_ref().map(|n| n.k).unwrap_or(0);
                        let k = k1 + k2;
                        (k * k) as f64
                    };
                    rt.map_index_costed(parents.len(), cost_of, |j| {
                        assemble_parent(h2, nodes_ref, schur_ref, parents_ref[j])
                    })
                }
            };
            for (j, d) in parents.iter().zip(assembled) {
                dloc[*j] = Some(d);
            }
        }

        let root_d = dloc[0].take().expect("root system");
        let root_size = root_d.rows();
        let root_lu = lu_factor(root_d).ok_or(UlvError::SingularRoot)?;
        Ok(UlvFactor {
            tree,
            nodes,
            root_lu,
            root_size,
            n: h2.n(),
        })
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of the final dense root system (a quality indicator: small root
    /// systems mean the compression carried most of the elimination).
    pub fn root_size(&self) -> usize {
        self.root_size
    }

    /// The cluster tree the factorization lives on.
    pub fn tree(&self) -> &Arc<ClusterTree> {
        &self.tree
    }

    /// Retained size `k` of a processed node (0 for the root and any
    /// untouched node) — the rows a sweep passes up/down for this node.
    pub fn retained(&self, id: usize) -> usize {
        self.nodes[id].as_ref().map(|nf| nf.k).unwrap_or(0)
    }

    /// The per-node sweep kernels (forward eliminate / backward
    /// substitute), for external executors like `h2_sched`.
    pub fn sweep(&self) -> UlvSweep<'_> {
        UlvSweep { f: self }
    }

    /// Modeled flops of the forward sweep at one node for `d` right-hand
    /// sides (the simulator's formulas; `h2_sched` attributes exactly
    /// these per device).
    pub fn forward_flops(&self, id: usize, d: usize) -> f64 {
        let Some(nf) = self.nodes[id].as_ref() else {
            return 0.0;
        };
        let m = nf.k + nf.e;
        cost::qr_apply_flops(m, nf.row_qr.tau.len(), d)
            + cost::lu_solve_flops(nf.e, d)
            + cost::gemm_flops(nf.k, nf.e, d)
    }

    /// Modeled flops of the backward sweep at one node for `d` right-hand
    /// sides.
    pub fn backward_flops(&self, id: usize, d: usize) -> f64 {
        let Some(nf) = self.nodes[id].as_ref() else {
            return 0.0;
        };
        let m = nf.k + nf.e;
        cost::gemm_flops(nf.e, nf.k, d)
            + cost::lu_solve_flops(nf.e, d)
            + cost::qr_apply_flops(m, nf.col_qr().tau.len(), d)
    }

    /// The level structure of the solve sweep, in the form
    /// [`h2_runtime::simulate_solve`] consumes: the byte totals a sharded
    /// sweep moves must equal that model's exactly.
    pub fn solve_spec(&self, nrhs: usize) -> SolveSpec {
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        let mut levels = Vec::new();
        if leaf_level > 0 {
            for l in (1..=leaf_level).rev() {
                let ids: Vec<usize> = tree.level(l).collect();
                let mut lvl = SolveLevel::default();
                for &id in &ids {
                    let nf = self.nodes[id].as_ref().expect("processed node");
                    lvl.m.push(nf.k + nf.e);
                    lvl.k.push(nf.k);
                    lvl.t_row.push(nf.row_qr.tau.len());
                    lvl.t_col.push(nf.col_qr().tau.len());
                }
                for p in tree.level(l - 1) {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    lvl.merges
                        .push((tree.local_index(c1), tree.local_index(c2)));
                }
                levels.push(lvl);
            }
        }
        SolveSpec {
            levels,
            root_size: self.root_size,
            nrhs,
        }
    }

    /// Solve `K_H2 X = B` for a block of right-hand sides (tree-permuted
    /// coordinates). O(N k) per column.
    pub fn solve(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.n, "ulv solve: rhs rows");
        let d = b.cols();
        let tree = &self.tree;
        let sweep = self.sweep();
        let leaf_level = tree.leaf_level();
        let nnodes = tree.nodes.len();

        if leaf_level == 0 {
            return self.root_lu.solve(b);
        }

        // ---- forward pass: rotate, eliminate, reduce ----
        let mut bred: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        let mut b2s: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        for id in tree.level(leaf_level) {
            let (lo, hi) = tree.range(id);
            bred[id] = Some(b.view(lo, 0, hi - lo, d).to_mat());
        }
        for l in (1..=leaf_level).rev() {
            for id in tree.level(l) {
                let bl = bred[id].take().expect("local rhs");
                let (b1, b2) = sweep.forward_node(id, bl);
                b2s[id] = Some(b2);
                bred[id] = Some(b1);
            }
            for p in tree.level(l - 1) {
                let (c1, c2) = tree.nodes[p].children.unwrap();
                let t1 = bred[c1].take().expect("child rhs");
                let t2 = bred[c2].take().expect("child rhs");
                bred[p] = Some(t1.vcat(&t2));
            }
        }

        // ---- root solve ----
        let xroot = sweep.root_solve(&bred[0].take().expect("root rhs"));

        // ---- backward pass: distribute, back-substitute, un-rotate ----
        let mut x = Mat::zeros(self.n, d);
        let mut xred: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        {
            let (c1, c2) = tree.nodes[0].children.unwrap();
            let k1 = self.retained(c1);
            let k2 = self.retained(c2);
            xred[c1] = Some(xroot.view(0, 0, k1, d).to_mat());
            xred[c2] = Some(xroot.view(k1, 0, k2, d).to_mat());
        }
        for l in 1..=leaf_level {
            for id in tree.level(l) {
                let x1 = xred[id].take().expect("skeleton solution");
                let b2 = b2s[id].take().expect("cached b2");
                let xt = sweep.backward_node(id, &x1, b2);
                if l == leaf_level {
                    let (lo, hi) = tree.range(id);
                    x.view_mut(lo, 0, hi - lo, d)
                        .copy_from(xt.view(0, 0, hi - lo, d));
                } else {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    let k1 = self.retained(c1);
                    let k2 = self.retained(c2);
                    xred[c1] = Some(xt.view(0, 0, k1, d).to_mat());
                    xred[c2] = Some(xt.view(k1, 0, k2, d).to_mat());
                }
            }
        }
        x
    }

    /// Solve for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let bm = Mat::from_vec(b.len(), 1, b.to_vec());
        self.solve(&bm).as_slice().to_vec()
    }

    /// Resident bytes of the factor: every per-node rotation / pivot /
    /// coupling block plus the assembled root LU. The eviction currency of
    /// the `h2_serve` operator cache, the solver-side counterpart of
    /// `H2Matrix::memory_bytes`.
    pub fn memory_bytes(&self) -> usize {
        let f64s = std::mem::size_of::<f64>();
        let mat = |m: &Mat| m.rows() * m.cols() * f64s;
        let qr = |q: &QrFactor| mat(&q.a) + q.tau.len() * f64s;
        let mut bytes = mat(&self.root_lu.a) + self.root_lu.piv.len() * 8;
        for nf in self.nodes.iter().flatten() {
            bytes += qr(&nf.row_qr);
            if let Some(cq) = &nf.col_qr {
                bytes += qr(cq);
            }
            bytes += mat(&nf.lu22.a) + nf.lu22.piv.len() * 8;
            bytes += mat(&nf.d12) + mat(&nf.d21) + mat(&nf.r);
            if let Some(s) = &nf.s {
                bytes += mat(s);
            }
        }
        bytes
    }

    /// Modeled flop count of (re)building this factor: per node, the
    /// one-or-two basis QRs, the two-sided rotation of the local block,
    /// the pivot LU and its Schur update, plus the root LU. What a serve
    /// cache miss costs under a [`h2_runtime::multidev::DeviceModel`] —
    /// the quantity the multi-RHS batching amortizes.
    pub fn factor_flops(&self) -> f64 {
        let mut fl = cost::lu_flops(self.root_size);
        for nf in self.nodes.iter().flatten() {
            let m = nf.k + nf.e;
            fl += cost::qr_flops(m, nf.row_qr.tau.len());
            fl += cost::qr_apply_flops(m, nf.row_qr.tau.len(), m);
            if let Some(cq) = &nf.col_qr {
                fl += cost::qr_flops(m, cq.tau.len());
            }
            fl += cost::qr_apply_flops(m, nf.col_qr().tau.len(), m);
            fl += cost::lu_flops(nf.e);
            fl += cost::lu_solve_flops(nf.e, nf.k);
            fl += cost::gemm_flops(nf.k, nf.e, nf.k);
        }
        fl
    }
}

/// The batched per-level elimination: rotate, eliminate, expressed as
/// [`VarBatch`] jobs (the pass-up phase lives in the caller's level loop).
#[allow(clippy::too_many_arguments)]
fn eliminate_level_batched(
    rt: &Runtime,
    h2: &H2Matrix,
    ids: &[usize],
    l: usize,
    leaf_level: usize,
    dloc: &mut [Option<Mat>],
    nodes: &mut [Option<NodeFactor>],
    schur: &mut [Option<Mat>],
) -> Result<(), UlvError> {
    let n = ids.len();
    let ms: Vec<usize> = ids
        .iter()
        .map(|&id| dloc[id].as_ref().expect("reduced block").rows())
        .collect();

    // ---- rotate phase: marshal reduced bases, batched QR, two one-sided
    // rotations ----
    rt.launch(Kernel::PrefixSum);
    rt.launch(Kernel::Marshal);
    let kr: Vec<usize> = ids.iter().map(|&id| h2.row_basis_of(id).cols()).collect();
    let mut wrow = VarBatch::zeros(ms.clone(), kr.clone());
    {
        let nodes_ref: &[Option<NodeFactor>] = nodes;
        wrow.for_each_mut(rt.is_parallel(), |i, m| {
            fill_reduced_basis(h2, nodes_ref, l, leaf_level, ids[i], false, m);
        });
    }
    let row_qrs = batched_qr(rt, &wrow);
    drop(wrow);
    let (kc, col_qrs): (Vec<usize>, Option<Vec<QrFactor>>) = if h2.is_symmetric() {
        (kr.clone(), None)
    } else {
        let kc: Vec<usize> = ids.iter().map(|&id| h2.col_basis_of(id).cols()).collect();
        rt.launch(Kernel::Marshal);
        let mut wcol = VarBatch::zeros(ms.clone(), kc.clone());
        {
            let nodes_ref: &[Option<NodeFactor>] = nodes;
            wcol.for_each_mut(rt.is_parallel(), |i, m| {
                fill_reduced_basis(h2, nodes_ref, l, leaf_level, ids[i], true, m);
            });
        }
        (kc, Some(batched_qr(rt, &wcol)))
    };

    rt.launch(Kernel::Marshal);
    let mut dbatch = VarBatch::zeros(ms.clone(), ms.clone());
    for (i, &id) in ids.iter().enumerate() {
        let d = dloc[id].take().expect("reduced diagonal block");
        dbatch.set(i, d.rf());
    }
    batched_apply_qt(rt, &row_qrs, &mut dbatch);
    let mut dt = batched_transpose(rt, &dbatch);
    batched_apply_qt(rt, col_qrs.as_ref().unwrap_or(&row_qrs), &mut dt);
    let drot = batched_transpose(rt, &dt);
    drop(dbatch);
    drop(dt);

    // ---- eliminate phase: batched LU of the pivot blocks, batched
    // triangular solves, one batched Schur GEMM ----
    let ks: Vec<usize> = (0..n).map(|i| retained_size(ms[i], kr[i], kc[i])).collect();
    let es: Vec<usize> = (0..n).map(|i| ms[i] - ks[i]).collect();
    rt.launch(Kernel::Marshal);
    let mut d22 = VarBatch::zeros(es.clone(), es.clone());
    {
        let drot_ref = &drot;
        let ks_ref = &ks;
        d22.for_each_mut(rt.is_parallel(), |i, mut m| {
            let k = ks_ref[i];
            m.copy_from(drot_ref.mat(i).view(k, k, m.rows(), m.cols()));
        });
    }
    let lus = batched_lu(rt, &d22);
    drop(d22);
    let mut lu22s: Vec<LuFactor> = Vec::with_capacity(n);
    for (i, lu) in lus.into_iter().enumerate() {
        lu22s.push(lu.ok_or(UlvError::SingularBlock(ids[i]))?);
    }

    rt.launch(Kernel::Marshal);
    let mut z = VarBatch::zeros(es.clone(), ks.clone());
    {
        let drot_ref = &drot;
        let ks_ref = &ks;
        z.for_each_mut(rt.is_parallel(), |i, mut m| {
            m.copy_from(drot_ref.mat(i).view(ks_ref[i], 0, m.rows(), m.cols()));
        });
    }
    batched_lu_solve(rt, &lu22s, &mut z);

    rt.launch(Kernel::Gemm);
    let mut sb = VarBatch::zeros(ks.clone(), ks.clone());
    {
        let drot_ref = &drot;
        let z_ref = &z;
        let (ks_ref, es_ref) = (&ks, &es);
        sb.for_each_mut_costed(
            rt.is_parallel(),
            |i| cost::gemm_flops(ks[i], es[i], ks[i]).max(1.0),
            |i, mut m| {
                let (k, e) = (ks_ref[i], es_ref[i]);
                m.copy_from(drot_ref.mat(i).view(0, 0, k, k));
                if e > 0 && k > 0 {
                    h2_dense::gemm(
                        Op::NoTrans,
                        Op::NoTrans,
                        -1.0,
                        drot_ref.mat(i).view(0, k, k, e),
                        z_ref.mat(i),
                        1.0,
                        m,
                    );
                }
            },
        );
    }

    // ---- pack the per-node factors ----
    let mut col_iter = col_qrs.map(|v| v.into_iter());
    for (i, (row_qr, lu22)) in row_qrs.into_iter().zip(lu22s).enumerate() {
        let id = ids[i];
        let (k, e) = (ks[i], es[i]);
        let col_qr = col_iter.as_mut().map(|it| it.next().expect("col factor"));
        let drot_i = drot.mat(i);
        let r = padded_r(&row_qr, k);
        let s = col_qr.as_ref().map(|q| padded_r(q, k));
        nodes[id] = Some(NodeFactor {
            row_qr,
            col_qr,
            k,
            e,
            lu22,
            d12: drot_i.view(0, k, k, e).to_mat(),
            d21: drot_i.view(k, 0, e, k).to_mat(),
            r,
            s,
        });
        schur[id] = Some(sb.to_mat(i));
    }
    Ok(())
}

/// Per-node kernels of the ULV triangular solve sweeps — the solver
/// analogue of [`h2_matrix::ApplyPhases`]: [`UlvFactor::solve`] drives them
/// in-process, `h2_sched::shard_ulv_solve` drives the same kernels level by
/// level over contiguous node chunks with explicit transfers.
pub struct UlvSweep<'a> {
    f: &'a UlvFactor,
}

impl UlvSweep<'_> {
    /// Forward (eliminate) kernel for one node: rotate the local rhs by
    /// `Qᵀ`, solve the pivot block, update the retained part. Returns
    /// `(b₁', b₂)` — the reduced rhs passed up, and the eliminated rows
    /// cached for the backward sweep.
    pub fn forward_node(&self, id: usize, mut bl: Mat) -> (Mat, Mat) {
        let nf = self.f.nodes[id].as_ref().expect("node factor");
        let d = bl.cols();
        nf.row_qr.apply_qt(&mut bl.rm());
        let mut b1 = bl.view(0, 0, nf.k, d).to_mat();
        let b2 = bl.view(nf.k, 0, nf.e, d).to_mat();
        // b₁' = b₁ − D̃₁₂ D̃₂₂⁻¹ b₂. `gemm_rhs` keeps the kernel choice a
        // function of (rows, depth) only, so every column of a blocked rhs
        // is updated bit-identically to a d = 1 sweep.
        if nf.e > 0 && nf.k > 0 {
            let z = nf.lu22.solve(&b2);
            gemm_rhs(
                Op::NoTrans,
                Op::NoTrans,
                -1.0,
                nf.d12.rf(),
                z.rf(),
                1.0,
                b1.rm(),
            );
        }
        (b1, b2)
    }

    /// Backward (substitute) kernel for one node: recover the eliminated
    /// rows from the retained solution and un-rotate by the column-side
    /// `P` (`x = P [x₁; x₂]`). Returns the full local solution block.
    pub fn backward_node(&self, id: usize, x1: &Mat, b2: Mat) -> Mat {
        let nf = self.f.nodes[id].as_ref().expect("node factor");
        // x₂ = D̃₂₂⁻¹ (b₂ − D̃₂₁ x₁)
        let mut rhs2 = b2;
        if nf.e > 0 && nf.k > 0 {
            gemm_rhs(
                Op::NoTrans,
                Op::NoTrans,
                -1.0,
                nf.d21.rf(),
                x1.rf(),
                1.0,
                rhs2.rm(),
            );
        }
        let x2 = nf.lu22.solve(&rhs2);
        let mut xt = x1.vcat(&x2);
        nf.col_qr().apply_q(&mut xt.rm());
        xt
    }

    /// Dense solve of the assembled root system.
    pub fn root_solve(&self, b: &Mat) -> Mat {
        self.f.root_lu.solve(b)
    }
}

impl Preconditioner for UlvFactor {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        self.solve(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
    use h2_dense::{gaussian_mat, DenseOp, EntryAccess};
    use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
    use h2_tree::Partition;

    fn line_points(n: usize) -> Vec<[f64; 3]> {
        (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect()
    }

    /// Add `sigma` to the diagonal of the stored dense diagonal blocks.
    fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
        for i in 0..h2.dense.pairs.len() {
            let (s, t) = h2.dense.pairs[i];
            if s == t {
                let blk = &mut h2.dense.blocks[i];
                for j in 0..blk.rows() {
                    blk[(j, j)] += sigma;
                }
            }
        }
    }

    /// HSS from Algorithm 1 on a weak partition over 1-D geometry (the
    /// setting where weak admissibility genuinely compresses).
    fn hss_1d(n: usize, tol: f64, _seed: u64) -> (H2Matrix, KernelMatrix<ExponentialKernel>) {
        let pts = line_points(n);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol,
            initial_samples: 64,
            max_rank: 96,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
        (h2, km)
    }

    /// Unsymmetric HSS: the two-stream engine over a weak 1-D partition
    /// with a genuinely unsymmetric kernel, diagonal-shifted.
    fn unsym_hss_1d(n: usize, sigma: f64) -> (H2Matrix, UnsymKernelMatrix<ConvectionKernel>) {
        let pts = line_points(n);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-10,
            initial_samples: 64,
            max_rank: 96,
            ..Default::default()
        };
        let (mut h2, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
        shift_diag(&mut h2, sigma);
        (h2, km)
    }

    /// The LU-flavored elimination accepts the independent-side layout:
    /// the factorization solves the *compressed* unsymmetric operator to
    /// machine precision.
    #[test]
    fn ulv_accepts_unsymmetric_layout() {
        let (h2, _) = unsym_hss_1d(512, 3.0);
        assert!(!h2.is_symmetric(), "test needs a stored column side");
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(512, 3, 22);
        let x = ulv.solve(&b);
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        let rel = r.norm_fro() / b.norm_fro();
        assert!(rel < 1e-10, "unsym ULV representation residual {rel}");
    }

    /// Unsymmetric solution against a dense LU of the extracted compressed
    /// operator — exact up to roundoff, independent of construction error.
    #[test]
    fn unsym_ulv_matches_dense_lu_of_compressed_operator() {
        let (h2, _) = unsym_hss_1d(320, 3.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(320, 2, 23);
        let x = ulv.solve(&b);
        let dense = h2.to_dense();
        let want = lu_factor(dense).unwrap().solve(&b);
        let mut dxy = x;
        dxy.axpy(-1.0, &want);
        let rel = dxy.norm_fro() / want.norm_fro();
        assert!(rel < 1e-12, "unsym ULV vs dense LU rel {rel}");
    }

    /// The transpose product through the same factorization's operator:
    /// `K x` with `x = K⁻¹ b` must reproduce `b` even though row and
    /// column bases differ (catches side mix-ups in the two rotations).
    #[test]
    fn unsym_batched_matches_per_node() {
        let (h2, _) = unsym_hss_1d(384, 3.0);
        let batched = UlvFactor::new(&h2).unwrap();
        let per_node = UlvFactor::new_per_node(&h2).unwrap();
        let b = gaussian_mat(384, 3, 24);
        let xb = batched.solve(&b);
        let xp = per_node.solve(&b);
        let mut d = xb;
        d.axpy(-1.0, &xp);
        let rel = d.norm_fro() / xp.norm_fro().max(1e-300);
        assert!(
            rel <= 1e-13,
            "batched vs per-node elimination diverged: rel {rel}"
        );
    }

    #[test]
    fn sym_batched_matches_per_node() {
        let (mut h2, _) = hss_1d(512, 1e-9, 21);
        shift_diag(&mut h2, 2.0);
        let batched = UlvFactor::new(&h2).unwrap();
        let per_node = UlvFactor::new_per_node(&h2).unwrap();
        let b = gaussian_mat(512, 2, 25);
        let xb = batched.solve(&b);
        let xp = per_node.solve(&b);
        let mut d = xb;
        d.axpy(-1.0, &xp);
        let rel = d.norm_fro() / xp.norm_fro().max(1e-300);
        assert!(rel <= 1e-13, "sym batched vs per-node rel {rel}");
    }

    #[test]
    fn ulv_solves_the_representation_exactly() {
        let (h2, _) = hss_1d(512, 1e-9, 21);
        // Regularize: K + 2I keeps the system comfortably nonsingular.
        let mut h2 = h2;
        shift_diag(&mut h2, 2.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(512, 3, 22);
        let x = ulv.solve(&b);
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        let rel = r.norm_fro() / b.norm_fro();
        assert!(rel < 1e-10, "ULV representation residual {rel}");
    }

    #[test]
    fn ulv_solution_matches_dense_solve() {
        let (h2, km) = hss_1d(400, 1e-10, 23);
        let mut h2 = h2;
        shift_diag(&mut h2, 2.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(400, 2, 24);
        let x = ulv.solve(&b);

        let mut dense = Mat::from_fn(400, 400, |i, j| km.entry(i, j));
        for i in 0..400 {
            dense[(i, i)] += 2.0;
        }
        let lu = lu_factor(dense).unwrap();
        let want = lu.solve(&b);
        let mut d = x;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        // Construction error (1e-10) propagates through the inverse.
        assert!(rel < 1e-6, "ULV vs dense solve rel {rel}");
    }

    #[test]
    fn ulv_rejects_strong_partition() {
        let pts = h2_tree::uniform_cube(600, 25);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &SketchConfig::default());
        assert!(matches!(
            UlvFactor::new(&h2),
            Err(UlvError::NotWeakPartition)
        ));
    }

    #[test]
    fn ulv_reports_singular_pivot_block() {
        let (mut h2, _) = hss_1d(256, 1e-9, 26);
        // Zero a leaf diagonal block: its rotated pivot D̃₂₂ is singular
        // whenever the leaf eliminates anything (k < m there).
        let leaf = h2.tree.level(h2.tree.leaf_level()).next().unwrap();
        let idx = h2
            .dense
            .pairs
            .iter()
            .position(|&(s, t)| s == leaf && t == leaf)
            .unwrap();
        let rows = h2.dense.blocks[idx].rows();
        assert!(h2.rank(leaf) < rows, "leaf must eliminate something");
        h2.dense.blocks[idx] = Mat::zeros(rows, rows);
        for schedule in [UlvSchedule::Batched, UlvSchedule::PerNode] {
            let rt = Runtime::sequential();
            match UlvFactor::with_schedule(&h2, schedule, &rt) {
                Err(UlvError::SingularBlock(id)) => assert_eq!(id, leaf),
                other => panic!("expected SingularBlock, got {:?}", other.err()),
            }
        }
    }

    /// Rank-0 (zero-extent basis) nodes are harmless: inject a rank-0 leaf
    /// under a based parent — its whole reduced block eliminates locally
    /// (`k = 0`, `e = m`) and the sibling coupling shrinks to zero extent.
    #[test]
    fn ulv_handles_rank_zero_nodes() {
        use h2_matrix::BlockStore;
        let (mut h2, _) = hss_1d(300, 1e-9, 31);
        shift_diag(&mut h2, 2.0);
        let tree = h2.tree.clone();
        let leaf = tree
            .level(tree.leaf_level())
            .find(|&id| {
                tree.nodes[id]
                    .parent
                    .map(|p| h2.rank(p) > 0)
                    .unwrap_or(false)
            })
            .expect("a leaf under a based parent");
        let parent = tree.nodes[leaf].parent.unwrap();
        let (c1, c2) = tree.nodes[parent].children.unwrap();
        let sibling = if leaf == c1 { c2 } else { c1 };
        let k_sib = h2.rank(sibling);
        let k_par = h2.rank(parent);
        h2.basis[leaf] = Mat::zeros(tree.nodes[leaf].len(), 0);
        h2.skel[leaf] = Vec::new();
        let old = h2.basis[parent].clone();
        let off = if leaf == c1 { old.rows() - k_sib } else { 0 };
        h2.basis[parent] = old.view(off, 0, k_sib, k_par).to_mat();
        let mut store = BlockStore::new();
        for i in 0..h2.coupling.pairs.len() {
            let (s, t) = h2.coupling.pairs[i];
            if s == leaf || t == leaf {
                let r = if s == leaf {
                    0
                } else {
                    h2.coupling.blocks[i].rows()
                };
                let c = if t == leaf {
                    0
                } else {
                    h2.coupling.blocks[i].cols()
                };
                store.insert(s, t, Mat::zeros(r, c));
            } else {
                store.insert(s, t, h2.coupling.blocks[i].clone());
            }
        }
        h2.coupling = store;
        let ulv = UlvFactor::new(&h2).unwrap();
        assert_eq!(ulv.retained(leaf), 0, "rank-0 leaf retains nothing");
        let b = gaussian_mat(300, 2, 27);
        let x = ulv.solve(&b);
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        assert!(r.norm_fro() / b.norm_fro() < 1e-10);
    }

    #[test]
    fn ulv_single_leaf_tree() {
        let pts: Vec<[f64; 3]> = (0..20).map(|i| [i as f64, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 5.0 }, tree.points.clone());
        let rt = Runtime::sequential();
        let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &SketchConfig::default());
        shift_diag(&mut h2, 1.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(20, 1, 26);
        let x = ulv.solve(&b);
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        assert!(r.norm_fro() / b.norm_fro() < 1e-12);
    }

    #[test]
    fn loose_ulv_preconditions_exact_operator() {
        use crate::krylov::pcg;
        use crate::precond::Identity;
        // Exact operator: shifted covariance. Preconditioner: ULV of a
        // loosely compressed HSS of the same operator.
        let n = 512;
        let pts = line_points(n);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let mut dense = Mat::from_fn(n, n, |i, j| km.entry(i, j));
        for i in 0..n {
            dense[(i, i)] += 0.1; // mildly regularized: ill-conditioned enough
        }
        let op = DenseOp::new(dense);

        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-4,
            initial_samples: 48,
            ..Default::default()
        };
        let (hss, _) = sketch_construct(&op, &op, tree, part, &rt, &cfg);
        let ulv = UlvFactor::new(&hss).unwrap();

        let b: Vec<f64> = (0..n).map(|i| (0.01 * i as f64).sin()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 400, 1e-10);
        let prec = pcg(&op, &ulv, &b, 400, 1e-10);
        assert!(
            prec.converged,
            "preconditioned CG residual {}",
            prec.relative_residual
        );
        assert!(
            prec.iterations * 3 < plain.iterations.max(1),
            "ULV precond {} its vs plain {} its",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn multiple_rhs_consistent_with_single() {
        let (mut h2, _) = hss_1d(256, 1e-9, 27);
        shift_diag(&mut h2, 2.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(256, 4, 28);
        let x_all = ulv.solve(&b);
        // Bit-identity, not tolerance: the blocked sweep dispatches its
        // kernels on (rows, depth) only, so every column must match its
        // own single-RHS solve exactly.
        for c in 0..4 {
            let bc: Vec<f64> = b.col(c).to_vec();
            let xc = ulv.solve_vec(&bc);
            for i in 0..256 {
                assert_eq!(
                    x_all[(i, c)].to_bits(),
                    xc[i].to_bits(),
                    "column {c} row {i} drifted from the single-RHS sweep"
                );
            }
        }
    }

    #[test]
    fn root_size_reflects_compression() {
        let (mut h2, _) = hss_1d(512, 1e-8, 29);
        shift_diag(&mut h2, 2.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        assert!(
            ulv.root_size() < 512 / 2,
            "root system {} should be far smaller than N",
            ulv.root_size()
        );
    }

    #[test]
    fn solve_spec_shapes_line_up() {
        let (mut h2, _) = hss_1d(512, 1e-9, 30);
        shift_diag(&mut h2, 2.0);
        let ulv = UlvFactor::new(&h2).unwrap();
        let spec = ulv.solve_spec(3);
        assert_eq!(spec.nrhs, 3);
        assert_eq!(spec.root_size, ulv.root_size());
        assert_eq!(spec.levels.len(), h2.tree.leaf_level());
        // Leaf level first; node counts follow the tree levels bottom-up.
        for (i, lvl) in spec.levels.iter().enumerate() {
            let l = h2.tree.leaf_level() - i;
            assert_eq!(lvl.m.len(), h2.tree.level_len(l));
            assert_eq!(lvl.merges.len(), h2.tree.level_len(l - 1));
            for j in 0..lvl.m.len() {
                assert!(lvl.k[j] <= lvl.m[j]);
            }
        }
    }
}
