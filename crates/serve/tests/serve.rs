//! End-to-end operator-service tests on real (small) HSS operators:
//! cache eviction under a byte budget, request coalescing correctness
//! (each response bit-identical to its own standalone solve), and the
//! modeled-latency accounting of the admission policy.

use h2_core::{sketch_construct, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{DeviceModel, PipelineMode, Runtime};
use h2_serve::{
    AdmissionPolicy, CachedOperator, OpKey, OperatorCache, Request, ServeConfig, ServeSim,
};
use h2_solve::UlvFactor;
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn line_points(n: usize, offset: f64) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| [offset + i as f64 / n as f64, 0.0, 0.0])
        .collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
            h2.dense.resync_demoted(i);
        }
    }
}

/// Build the operator pair for an `n`-point line at `offset` — the
/// "backend constructor" a serve deployment would run on a cache miss.
fn build_op(n: usize, offset: f64) -> CachedOperator {
    let pts = line_points(n, offset);
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
    shift_diag(&mut h2, 3.0);
    let ulv = UlvFactor::new(&h2).unwrap();
    CachedOperator {
        h2: Arc::new(h2),
        ulv: Arc::new(ulv),
    }
}

fn key_for(offset_tag: u64) -> OpKey {
    OpKey::from_hash("exp1d", offset_tag, 1e-9)
}

#[test]
fn cache_evicts_lru_under_byte_budget() {
    let ops: Vec<CachedOperator> = (0..3).map(|i| build_op(256, i as f64 * 10.0)).collect();
    let keys: Vec<OpKey> = (0..3).map(|i| key_for(i as u64)).collect();
    // Budget fits the two largest operators but not all three.
    let budget = ops[0].memory_bytes() + ops[1].memory_bytes() + ops[2].memory_bytes()
        - ops.iter().map(|o| o.memory_bytes()).min().unwrap() / 2;
    let mut cache = OperatorCache::new(budget);
    assert_eq!(cache.insert(keys[0].clone(), ops[0].clone()), 0);
    assert_eq!(cache.insert(keys[1].clone(), ops[1].clone()), 0);
    assert_eq!(
        cache.total_bytes(),
        ops[0].memory_bytes() + ops[1].memory_bytes()
    );
    // Refresh key 0 so key 1 is the LRU victim.
    assert!(cache.get(&keys[0]).is_some());
    let evicted = cache.insert(keys[2].clone(), ops[2].clone());
    assert_eq!(evicted, 1, "one eviction brings the total under budget");
    assert!(cache.contains(&keys[0]));
    assert!(!cache.contains(&keys[1]), "LRU slot evicted");
    assert!(cache.contains(&keys[2]));
    assert!(cache.total_bytes() <= budget);
    assert_eq!(cache.evictions(), 1);
    // Misses are counted on lookup, not insert.
    assert!(cache.get(&keys[1]).is_none());
    assert_eq!(cache.misses(), 1);
}

#[test]
fn coalesced_responses_bit_identical_to_standalone_solves() {
    let op = build_op(512, 0.0);
    let ulv = op.ulv.clone();
    let n = ulv.n();
    let key = key_for(0);
    let cfg = ServeConfig {
        devices: 2,
        mode: PipelineMode::Synchronous,
        model: DeviceModel::default(),
        policy: AdmissionPolicy {
            max_batch: 8,
            max_wait: 1e-3,
        },
        cache_budget_bytes: usize::MAX,
    };
    let op_for_build = op.clone();
    let mut sim = ServeSim::new(cfg, move |_| op_for_build.clone());
    // Seven concurrent requests of mixed widths: coalesced into an 8-wide
    // batch (1+2+1+3+1 = 8) plus a 2-wide remainder.
    let widths = [1usize, 2, 1, 3, 1, 1, 1];
    let requests: Vec<Request> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| Request {
            id: i as u64,
            key: key.clone(),
            arrival: 0.0,
            rhs: gaussian_mat(n, w, 100 + i as u64),
        })
        .collect();
    let inputs: Vec<_> = requests.iter().map(|r| r.rhs.clone()).collect();
    let (responses, report) = sim.run(requests);
    assert_eq!(report.completed, 7);
    assert_eq!(report.total_rhs, 10);
    assert!(report.batches < 7, "requests must coalesce");
    assert!(report.bytes_equal, "fabric bytes must equal the simulator");
    assert_eq!(report.cache_misses, 1, "one build serves every batch");
    // Bit-identity: each response equals its own standalone blocked solve,
    // regardless of where its columns landed in the coalesced batch.
    for resp in &responses {
        let want = ulv.solve(&inputs[resp.id as usize]);
        assert_eq!(
            resp.x.as_slice(),
            want.as_slice(),
            "response {} drifted from its standalone solve",
            resp.id
        );
        assert!(resp.latency > 0.0);
    }
}

#[test]
fn max_wait_bounds_underfull_batch_latency() {
    let op = build_op(256, 0.0);
    let key = key_for(0);
    let n = op.ulv.n();
    let max_wait = 5e-3;
    let cfg = ServeConfig {
        devices: 1,
        mode: PipelineMode::Synchronous,
        model: DeviceModel::default(),
        policy: AdmissionPolicy {
            max_batch: 32,
            max_wait,
        },
        cache_budget_bytes: usize::MAX,
    };
    let op_for_build = op.clone();
    let mut sim = ServeSim::new(cfg, move |_| op_for_build.clone());
    let (responses, report) = sim.run(vec![Request {
        id: 0,
        key,
        arrival: 1.0,
        rhs: gaussian_mat(n, 1, 7),
    }]);
    // A lone under-full request waits out max_wait, then is served.
    assert_eq!(report.batches, 1);
    assert!(responses[0].latency >= max_wait);
    assert!(
        responses[0].latency < max_wait + report.factor_seconds + 1.0,
        "latency {} should be wait + build + one sweep",
        responses[0].latency
    );
    assert_eq!(report.p50_latency, responses[0].latency);
    assert_eq!(report.p99_latency, responses[0].latency);
}

#[test]
fn cache_churn_is_visible_in_the_report() {
    // Two operators, budget for one: alternating keys rebuild every batch;
    // repeating a key hits.
    let ops = [build_op(256, 0.0), build_op(256, 10.0)];
    let keys = [key_for(0), key_for(1)];
    let budget = ops.iter().map(|o| o.memory_bytes()).max().unwrap() * 3 / 2;
    let n = ops[0].ulv.n();
    let cfg = ServeConfig {
        devices: 2,
        mode: PipelineMode::Pipelined,
        model: DeviceModel::default(),
        policy: AdmissionPolicy {
            max_batch: 4,
            max_wait: 1e-6,
        },
        cache_budget_bytes: budget,
    };
    let ops_for_build = ops.clone();
    let mut sim = ServeSim::new(cfg, move |k: &OpKey| {
        ops_for_build[k.geometry as usize].clone()
    });
    // Spread arrivals out so each request is its own batch:
    // A, A, B, A — the second A hits, B misses (evicting A), the last A
    // misses again.
    let mut requests = Vec::new();
    for (i, which) in [0usize, 0, 1, 0].iter().enumerate() {
        requests.push(Request {
            id: i as u64,
            key: keys[*which].clone(),
            arrival: i as f64,
            rhs: gaussian_mat(n, 1, 40 + i as u64),
        });
    }
    let (responses, report) = sim.run(requests);
    assert_eq!(report.completed, 4);
    assert_eq!(report.batches, 4);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cache_misses, 3);
    assert!(report.cache_evictions >= 1, "budget for one operator only");
    assert!(report.bytes_equal);
    assert!(report.factor_seconds > 0.0);
    assert!(report.throughput_rhs_per_sec > 0.0);
    assert_eq!(responses.len(), 4);
}
