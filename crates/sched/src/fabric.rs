//! The device fabric: N virtual devices, each a worker thread with a
//! memory arena and a work/traffic account, plus the explicit transfer
//! queue and per-epoch accounting.
//!
//! Paper mapping:
//!
//! * one **virtual device** = one GPU of §IV.B — a dedicated worker thread
//!   (kernel stream) that executes the contiguous node chunk assigned to
//!   the device at every level;
//! * the **arena** mirrors §IV.A's per-level single workspace allocation
//!   (prefix sum + one `cudaMalloc`): batched kernels charge their chunk's
//!   output bytes plus any fetched remote blocks, and the arena resets at
//!   the next epoch (level) boundary;
//! * the **transfer queue** holds the only two communication patterns of
//!   §IV.B (`Ω_b` partner fetches in `batchedBSRGemm`, boundary sibling
//!   merges at line 24) plus the matvec's partial-sum reads;
//! * an **epoch** is one processed level (or matvec phase): the per-epoch
//!   per-device stats line up one-to-one with the per-level costs of the
//!   [`h2_runtime::multidev`] simulator, which is what
//!   [`crate::SimComparison`] validates.

use h2_runtime::{DeviceModel, ShardDispatch, ShardJob, Transfer, TransferKind};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Snapshot of one device's counters over one epoch.
#[derive(Clone, Debug, Default)]
pub struct DeviceEpochStats {
    /// Modeled batched-kernel flops (the simulator's formulas).
    pub flops: f64,
    /// `batchedGen` entry evaluations (flop-equivalents are
    /// `entry_cost × gen_entries`).
    pub gen_entries: f64,
    /// Kernel launches issued by this device.
    pub launches: usize,
    /// Measured wall-clock the worker spent executing jobs.
    pub busy: Duration,
    /// Peak arena bytes held during the epoch.
    pub arena_peak: usize,
}

/// One closed accounting epoch (a construction level or matvec phase).
#[derive(Clone, Debug)]
pub struct Epoch {
    pub label: String,
    pub per_device: Vec<DeviceEpochStats>,
    /// Cross-device bytes moved during the epoch.
    pub comm_bytes: u64,
    /// Number of cross-device messages.
    pub comm_messages: usize,
}

#[derive(Default)]
struct Account {
    flops: f64,
    gen_entries: f64,
    launches: usize,
    busy_nanos: u64,
}

/// Bump-style arena accounting: `live` grows with every charge and resets
/// at epoch boundaries (per-level workspace discipline).
#[derive(Default)]
struct Arena {
    live: usize,
    peak_epoch: usize,
    peak_total: usize,
    allocated_total: usize,
}

struct Shared {
    devices: usize,
    accounts: Vec<Mutex<Account>>,
    arenas: Vec<Mutex<Arena>>,
    /// Transfer queue entries tagged with the epoch they occurred in.
    transfers: Mutex<Vec<(usize, Transfer)>>,
    epochs: Mutex<Vec<Epoch>>,
}

enum Cmd {
    Job(Box<dyn FnOnce() + Send + 'static>),
    Stop,
}

struct Worker {
    tx: Sender<Cmd>,
    handle: Option<JoinHandle<()>>,
}

/// A fabric of `N` virtual devices. Create with [`DeviceFabric::new`],
/// hand the `Arc` to [`h2_runtime::Runtime::sharded`] (it implements
/// [`ShardDispatch`]), run work, then collect an [`ExecReport`].
pub struct DeviceFabric {
    shared: Arc<Shared>,
    workers: Vec<Worker>,
}

impl DeviceFabric {
    /// Spin up `devices` worker threads (one per virtual device).
    pub fn new(devices: usize) -> Arc<Self> {
        assert!(devices > 0, "at least one device");
        let shared = Arc::new(Shared {
            devices,
            accounts: (0..devices)
                .map(|_| Mutex::new(Account::default()))
                .collect(),
            arenas: (0..devices).map(|_| Mutex::new(Arena::default())).collect(),
            transfers: Mutex::new(Vec::new()),
            epochs: Mutex::new(Vec::new()),
        });
        let workers = (0..devices)
            .map(|dev| {
                let (tx, rx) = channel::<Cmd>();
                let handle = std::thread::Builder::new()
                    .name(format!("h2-device-{dev}"))
                    .spawn(move || {
                        while let Ok(cmd) = rx.recv() {
                            match cmd {
                                Cmd::Job(job) => job(),
                                Cmd::Stop => break,
                            }
                        }
                    })
                    .expect("spawn device worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        Arc::new(DeviceFabric { shared, workers })
    }

    pub fn devices(&self) -> usize {
        self.shared.devices
    }

    /// Execute `jobs[d]` on device `d`'s worker thread and block until all
    /// complete. Job wall time is credited to each device's busy counter.
    pub fn run_jobs<'a>(&self, jobs: Vec<ShardJob<'a>>) {
        assert!(jobs.len() <= self.shared.devices, "more jobs than devices");
        let njobs = jobs.len();
        let (done_tx, done_rx) = channel::<()>();
        for (dev, job) in jobs.into_iter().enumerate() {
            let shared = self.shared.clone();
            let done = done_tx.clone();
            let wrapped: ShardJob<'a> = Box::new(move || {
                let t0 = Instant::now();
                job();
                let dt = t0.elapsed().as_nanos() as u64;
                shared.accounts[dev].lock().unwrap().busy_nanos += dt;
                let _ = done.send(());
            });
            // SAFETY: this thread blocks on `done_rx` below until every job
            // has signalled completion, so all borrows captured by `job`
            // strictly outlive its execution on the worker thread. This is
            // the standard scoped-threadpool lifetime erasure.
            let wrapped: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute(wrapped) };
            self.workers[dev]
                .tx
                .send(Cmd::Job(wrapped))
                .expect("device worker alive");
        }
        // Drop the original sender so a panicking job (which unwinds past
        // its `done.send`) closes the channel instead of deadlocking us:
        // `recv` then errors and the panic propagates to the caller.
        drop(done_tx);
        for _ in 0..njobs {
            done_rx
                .recv()
                .expect("a device job panicked on its worker thread");
        }
    }

    /// Record a cross-device transfer on the explicit queue.
    pub fn record_transfer(&self, t: Transfer) {
        let epoch = self.shared.epochs.lock().unwrap().len();
        self.shared.transfers.lock().unwrap().push((epoch, t));
    }

    pub fn record_flops(&self, dev: usize, flops: f64) {
        self.shared.accounts[dev].lock().unwrap().flops += flops;
    }

    pub fn record_gen_entries(&self, dev: usize, entries: f64) {
        self.shared.accounts[dev].lock().unwrap().gen_entries += entries;
    }

    pub fn record_launches(&self, dev: usize, n: usize) {
        self.shared.accounts[dev].lock().unwrap().launches += n;
    }

    /// Charge workspace bytes to a device arena.
    pub fn arena_charge(&self, dev: usize, bytes: usize) {
        let mut a = self.shared.arenas[dev].lock().unwrap();
        a.live += bytes;
        a.allocated_total += bytes;
        a.peak_epoch = a.peak_epoch.max(a.live);
        a.peak_total = a.peak_total.max(a.live);
    }

    /// Close the current epoch: snapshot and reset per-device counters,
    /// release the arenas (per-level workspace), aggregate the epoch's
    /// transfer traffic.
    pub fn close_epoch(&self, label: &str) {
        let mut epochs = self.shared.epochs.lock().unwrap();
        let idx = epochs.len();
        let per_device: Vec<DeviceEpochStats> = (0..self.shared.devices)
            .map(|dev| {
                let mut a = self.shared.accounts[dev].lock().unwrap();
                let mut ar = self.shared.arenas[dev].lock().unwrap();
                let stats = DeviceEpochStats {
                    flops: a.flops,
                    gen_entries: a.gen_entries,
                    launches: a.launches,
                    busy: Duration::from_nanos(a.busy_nanos),
                    arena_peak: ar.peak_epoch,
                };
                *a = Account::default();
                ar.live = 0;
                ar.peak_epoch = 0;
                stats
            })
            .collect();
        let transfers = self.shared.transfers.lock().unwrap();
        let (mut bytes, mut msgs) = (0u64, 0usize);
        for (e, t) in transfers.iter() {
            if *e == idx {
                bytes += t.bytes;
                msgs += 1;
            }
        }
        epochs.push(Epoch {
            label: label.to_string(),
            per_device,
            comm_bytes: bytes,
            comm_messages: msgs,
        });
    }

    /// Whether any counter has accumulated since the last epoch boundary.
    fn has_open_work(&self) -> bool {
        let idx = self.shared.epochs.lock().unwrap().len();
        if self
            .shared
            .transfers
            .lock()
            .unwrap()
            .iter()
            .any(|(e, _)| *e == idx)
        {
            return true;
        }
        (0..self.shared.devices).any(|dev| {
            let a = self.shared.accounts[dev].lock().unwrap();
            a.flops > 0.0 || a.gen_entries > 0.0 || a.launches > 0 || a.busy_nanos > 0
        })
    }

    /// Collect everything recorded so far into a report, closing a trailing
    /// epoch under `tail_label` if work is pending.
    pub fn report(&self, tail_label: &str) -> ExecReport {
        if self.has_open_work() {
            self.close_epoch(tail_label);
        }
        let epochs = self.shared.epochs.lock().unwrap().clone();
        let transfers = self.shared.transfers.lock().unwrap().clone();
        let arena_peaks = (0..self.shared.devices)
            .map(|dev| self.shared.arenas[dev].lock().unwrap().peak_total)
            .collect();
        ExecReport {
            devices: self.shared.devices,
            epochs,
            transfers,
            arena_peaks,
        }
    }

    /// Clear all accounting (reuse the fabric for another run).
    pub fn reset(&self) {
        for dev in 0..self.shared.devices {
            *self.shared.accounts[dev].lock().unwrap() = Account::default();
            *self.shared.arenas[dev].lock().unwrap() = Arena::default();
        }
        self.shared.transfers.lock().unwrap().clear();
        self.shared.epochs.lock().unwrap().clear();
    }
}

impl Drop for DeviceFabric {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Stop);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl ShardDispatch for DeviceFabric {
    fn devices(&self) -> usize {
        DeviceFabric::devices(self)
    }

    fn run<'a>(&self, jobs: Vec<ShardJob<'a>>) {
        self.run_jobs(jobs)
    }

    fn push_transfer(&self, t: Transfer) {
        self.record_transfer(t)
    }

    fn add_flops(&self, dev: usize, flops: f64) {
        self.record_flops(dev, flops)
    }

    fn add_gen_entries(&self, dev: usize, entries: f64) {
        self.record_gen_entries(dev, entries)
    }

    fn add_launches(&self, dev: usize, n: usize) {
        self.record_launches(dev, n)
    }

    fn arena_alloc(&self, dev: usize, bytes: usize) {
        self.arena_charge(dev, bytes)
    }

    fn epoch(&self, label: &str) {
        self.close_epoch(label)
    }
}

/// Everything a sharded run recorded: per-epoch per-device timing and
/// modeled work, the full transfer queue, arena peaks. The measured totals
/// are validated against [`h2_runtime::simulate`] by
/// [`crate::compare_with_simulator`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    pub devices: usize,
    pub epochs: Vec<Epoch>,
    /// `(epoch index, transfer)` in queue order.
    pub transfers: Vec<(usize, Transfer)>,
    /// Per-device peak arena bytes over the whole run.
    pub arena_peaks: Vec<usize>,
}

impl ExecReport {
    /// Modeled batched-kernel flops summed over devices and epochs
    /// (excluding `batchedGen` entries).
    pub fn total_flops(&self) -> f64 {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.flops)
            .sum()
    }

    pub fn total_gen_entries(&self) -> f64 {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.gen_entries)
            .sum()
    }

    /// Total work in flop-equivalents under a device model's per-entry
    /// generation cost — the simulator's compute currency.
    pub fn flop_equiv(&self, entry_cost: f64) -> f64 {
        self.total_flops() + entry_cost * self.total_gen_entries()
    }

    pub fn total_comm_bytes(&self) -> u64 {
        self.transfers.iter().map(|(_, t)| t.bytes).sum()
    }

    pub fn total_comm_messages(&self) -> usize {
        self.transfers.len()
    }

    pub fn total_launches(&self) -> usize {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.launches)
            .sum()
    }

    /// Bytes moved for one transfer kind.
    pub fn bytes_of_kind(&self, kind: TransferKind) -> u64 {
        self.transfers
            .iter()
            .filter(|(_, t)| t.kind == kind)
            .map(|(_, t)| t.bytes)
            .sum()
    }

    /// Measured wall-clock makespan: epochs are sequential, devices within
    /// an epoch run concurrently, so the makespan is the sum over epochs of
    /// the busiest device.
    pub fn measured_makespan(&self) -> Duration {
        self.epochs
            .iter()
            .map(|e| {
                e.per_device
                    .iter()
                    .map(|d| d.busy)
                    .max()
                    .unwrap_or_default()
            })
            .sum()
    }

    /// Total measured busy time per device across all epochs.
    pub fn busy_per_device(&self) -> Vec<Duration> {
        let mut out = vec![Duration::default(); self.devices];
        for e in &self.epochs {
            for (dev, d) in e.per_device.iter().enumerate() {
                out[dev] += d.busy;
            }
        }
        out
    }

    /// Project the *measured* counts through a [`DeviceModel`] exactly the
    /// way the simulator projects a `LevelSpec`: per epoch, the busiest
    /// device's modeled compute time plus serialized communication plus
    /// per-device launch overhead; epochs are sequential.
    pub fn modeled_makespan(&self, model: &DeviceModel) -> f64 {
        self.epochs
            .iter()
            .map(|e| {
                let compute_max = e
                    .per_device
                    .iter()
                    .map(|d| (d.flops + model.entry_cost * d.gen_entries) / model.flops_per_sec)
                    .fold(0.0, f64::max);
                let comm = e.comm_bytes as f64 / model.link_bandwidth
                    + e.comm_messages as f64 * model.link_latency;
                let launches_max = e.per_device.iter().map(|d| d.launches).max().unwrap_or(0);
                compute_max + comm + launches_max as f64 * model.launch_overhead
            })
            .sum()
    }

    /// Modeled total compute seconds (device-invariant work currency).
    pub fn modeled_compute_total(&self, model: &DeviceModel) -> f64 {
        self.flop_equiv(model.entry_cost) / model.flops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_on_distinct_worker_threads() {
        let fabric = DeviceFabric::new(3);
        let names = Mutex::new(Vec::new());
        let jobs: Vec<ShardJob<'_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    names
                        .lock()
                        .unwrap()
                        .push(std::thread::current().name().unwrap_or("?").to_string());
                }) as ShardJob<'_>
            })
            .collect();
        fabric.run_jobs(jobs);
        let mut got = names.into_inner().unwrap();
        got.sort();
        assert_eq!(got, vec!["h2-device-0", "h2-device-1", "h2-device-2"]);
    }

    #[test]
    fn run_blocks_until_all_jobs_complete() {
        let fabric = DeviceFabric::new(4);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<ShardJob<'_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as ShardJob<'_>
            })
            .collect();
        fabric.run_jobs(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_job_propagates_instead_of_hanging() {
        let fabric = DeviceFabric::new(2);
        let jobs: Vec<ShardJob<'_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("injected device fault")),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fabric.run_jobs(jobs);
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn epochs_snapshot_and_reset_counters() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 100.0);
        fabric.record_gen_entries(1, 7.0);
        fabric.record_launches(0, 3);
        fabric.arena_charge(0, 64);
        fabric.record_transfer(Transfer {
            src: 0,
            dst: 1,
            bytes: 128,
            kind: TransferKind::OmegaFetch,
        });
        fabric.close_epoch("e0");
        fabric.record_flops(0, 1.0);
        let rep = fabric.report("tail");
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].per_device[0].flops, 100.0);
        assert_eq!(rep.epochs[0].per_device[1].gen_entries, 7.0);
        assert_eq!(rep.epochs[0].per_device[0].launches, 3);
        assert_eq!(rep.epochs[0].per_device[0].arena_peak, 64);
        assert_eq!(rep.epochs[0].comm_bytes, 128);
        assert_eq!(rep.epochs[0].comm_messages, 1);
        assert_eq!(rep.epochs[1].label, "tail");
        assert_eq!(rep.epochs[1].per_device[0].flops, 1.0);
        assert_eq!(rep.total_flops(), 101.0);
        assert_eq!(rep.total_comm_bytes(), 128);
        assert_eq!(rep.bytes_of_kind(TransferKind::OmegaFetch), 128);
        assert_eq!(rep.bytes_of_kind(TransferKind::ChildGather), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 5.0);
        fabric.close_epoch("x");
        fabric.reset();
        let rep = fabric.report("tail");
        assert!(rep.epochs.is_empty());
        assert_eq!(rep.total_flops(), 0.0);
    }

    #[test]
    fn modeled_makespan_tracks_busiest_device() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 2.0e10);
        fabric.record_flops(1, 1.0e10);
        fabric.close_epoch("lvl");
        let rep = fabric.report("tail");
        let model = DeviceModel {
            flops_per_sec: 1.0e10,
            link_bandwidth: 1.0e12,
            link_latency: 0.0,
            launch_overhead: 0.0,
            entry_cost: 20.0,
        };
        assert!((rep.modeled_makespan(&model) - 2.0).abs() < 1e-12);
        assert!((rep.modeled_compute_total(&model) - 3.0).abs() < 1e-12);
    }
}
