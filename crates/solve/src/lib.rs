//! # h2-solve
//!
//! Solving linear systems with compressed H2 operators — the workload the
//! paper's construction feeds ("accelerating H2 arithmetic in sparse
//! multifrontal solvers or Schur complement-based updates", §I; H2
//! inversion is the paper's stated follow-up work).
//!
//! Three layers:
//!
//! * [`krylov`] — preconditioned iterative methods on [`h2_dense::LinOp`]:
//!   CG for SPD systems, restarted GMRES and BiCGStab for unsymmetric ones.
//! * [`precond`] — preconditioners assembled from the H2 representation:
//!   block-Jacobi from the near-field diagonal blocks, and any direct
//!   factorization wrapped as a preconditioner.
//! * [`ulv`] — ULV direct factorizations for weak-admissibility
//!   (HSS-pattern) H2 matrices in both side layouts: the symmetric
//!   Chandrasekaran–Gu–Pals flavor and the LU-flavored elimination for
//!   independent row/column bases, with a per-level batched schedule over
//!   [`h2_runtime::VarBatch`] workspaces (O(N k²) factor + O(N k) solve).
//! * [`woodbury`] — Sherman–Morrison–Woodbury solves for low-rank-updated
//!   operators (`A + P Qᵀ`), pairing with [`h2_matrix::LowRankUpdate`].

pub mod krylov;
pub mod precond;
mod smallops;
pub mod ulv;
pub mod woodbury;

pub use krylov::{
    bicgstab, bicgstab_with, block_pcg, block_pcg_with, blocked_dot, blocked_norm, cgs, cgs_with,
    gmres, gmres_with, pcg, pcg_with, BlockIterResult, BlockKrylovWorkspace, IterResult,
    KrylovWorkspace, ReduceHook,
};
pub use precond::{BlockJacobi, DiagJacobi, Identity, Preconditioner};
pub use ulv::{UlvError, UlvFactor, UlvSchedule, UlvSweep};
pub use woodbury::woodbury_solve;
