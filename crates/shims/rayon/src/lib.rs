//! Offline drop-in subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of rayon it actually uses. Parallel
//! "iterators" here are eager: every adapter materializes its input and fans
//! the per-item work out as indexed tasks on a process-wide **work-stealing
//! deque pool** (see [`pool`]). Results are written into pre-assigned slots,
//! so `map`/`collect` ordering is deterministic and identical to the
//! sequential execution — only the schedule is dynamic. Semantics match
//! rayon for the patterns used in this repository (deterministic
//! order-preserving `map`+`collect`, side-effecting `for_each` over disjoint
//! targets, panic propagation to the caller).
//!
//! The pool replaces the previous eager scoped-thread fan-out (which split
//! items into one contiguous chunk per thread and then waited for the
//! slowest chunk): each worker owns a deque, tasks are dealt round-robin,
//! idle workers *steal half* of the busiest visible deque, and the
//! submitting thread participates in execution while it waits. Skewed
//! per-item costs (a few huge batch entries among thousands of small ones —
//! the typical H2 level workload) therefore no longer serialize behind the
//! largest chunk.

use std::thread;

/// Number of worker threads used for parallel execution (pool workers plus
/// the participating submitter). Cached: `available_parallelism` parses
/// cgroup limits on Linux, which is far too slow for hot-path callers that
/// consult the thread count before deciding whether to parallelize.
pub fn current_num_threads() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let n = thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            CACHED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParVec,
    };
}

pub mod iter {
    pub use crate::prelude::*;
}

/// The work-stealing deque pool backing every parallel adapter.
pub mod pool {
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};
    use std::thread;

    /// A type-erased unit of work. Jobs submitted through [`run_tasks`]
    /// borrow the submitter's stack; the lifetime is erased because the
    /// submitter blocks until its whole batch has completed (the same
    /// scoped-pool erasure `h2_sched::DeviceFabric` uses).
    type Job = Box<dyn FnOnce() + Send + 'static>;

    /// Completion state of one submitted batch.
    struct Batch {
        remaining: AtomicUsize,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        /// Parking spot for the submitter during the batch tail: the last
        /// job's decrement notifies, and a short timed wait doubles as the
        /// poll for newly stealable work from other batches.
        done_lock: Mutex<()>,
        done: Condvar,
    }

    struct Shared {
        /// One deque per worker thread. Owners pop from the front; thieves
        /// steal half from the back.
        deques: Vec<Mutex<VecDeque<Job>>>,
        /// Approximate count of queued (not yet started) jobs; workers only
        /// sleep when it reads zero.
        queued: AtomicUsize,
        /// Sleep/wake plumbing for idle workers.
        idle: Mutex<()>,
        wake: Condvar,
    }

    impl Shared {
        /// Pop from our own deque, or steal half of another worker's.
        /// `home` is `None` for the submitting thread (it owns no deque and
        /// only steals single jobs).
        fn next_job(&self, home: Option<usize>) -> Option<Job> {
            if let Some(w) = home {
                if let Some(job) = self.deques[w].lock().unwrap().pop_front() {
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
            let n = self.deques.len();
            let start = home.map(|w| w + 1).unwrap_or(0);
            for off in 0..n {
                let v = (start + off) % n;
                if Some(v) == home {
                    continue;
                }
                let mut stolen = {
                    let mut victim = self.deques[v].lock().unwrap();
                    let len = victim.len();
                    if len == 0 {
                        continue;
                    }
                    // Steal the back half (at least one job), leaving the
                    // front for the owner — the deque discipline that keeps
                    // contention low and locality with the owner.
                    let take = if home.is_some() { len - len / 2 } else { 1 };
                    victim.split_off(len - take)
                };
                self.queued.fetch_sub(stolen.len(), Ordering::Relaxed);
                let job = stolen.pop_front().expect("stole at least one job");
                if let Some(w) = home.filter(|_| !stolen.is_empty()) {
                    self.queued.fetch_add(stolen.len(), Ordering::Relaxed);
                    self.deques[w].lock().unwrap().extend(stolen);
                    // The surplus is visible to other thieves again.
                    self.notify();
                }
                return Some(job);
            }
            None
        }

        /// Wake sleeping workers. Taking the idle lock orders the wakeup
        /// against a worker's `queued == 0` check, so no wakeup is lost
        /// (the timed wait is only a backstop).
        fn notify(&self) {
            let _guard = self.idle.lock().unwrap();
            self.wake.notify_all();
        }
    }

    fn worker_loop(shared: Arc<Shared>, w: usize) {
        loop {
            if let Some(job) = shared.next_job(Some(w)) {
                // Jobs are pre-wrapped in catch_unwind by run_tasks; a raw
                // panic here would kill the worker, so keep the invariant.
                job();
                continue;
            }
            let guard = shared.idle.lock().unwrap();
            if shared.queued.load(Ordering::Relaxed) == 0 {
                // Timed wait so a lost wakeup can never strand the pool.
                let _ = shared
                    .wake
                    .wait_timeout(guard, std::time::Duration::from_millis(50));
            }
        }
    }

    fn shared() -> &'static Arc<Shared> {
        static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = super::current_num_threads().saturating_sub(1).max(1);
            let shared = Arc::new(Shared {
                deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                queued: AtomicUsize::new(0),
                idle: Mutex::new(()),
                wake: Condvar::new(),
            });
            for w in 0..workers {
                let s = shared.clone();
                thread::Builder::new()
                    .name(format!("h2-steal-{w}"))
                    .spawn(move || worker_loop(s, w))
                    .expect("spawn pool worker");
            }
            shared
        })
    }

    /// Execute `tasks` on the pool and block until all complete. The caller
    /// participates (executes queued jobs) while waiting, which both speeds
    /// up the tail and makes nested `run_tasks` calls from inside a task
    /// deadlock-free. Panics from any task are re-raised on the caller.
    pub fn run_tasks<'a>(tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        if tasks.is_empty() {
            return;
        }
        let shared = shared();
        let batch = Arc::new(Batch {
            remaining: AtomicUsize::new(tasks.len()),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let n = tasks.len();
        {
            let mut wrapped: Vec<Job> = Vec::with_capacity(n);
            for task in tasks {
                let b = batch.clone();
                let job: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        *b.panic.lock().unwrap() = Some(payload);
                    }
                    // Decrement only after the task closure (and its
                    // borrows) has been consumed — the submitter's wait on
                    // `remaining` is what makes the lifetime erasure sound.
                    if b.remaining.fetch_sub(1, Ordering::Release) == 1 {
                        // Last job: wake the parked submitter. Taking the
                        // lock orders this against its remaining-check.
                        let _guard = b.done_lock.lock().unwrap();
                        b.done.notify_all();
                    }
                });
                // SAFETY: the submitter blocks below until `remaining`
                // reaches zero, i.e. until every job has run and dropped its
                // captured borrows, so no borrow outlives `'a`.
                let job: Job = unsafe { std::mem::transmute(job) };
                wrapped.push(job);
            }
            // Deal jobs round-robin across worker deques. The count is
            // raised *before* the pushes: a worker popping in between then
            // sees a transiently high count (harmless extra scan) instead
            // of underflowing it to usize::MAX and defeating the idle
            // sleep check.
            shared.queued.fetch_add(n, Ordering::Relaxed);
            let deques = shared.deques.len();
            for (i, job) in wrapped.into_iter().enumerate() {
                shared.deques[i % deques].lock().unwrap().push_back(job);
            }
            shared.notify();
        }
        // Participate until our batch is done. We may execute jobs of other
        // concurrent batches — their submitters are blocked alive, so their
        // borrows are valid too. With nothing to steal, park on the batch's
        // condvar instead of spinning; the short timeout doubles as the
        // poll for work that later lands in the deques.
        while batch.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = shared.next_job(None) {
                job();
            } else {
                let guard = batch.done_lock.lock().unwrap();
                if batch.remaining.load(Ordering::Acquire) > 0 {
                    let _ = batch
                        .done
                        .wait_timeout(guard, std::time::Duration::from_millis(1));
                }
            }
        }
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// An eagerly-materialized "parallel iterator": a vector of items whose
/// adapters execute their closures as work-stealing pool tasks.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// How many tasks to create per hardware thread: more tasks than workers is
/// what gives the stealing room to balance skewed per-item costs, while
/// keeping per-task overhead negligible for the fine-grained maps.
const TASKS_PER_THREAD: usize = 4;

/// Apply `f` to every item as pool tasks, preserving order.
fn run_chunks<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads();
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let ntasks = (threads * TASKS_PER_THREAD).min(n);
    let chunk = n.div_ceil(ntasks);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ntasks);
        let mut slots: &mut [Option<R>] = &mut out;
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            let (head, tail) = slots.split_at_mut(c.len());
            slots = tail;
            tasks.push(Box::new(move || {
                for (slot, item) in head.iter_mut().zip(c) {
                    *slot = Some(f(item));
                }
            }));
        }
        pool::run_tasks(tasks);
    }
    out.into_iter()
        .map(|o| o.expect("pool task filled its slots"))
        .collect()
}

impl<T: Send> ParVec<T> {
    pub fn map<R, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVec {
            items: run_chunks(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParVec<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = run_chunks(self.items, |t| if f(&t) { Some(t) } else { None });
        ParVec {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        let kept = run_chunks(self.items, f);
        ParVec {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn flat_map<R, I, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        I: IntoIterator<Item = R> + Send,
        F: Fn(T) -> I + Sync,
    {
        let parts = run_chunks(self.items, |t| f(t).into_iter().collect::<Vec<R>>());
        ParVec {
            items: parts.into_iter().flatten().collect(),
        }
    }

    pub fn enumerate(self) -> ParVec<(usize, T)> {
        ParVec {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<U: Send>(self, other: ParVec<U>) -> ParVec<(T, U)> {
        ParVec {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunks(self.items, f);
    }

    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        run_chunks(self.items, f).into_iter().any(|b| b)
    }

    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        run_chunks(self.items, f).into_iter().all(|b| b)
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn max_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().max_by(cmp)
    }

    pub fn min_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().min_by(cmp)
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Owned conversion into a [`ParVec`], mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParVec<I::Item> {
        ParVec {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing conversion, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    fn par_iter(&'data self) -> ParVec<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
    <&'data I as IntoIterator>::Item: Send,
{
    type Item = <&'data I as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParVec<Self::Item> {
        ParVec {
            items: <&'data I as IntoIterator>::into_iter(self).collect(),
        }
    }
}

/// Mutably-borrowing conversion, mirroring rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send;
    fn par_iter_mut(&'data mut self) -> ParVec<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
    <&'data mut I as IntoIterator>::Item: Send,
{
    type Item = <&'data mut I as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParVec<Self::Item> {
        ParVec {
            items: <&'data mut I as IntoIterator>::into_iter(self).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[500], 1000);
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn filter_and_enumerate() {
        let v: Vec<(usize, i32)> = vec![1, -2, 3, -4, 5]
            .into_par_iter()
            .enumerate()
            .filter(|&(_, x)| x > 0)
            .collect();
        assert_eq!(v, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn for_each_disjoint_writes() {
        let mut out = vec![0usize; 64];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        assert_eq!(out[7], 49);
    }

    #[test]
    fn any_and_zip() {
        let a = vec![1, 2, 3];
        let b = vec![30, 20, 10];
        let pairs: Vec<(i32, i32)> = a.par_iter().map(|&x| x).zip(b.into_par_iter()).collect();
        assert_eq!(pairs[2], (3, 10));
        assert!(pairs.par_iter().any(|&(x, _)| x == 2));
    }

    #[test]
    fn skewed_items_still_all_run() {
        // One item is 1000x heavier than the rest; with stealing the total
        // still completes and every item runs exactly once.
        let hits = AtomicUsize::new(0);
        (0..256usize).into_par_iter().for_each(|i| {
            let reps = if i == 0 { 100_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..reps {
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let v: Vec<usize> = (0..16usize)
            .into_par_iter()
            .map(|i| (0..32usize).into_par_iter().map(|j| i * j).sum::<usize>())
            .collect();
        assert_eq!(v[2], 2 * (31 * 32) / 2);
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("injected task fault");
                }
            });
        });
        assert!(result.is_err(), "a task panic must reach the submitter");
        // The pool must remain usable afterwards.
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
    }

    #[test]
    fn concurrent_batches_from_many_threads() {
        let total = Mutex::new(0usize);
        std::thread::scope(|s| {
            for t in 0..4 {
                let total = &total;
                s.spawn(move || {
                    let sum: usize = (0..500usize).into_par_iter().map(|i| i + t).sum();
                    *total.lock().unwrap() += sum;
                });
            }
        });
        let want: usize = (0..4).map(|t| (0..500).map(|i| i + t).sum::<usize>()).sum();
        assert_eq!(total.into_inner().unwrap(), want);
    }
}
