//! Unsymmetric H2 matrices: separate row and column bases.
//!
//! The paper works with symmetric matrices (`V_t = U_t`, §II.A) and notes the
//! algorithm "can be easily extended to un-symmetric or complex-valued
//! matrices". This module provides that extension for the real unsymmetric
//! case: each admissible block is `K(I_s, I_t) ≈ U_s B_{s,t} V_t^T` with a
//! *row* basis tree `U` (nested through row transfers) and an independent
//! *column* basis tree `V`.
//!
//! Storage notes: *both* stores are keyed by **ordered** `(s, t)` pairs.
//! For an unsymmetric matrix, `K(I_s, I_t)^T = K^T(I_t, I_s)` — the
//! transpose of a sub-block belongs to the transposed matrix, so the `(t,s)`
//! block is *not* recoverable from the `(s,t)` block (their entries are
//! disjoint subsets of `K`). Near-field memory therefore doubles relative to
//! the symmetric format, which is inherent to the problem, not the format.

use h2_dense::{gemm, matmul, EntryAccess, LinOp, Mat, MatMut, MatRef, Op};
use h2_tree::{ClusterTree, Partition};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Storage for per-pair blocks keyed by *ordered* `(s, t)` node pairs.
#[derive(Default)]
pub struct OrderedBlockStore {
    /// Ordered pairs (node ids).
    pub pairs: Vec<(usize, usize)>,
    /// `blocks[i]` is the block of `pairs[i]`.
    pub blocks: Vec<Mat>,
    index: HashMap<(usize, usize), usize>,
}

impl OrderedBlockStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the block for the ordered pair `(s, t)`.
    pub fn insert(&mut self, s: usize, t: usize, block: Mat) {
        let idx = self.blocks.len();
        let prev = self.index.insert((s, t), idx);
        assert!(prev.is_none(), "duplicate ordered block ({s},{t})");
        self.pairs.push((s, t));
        self.blocks.push(block);
    }

    /// Look up the block for the ordered pair `(s, t)`.
    pub fn get(&self, s: usize, t: usize) -> Option<&Mat> {
        self.index.get(&(s, t)).map(|&i| &self.blocks[i])
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Heap bytes of all blocks.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.memory_bytes()).sum()
    }
}

/// Rows of an accumulated nested basis for a subset `idx` of cluster `s`.
///
/// Shared by the symmetric and unsymmetric extraction paths: at a leaf these
/// are rows of the explicit basis; at an inner node, the children's
/// accumulated rows multiplied by the transfer slices (eq. (2)).
pub(crate) fn accumulated_basis_rows(
    tree: &ClusterTree,
    basis: &[Mat],
    s: usize,
    idx: &[usize],
) -> Mat {
    let k = basis[s].cols();
    if idx.is_empty() {
        return Mat::zeros(0, k);
    }
    if tree.level_of(s) == tree.leaf_level() {
        let (b, _) = tree.range(s);
        return Mat::from_fn(idx.len(), k, |r, c| basis[s][(idx[r] - b, c)]);
    }
    let (c1, c2) = tree.nodes[s].children.unwrap();
    let split = tree.nodes[c1].end;
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut pos_left = Vec::new();
    let mut pos_right = Vec::new();
    for (p, &i) in idx.iter().enumerate() {
        if i < split {
            left.push(i);
            pos_left.push(p);
        } else {
            right.push(i);
            pos_right.push(p);
        }
    }
    let k1 = basis[c1].cols();
    let e1 = basis[s].view(0, 0, k1, k);
    let e2 = basis[s].view(k1, 0, basis[s].rows() - k1, k);
    let mut out = Mat::zeros(idx.len(), k);
    for (child, ids, pos, e) in
        [(c1, &left, &pos_left, e1), (c2, &right, &pos_right, e2)]
    {
        if ids.is_empty() {
            continue;
        }
        let rows_c = accumulated_basis_rows(tree, basis, child, ids);
        let mut prod = Mat::zeros(ids.len(), k);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, rows_c.rf(), e, 0.0, prod.rm());
        for (r, &p) in pos.iter().enumerate() {
            for c in 0..k {
                out[(p, c)] = prod[(r, c)];
            }
        }
    }
    out
}

/// An unsymmetric H2 matrix with independent row (`U`) and column (`V`)
/// nested basis trees.
pub struct H2MatrixUnsym {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    /// Per node: row basis `U_τ` (leaf) or stacked row transfers (inner).
    pub row_basis: Vec<Mat>,
    /// Per node: column basis `V_τ` (leaf) or stacked column transfers.
    pub col_basis: Vec<Mat>,
    /// Row skeleton indices `Ĩ^r_τ` (global permuted), length = row rank.
    pub row_skel: Vec<Vec<usize>>,
    /// Column skeleton indices `Ĩ^c_τ`, length = column rank.
    pub col_skel: Vec<Vec<usize>>,
    /// Coupling blocks `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)`, ordered pairs.
    pub coupling: OrderedBlockStore,
    /// Dense near-field leaf blocks `K(I_s, I_t)`, ordered pairs.
    pub dense: OrderedBlockStore,
}

impl H2MatrixUnsym {
    /// An empty shell ready to be populated by a constructor.
    pub fn new_shell(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2MatrixUnsym {
            tree,
            partition,
            row_basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            col_basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            row_skel: vec![Vec::new(); nnodes],
            col_skel: vec![Vec::new(); nnodes],
            coupling: OrderedBlockStore::new(),
            dense: OrderedBlockStore::new(),
        }
    }

    pub fn n(&self) -> usize {
        self.tree.npoints()
    }

    /// Row rank of node `τ`.
    pub fn row_rank(&self, node: usize) -> usize {
        self.row_basis[node].cols()
    }

    /// Column rank of node `τ`.
    pub fn col_rank(&self, node: usize) -> usize {
        self.col_basis[node].cols()
    }

    /// Total heap bytes of the representation.
    pub fn memory_bytes(&self) -> usize {
        let row: usize = self.row_basis.iter().map(|b| b.memory_bytes()).sum();
        let col: usize = self.col_basis.iter().map(|b| b.memory_bytes()).sum();
        let skel: usize = self
            .row_skel
            .iter()
            .chain(self.col_skel.iter())
            .map(|s| s.len() * std::mem::size_of::<usize>())
            .sum();
        row + col + skel + self.coupling.memory_bytes() + self.dense.memory_bytes()
    }

    /// `(min, max)` over all nonzero row/column ranks.
    pub fn rank_range(&self) -> (usize, usize) {
        let ranks: Vec<usize> = (0..self.row_basis.len())
            .flat_map(|i| [self.row_rank(i), self.col_rank(i)])
            .filter(|&r| r > 0)
            .collect();
        match (ranks.iter().min(), ranks.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0, 0),
        }
    }

    /// `y = K x` for a block of vectors, in tree-permuted coordinates.
    ///
    /// The three-pass algorithm with the column basis on the input side:
    /// `x̂_τ = V_τ^T x_τ`, `ŷ_s += B_{s,t} x̂_t`, `y_τ += U_τ ŷ_τ`.
    pub fn apply_permuted(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_impl(x, y, false);
    }

    /// `y = K^T x`: roles of the bases swap and coupling blocks transpose
    /// (`K^T`'s block `(t, s)` is `V_t B_{s,t}^T U_s^T`).
    pub fn apply_transpose_permuted(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_impl(x, y, true);
    }

    fn apply_impl(&self, x: MatRef<'_>, mut y: MatMut<'_>, transpose: bool) {
        let n = self.n();
        let d = x.cols();
        assert_eq!(x.rows(), n, "apply: x rows");
        assert_eq!(y.rows(), n, "apply: y rows");
        assert_eq!(y.cols(), d, "apply: y cols");
        y.fill(0.0);

        // For K:   input side = V, output side = U, blocks as stored.
        // For K^T: input side = U, output side = V, blocks transposed.
        let (in_basis, out_basis) = if transpose {
            (&self.row_basis, &self.col_basis)
        } else {
            (&self.col_basis, &self.row_basis)
        };

        let tree = &self.tree;
        let nnodes = tree.nodes.len();
        let leaf_level = tree.leaf_level();

        // ---- upward pass through the input basis ----
        let mut xhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
        for l in (0..tree.nlevels()).rev() {
            let ids: Vec<usize> = tree.level(l).collect();
            let level_res: Vec<(usize, Mat)> = ids
                .par_iter()
                .filter(|&&id| in_basis[id].cols() > 0)
                .map(|&id| {
                    let v = &in_basis[id];
                    let mut out = Mat::zeros(v.cols(), d);
                    if l == leaf_level {
                        let (b, e) = tree.range(id);
                        gemm(Op::Trans, Op::NoTrans, 1.0, v.rf(), x.view(b, 0, e - b, d), 0.0, out.rm());
                    } else {
                        let (c1, c2) = tree.nodes[id].children.unwrap();
                        let (k1, k2) = (in_basis[c1].cols(), in_basis[c2].cols());
                        let mut stacked = Mat::zeros(k1 + k2, d);
                        if xhat[c1].rows() == k1 && k1 > 0 {
                            stacked.view_mut(0, 0, k1, d).copy_from(xhat[c1].rf());
                        }
                        if xhat[c2].rows() == k2 && k2 > 0 {
                            stacked.view_mut(k1, 0, k2, d).copy_from(xhat[c2].rf());
                        }
                        gemm(Op::Trans, Op::NoTrans, 1.0, v.rf(), stacked.rf(), 0.0, out.rm());
                    }
                    (id, out)
                })
                .collect();
            for (id, m) in level_res {
                xhat[id] = m;
            }
        }

        // ---- coupling products ----
        let yhat_res: Vec<(usize, Mat)> = (0..nnodes)
            .into_par_iter()
            .filter(|&s| !self.partition.far_of[s].is_empty())
            .map(|s| {
                let ks = out_basis[s].cols();
                let mut acc = Mat::zeros(ks, d);
                for &t in &self.partition.far_of[s] {
                    if ks == 0 || in_basis[t].cols() == 0 {
                        continue;
                    }
                    // y = Kx  : ŷ_s += B_{s,t} x̂_t        (block keyed (s,t))
                    // y = Kᵀx : ŷ_s += B_{t,s}^T x̂_t      (block keyed (t,s))
                    let (blk, op) = if transpose {
                        (self.coupling.get(t, s).expect("coupling block"), Op::Trans)
                    } else {
                        (self.coupling.get(s, t).expect("coupling block"), Op::NoTrans)
                    };
                    gemm(op, Op::NoTrans, 1.0, blk.rf(), xhat[t].rf(), 1.0, acc.rm());
                }
                (s, acc)
            })
            .collect();
        let mut yhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
        for (s, m) in yhat_res {
            yhat[s] = m;
        }

        // ---- downward pass through the output basis ----
        for l in 0..tree.nlevels() {
            if l == leaf_level {
                break;
            }
            let ids: Vec<usize> = tree.level(l + 1).collect();
            let contrib: Vec<(usize, Mat)> = ids
                .par_iter()
                .filter_map(|&child| {
                    let parent = tree.nodes[child].parent?;
                    if yhat[parent].rows() == 0 || out_basis[parent].cols() == 0 {
                        return None;
                    }
                    let (c1, _) = tree.nodes[parent].children.unwrap();
                    let kc = out_basis[child].cols();
                    let kp = out_basis[parent].cols();
                    let off = if child == c1 { 0 } else { out_basis[c1].cols() };
                    let e = out_basis[parent].view(off, 0, kc, kp);
                    let mut out = Mat::zeros(kc, d);
                    gemm(Op::NoTrans, Op::NoTrans, 1.0, e, yhat[parent].rf(), 0.0, out.rm());
                    Some((child, out))
                })
                .collect();
            for (child, m) in contrib {
                if yhat[child].rows() == 0 {
                    yhat[child] = m;
                } else {
                    yhat[child].axpy(1.0, &m);
                }
            }
        }

        // ---- expand at leaves + dense near field ----
        let leaf_ids: Vec<usize> = tree.level(leaf_level).collect();
        let leaf_out: Vec<(usize, Mat)> = leaf_ids
            .par_iter()
            .map(|&s| {
                let (b, e) = tree.range(s);
                let m = e - b;
                let mut out = Mat::zeros(m, d);
                if yhat[s].rows() > 0 && out_basis[s].cols() > 0 {
                    gemm(Op::NoTrans, Op::NoTrans, 1.0, out_basis[s].rf(), yhat[s].rf(), 1.0, out.rm());
                }
                for &t in &self.partition.near_of[s] {
                    // y = Kx  : D_{s,t} x_t            (block keyed (s,t))
                    // y = Kᵀx : Kᵀ(I_s,I_t) x_t = D_{t,s}^T x_t (keyed (t,s))
                    let (blk, op) = if transpose {
                        (self.dense.get(t, s).expect("dense block"), Op::Trans)
                    } else {
                        (self.dense.get(s, t).expect("dense block"), Op::NoTrans)
                    };
                    let (tb, te) = tree.range(t);
                    gemm(op, Op::NoTrans, 1.0, blk.rf(), x.view(tb, 0, te - tb, d), 1.0, out.rm());
                }
                (b, out)
            })
            .collect();
        for (b, m) in leaf_out {
            y.rb_mut().into_view(b, 0, m.rows(), d).copy_from(m.rf());
        }
    }

    /// Convenience: allocate and return `K x` (permuted coordinates).
    pub fn apply_permuted_mat(&self, x: &Mat) -> Mat {
        let mut y = Mat::zeros(self.n(), x.cols());
        self.apply_permuted(x.rf(), y.rm());
        y
    }

    /// Convenience: allocate and return `K^T x`.
    pub fn apply_transpose_permuted_mat(&self, x: &Mat) -> Mat {
        let mut y = Mat::zeros(self.n(), x.cols());
        self.apply_transpose_permuted(x.rf(), y.rm());
        y
    }

    /// Extract the sub-block `K(rows, cols)` (global permuted indices).
    pub fn extract_block(&self, rows: &[usize], cols: &[usize]) -> Mat {
        let mut out = Mat::zeros(rows.len(), cols.len());
        let mut rp: Vec<usize> = (0..rows.len()).collect();
        let mut cp: Vec<usize> = (0..cols.len()).collect();
        self.extract_rec(0, 0, rows, cols, &mut out, &mut rp, &mut cp);
        out
    }

    fn extract_rec(
        &self,
        s: usize,
        t: usize,
        rows: &[usize],
        cols: &[usize],
        out: &mut Mat,
        row_pos: &mut [usize],
        col_pos: &mut [usize],
    ) {
        if rows.is_empty() || cols.is_empty() {
            return;
        }
        let tree = &self.tree;
        if self.partition.far_of[s].binary_search(&t).is_ok() {
            let blk = self.coupling.get(s, t).expect("coupling block");
            let us = accumulated_basis_rows(tree, &self.row_basis, s, rows);
            let vt = accumulated_basis_rows(tree, &self.col_basis, t, cols);
            // value = U_s(rows) B_{s,t} V_t(cols)^T
            let tmp = matmul(Op::NoTrans, Op::Trans, blk.rf(), vt.rf());
            let val = matmul(Op::NoTrans, Op::NoTrans, us.rf(), tmp.rf());
            for (r, &rp) in row_pos.iter().enumerate() {
                for (c, &cp) in col_pos.iter().enumerate() {
                    out[(rp, cp)] = val[(r, c)];
                }
            }
            return;
        }
        if tree.level_of(s) == tree.leaf_level() {
            debug_assert!(self.partition.near_of[s].binary_search(&t).is_ok());
            let blk = self.dense.get(s, t).expect("dense block");
            let (sb, _) = tree.range(s);
            let (tb, _) = tree.range(t);
            for (r, &rp) in row_pos.iter().enumerate() {
                for (c, &cp) in col_pos.iter().enumerate() {
                    out[(rp, cp)] = blk[(rows[r] - sb, cols[c] - tb)];
                }
            }
            return;
        }
        let (s1, s2) = tree.nodes[s].children.unwrap();
        let (t1, t2) = tree.nodes[t].children.unwrap();
        let rsplit = tree.nodes[s1].end;
        let csplit = tree.nodes[t1].end;
        let (rl, rl_pos, rr, rr_pos) = split_indexed(rows, row_pos, rsplit);
        let (cl, cl_pos, cr, cr_pos) = split_indexed(cols, col_pos, csplit);
        for (sc, rws, rps) in [(s1, &rl, &rl_pos), (s2, &rr, &rr_pos)] {
            for (tc, cls, cps) in [(t1, &cl, &cl_pos), (t2, &cr, &cr_pos)] {
                self.extract_rec(sc, tc, rws, cls, out, &mut rps.clone(), &mut cps.clone());
            }
        }
    }

    /// Materialize the full dense matrix (tests / tiny problems only).
    pub fn to_dense(&self) -> Mat {
        let all: Vec<usize> = (0..self.n()).collect();
        self.extract_block(&all, &all)
    }

    /// Structural sanity checks mirroring [`crate::H2Matrix::validate`],
    /// applied to both basis trees and the ordered coupling store.
    pub fn validate(&self) -> Result<(), String> {
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        for (name, basis, skel) in [
            ("row", &self.row_basis, &self.row_skel),
            ("col", &self.col_basis, &self.col_skel),
        ] {
            for (id, c) in tree.nodes.iter().enumerate() {
                let k = basis[id].cols();
                if k == 0 {
                    continue;
                }
                let b = &basis[id];
                if tree.level_of(id) == leaf_level {
                    if b.rows() != c.len() {
                        return Err(format!(
                            "{name} leaf {id}: basis rows {} != cluster size {}",
                            b.rows(),
                            c.len()
                        ));
                    }
                } else {
                    let (c1, c2) = c.children.unwrap();
                    let want = basis[c1].cols() + basis[c2].cols();
                    if b.rows() != want {
                        return Err(format!(
                            "{name} inner {id}: transfer rows {} != child ranks {want}",
                            b.rows()
                        ));
                    }
                }
                if skel[id].len() != k {
                    return Err(format!("{name} node {id}: skeleton len != rank"));
                }
                for &i in &skel[id] {
                    if i < c.begin || i >= c.end {
                        return Err(format!("{name} node {id}: skeleton index {i} outside cluster"));
                    }
                }
            }
        }
        // Every ordered admissible pair has a coupling block of matching shape.
        for (s, list) in self.partition.far_of.iter().enumerate() {
            for &t in list {
                match self.coupling.get(s, t) {
                    None => return Err(format!("missing coupling block ({s},{t})")),
                    Some(b) => {
                        if b.rows() != self.row_rank(s) || b.cols() != self.col_rank(t) {
                            return Err(format!(
                                "coupling ({s},{t}) shape {}x{} != row/col ranks {}x{}",
                                b.rows(),
                                b.cols(),
                                self.row_rank(s),
                                self.col_rank(t)
                            ));
                        }
                    }
                }
            }
        }
        for (s, list) in self.partition.near_of.iter().enumerate() {
            for &t in list {
                match self.dense.get(s, t) {
                    None => return Err(format!("missing dense block ({s},{t})")),
                    Some(b) => {
                        if b.rows() != tree.nodes[s].len() || b.cols() != tree.nodes[t].len() {
                            return Err(format!("dense ({s},{t}) shape mismatch"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Split `(idx, pos)` pairs by `idx < split`.
fn split_indexed(
    idx: &[usize],
    pos: &[usize],
    split: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut l = Vec::new();
    let mut lp = Vec::new();
    let mut r = Vec::new();
    let mut rp = Vec::new();
    for (i, &v) in idx.iter().enumerate() {
        if v < split {
            l.push(v);
            lp.push(pos[i]);
        } else {
            r.push(v);
            rp.push(pos[i]);
        }
    }
    (l, lp, r, rp)
}

impl LinOp for H2MatrixUnsym {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_permuted(x, y);
    }

    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_transpose_permuted(x, y);
    }
}

impl EntryAccess for H2MatrixUnsym {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.extract_block(&[i], &[j])[(0, 0)]
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        let b = self.extract_block(rows, cols);
        out.copy_from(b.rf());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_store_roundtrip() {
        let mut s = OrderedBlockStore::new();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        s.insert(5, 2, Mat::from_rows(&[&[3.0], &[4.0]]));
        assert_eq!(s.get(2, 5).unwrap()[(0, 1)], 2.0);
        assert_eq!(s.get(5, 2).unwrap()[(1, 0)], 4.0);
        assert!(s.get(2, 2).is_none());
        assert_eq!(s.len(), 2);
        assert_eq!(s.memory_bytes(), 4 * 8);
    }

    #[test]
    #[should_panic(expected = "duplicate ordered block")]
    fn ordered_store_rejects_duplicates() {
        let mut s = OrderedBlockStore::new();
        s.insert(1, 2, Mat::zeros(1, 1));
        s.insert(1, 2, Mat::zeros(1, 1));
    }
}
