//! Fig. 7: breakdown of construction time by phase, CPU vs GPU-sim, for
//! varying problem sizes of the 3-D covariance matrix.
//!
//! Phases match the paper's categories: sampling (`Kblk`), BSR product,
//! entry generation, convergence test (batched QR), ID, upsweep, random
//! generation, and miscellaneous (marshaling + workspace allocation).
//!
//! Usage: `--sizes 8192,16384,32768 [--leaf 64] [--tol 1e-6]`

use h2_bench::{build_problem, header, reference_h2, row, App, Args};
use h2_core::{sketch_construct, SketchConfig};
use h2_runtime::{Backend, Runtime};

fn main() {
    let args = Args::parse();
    let sizes = args.sizes("sizes", &[4096, 8192, 16384]);
    let leaf: usize = args.get("leaf", 64);
    let tol: f64 = args.get("tol", 1e-6);

    println!("# Fig. 7: construction-time phase breakdown (covariance, leaf={leaf}, tol={tol})\n");

    for (backend, label) in [(Backend::Sequential, "CPU"), (Backend::Parallel, "GPU-sim")] {
        println!("## {label}\n");
        header(&[
            "N",
            "sampling %",
            "bsr_gemm %",
            "entry_gen %",
            "conv_test %",
            "id %",
            "upsweep %",
            "rand %",
            "misc %",
            "total (s)",
        ]);
        for &n in &sizes {
            let problem = build_problem(App::Covariance, n, leaf, 0.7, 0xF7);
            let reference = reference_h2(&problem, tol * 1e-2);
            let rt = Runtime::new(backend);
            let cfg = SketchConfig {
                tol,
                initial_samples: 128,
                ..Default::default()
            };
            let (_, stats) = sketch_construct(
                &reference,
                &problem.kernel,
                problem.tree.clone(),
                problem.partition.clone(),
                &rt,
                &cfg,
            );
            let total = stats.phase_total();
            let pct = |name: &str| {
                let s: f64 = stats
                    .phase_seconds
                    .iter()
                    .filter(|(p, _)| *p == name)
                    .map(|(_, s)| *s)
                    .sum();
                format!("{:.1}", 100.0 * s / total.max(1e-12))
            };
            row(&[
                n.to_string(),
                pct("sampling"),
                pct("bsr_gemm"),
                pct("entry_gen"),
                pct("convergence_test"),
                pct("id"),
                pct("upsweep"),
                pct("rand"),
                pct("misc"),
                format!("{total:.3}"),
            ]);
        }
        println!();
    }
    println!("(Paper observation to compare: BSR product + sampling dominate on both backends;\n entry generation 10-20%; ID 5-10%; convergence test relatively larger on the batched backend at small N.)");
}
