//! # h2-sched
//!
//! A real device-sharded executor for the batched H2 construction and
//! matvec — the multi-GPU decomposition of the paper's §IV.B, *executed*
//! rather than only simulated.
//!
//! The repo previously modeled multi-device execution with the closed-form
//! cost simulator in [`h2_runtime::multidev`]. This crate adds the other
//! half: a [`DeviceFabric`] of N virtual devices that actually runs the
//! construction level loop and the three-pass matvec sharded, measures
//! per-device timing, and records every cross-device byte on an explicit
//! transfer queue — so the simulator's predictions can be validated against
//! a real execution of the same schedule.
//!
//! ## Paper mapping
//!
//! | component | paper |
//! |---|---|
//! | [`DeviceFabric`] — N worker threads, one per virtual device, each with a memory arena and a work/traffic account | §IV.B "the batches of each level are divided among the GPUs" |
//! | contiguous node chunks per level ([`h2_runtime::chunk_bounds`] / [`h2_runtime::owner`]) | §IV.A level-contiguous storage: chunking keeps siblings on one device except at boundaries |
//! | [`TransferKind::OmegaFetch`] queue entries | §IV.B: `batchedBSRGemm` is the only batched op that must fetch off-device inputs `Ω_b` |
//! | [`TransferKind::ChildGather`] queue entries | §IV.B: line-24 child stacking when a sibling pair straddles devices |
//! | per-device arena, reset per epoch | §IV.A: one workspace allocation per level from a parallel prefix sum |
//! | epochs (one per level / matvec phase) | Algorithm 1's sequential level loop |
//!
//! ## Entry points
//!
//! * [`shard_construct`] / [`shard_construct_unsym`] — Algorithm 1 on the
//!   fabric, via the stream-generic engine of `h2_core::construct`: the
//!   symmetric one-stream and unsymmetric two-stream instances shard
//!   through the same `Runtime::sharded` backend.
//! * [`shard_matvec`] — the upsweep/coupling/downsweep/leaf phases of
//!   `h2_matrix`'s matvec with per-device partial sums, built on the same
//!   [`h2_matrix::ApplyPhases`] kernels as the in-process path (identical
//!   numerics, different scheduling).
//! * [`shard_ulv_solve`] — the ULV forward/backward triangular sweeps on
//!   the fabric (upsweep-ordered eliminate, downsweep-ordered substitute)
//!   over the same `h2_solve::UlvSweep` node kernels, with byte totals
//!   validated against [`h2_runtime::simulate_solve`] by
//!   [`compare_solve_with_simulator`]; [`FabricOp`] and
//!   [`UlvFabricPrecond`] plug the sharded matvec and sweep into the
//!   Krylov methods as a `LinOp`/`Preconditioner` pair.
//! * [`compare_with_simulator`] — cross-validation: on a non-adaptive pass
//!   the executor performs exactly the kernel populations of
//!   [`h2_core::level_specs`], so its flop and byte totals must equal the
//!   [`h2_runtime::simulate`] prediction (the equivalence tests assert
//!   equality for work/traffic and a 3x band for the makespan, where the
//!   two sides' launch/round-robin details legitimately differ).
//!
//! Results are bitwise-deterministic: every batched kernel computes
//! identical per-entry arithmetic regardless of the device count, so a
//! 7-device construction equals the single-device one exactly — the
//! property the equivalence tests in `tests/equivalence.rs` pin down.
//!
//! ## Pipelined execution
//!
//! [`DeviceFabric::pipelined`] switches the fabric from fork-join-per-batch
//! to an overlapped schedule built from three pieces:
//!
//! 1. **Ordered per-device queues with job tickets** — [`DeviceFabric::enqueue`]
//!    submits a job without blocking and [`DeviceFabric::flush`] is the only
//!    barrier. Every queued job also gets a **completion ticket** on the
//!    same board the transfer stage uses, so later jobs can be gated on
//!    *jobs*, not only on copies. `batchedBSRGemm` chains all `Csp` slot
//!    launches per device in one queued job (per-row accumulation order
//!    unchanged ⇒ bit-identical results, `Csp − 1` global joins removed),
//!    and the matvec's coupling phase runs every level in one flush scope,
//!    so a device finishing a narrow level immediately starts the next
//!    instead of idling at a per-level join.
//! 2. **Chain scopes** — [`DeviceFabric::chain_begin`] /
//!    [`DeviceFabric::chain_end`] turn a *sequence of kernels* into one
//!    flush scope: inside the scope each kernel's closing `flush` records a
//!    per-device dependency boundary instead of blocking, and the next
//!    kernel's jobs wait on the previous kernel's completion tickets from
//!    *other* devices (same-device ordering is the FIFO queue). The
//!    construction level's `bsr_gemm → stack_children` and
//!    `shrink_rows → gemm_at_x` sequences and the matvec's whole
//!    upsweep→coupling handoff run as such chains — one real barrier per
//!    scope. Everything a chained job borrows must outlive `chain_end`, and
//!    host code inside a scope may plan from shapes but never read
//!    job-written data.
//! 3. **Asynchronous prefetch stage** — transfers are issued as
//!    descriptors on a virtual copy engine ([`DeviceFabric::prefetch_transfer`])
//!    and compute jobs are gated on completion tickets; the construction
//!    level loop *hints* the next level's `Ω_b`/`Ψ_b` fetches as soon as
//!    the current level's IDs fix the block sizes, so the copies run behind
//!    `batchedGen`/upsweep compute. Synchronous mode services the same
//!    descriptors inline (exposed).
//! 4. **Double-buffered arenas** — prefetch-stage charges land in a standby
//!    bank that rotates in at the epoch boundary, modeling level *l+1*'s
//!    workspace being marshaled while level *l*'s is still live.
//!
//! Accounting is **issue-epoch tagged** (transfers and flops are charged to
//! the epoch that issued them, under a single lock), per-device stats grow
//! busy/stall/overlapped/idle durations, and
//! [`ExecReport::modeled_makespan`] projects the measured counters with
//! communication *and launch overhead* overlapped against compute for
//! pipelined runs ([`h2_runtime::combine_terms`]: job-level dependency
//! chaining hides launch gaps behind whichever of compute or communication
//! dominates) — which is what tightens the simulator band from 3x to 2x.
//! The pipeline tests in `tests/pipeline.rs` assert bit-identical outputs
//! against the synchronous schedule in both symmetry regimes, including
//! under an injected transfer-delay hook that randomizes prefetch
//! completion order.
//!
//! ## Resident Krylov vectors
//!
//! [`FabricOp`] / [`UlvFabricPrecond`] carry a [`Residency`]: `Staged`
//! (default) models the historical dataflow — the iteration vectors live in
//! the host `KrylovWorkspace` and every apply round-trips their per-device
//! chunks as [`TransferKind::VectorStage`] traffic — while `Resident` pins
//! the `x`/`r`/basis shards in the device arenas across iterations, so an
//! apply moves only the boundary gathers already internal to the sharded
//! kernels plus one `8·(D−1)`-byte scalar allreduce per global reduction
//! ([`resident_reduce_hook`]). The blocked reductions
//! (`h2_solve::blocked_dot`) fix the summation tree independently of the
//! sharding, which is what keeps the two residencies bit-identical —
//! `tests/krylov_residency.rs` pins both the bit-identity and the exact
//! closed-form byte totals ([`staged_apply_bytes`] /
//! [`resident_reduce_bytes`]).
//!
//! ## Resilience
//!
//! The fabric carries a deterministic fault-injection and bounded-recovery
//! layer (crate [`h2_fault`]), designed so that chaos runs stay inside the
//! trust invariant rather than suspending it:
//!
//! * **Deterministic injection** — [`DeviceFabric::set_fault_plan`]
//!   installs a [`FaultPlan`]: every fault decision (transfer drop,
//!   checksum-detectable payload corruption, copy-engine delay spike,
//!   device fail-stop at an epoch, NaN poison in kernel output) is a pure
//!   function of the plan's `u64` seed, the fault site's fingerprint and
//!   its occurrence index — the same plan replays the identical fault
//!   sequence, run after run.
//! * **Bounded, charged retries** — a dropped attempt surfaces at the
//!   plan's detection timeout, a corrupted one at the landing checksum;
//!   each failed attempt is retried after exponential backoff, with its
//!   re-transfer bytes recorded on the same queue the accounts and
//!   simulator comparison read. [`compare_with_simulator_faulted`]
//!   extends the byte-equality invariant: measured bytes (retries
//!   included) must equal the census prediction of
//!   [`predicted_fault_traffic`] *exactly*, in both fabric modes.
//! * **Typed failures instead of hangs** —
//!   [`DeviceFabric::set_ticket_deadline`] turns a dependency that never
//!   completes into a [`FabricError::TransferTimeout`] raised at the next
//!   barrier; worker job panics are captured, propagate at the barrier,
//!   and leave the fabric reusable (all fabric locks are poison-tolerant).
//! * **Device-loss recovery** — a scheduled fail-stop moves the lost
//!   device's queue routing to the lowest surviving device at the epoch
//!   boundary and bumps [`DeviceFabric::reshard_version`]; ownership and
//!   accounting stay logical, so byte totals are unchanged while the
//!   physical workers shrink. The construction level loop checkpoints per
//!   level and replays only the in-flight level on a version change.
//! * **Poison recovery** — the sketching kernels finite-check their
//!   outputs at the poison sites and deterministically recompute exactly
//!   the poisoned columns, reporting each repair through
//!   [`DeviceFabric::note_recovery`].
//!
//! Under every seeded plan of the chaos grid in `tests/faults.rs`, the
//! constructed `H2Matrix` is **bit-identical** to the fault-free run and
//! the measured bytes equal the extended simulator — faults change the
//! schedule and the traffic, never the numerics.

pub mod exec;
pub mod fabric;
pub mod matvec;
pub mod solve;
pub mod trace;

pub use exec::{
    compare_with_simulator, compare_with_simulator_faulted, predicted_fault_traffic,
    shard_construct, shard_construct_unsym, sharded_runtime, FaultComparison, SimComparison,
};
pub use fabric::{
    DeviceEpochStats, DeviceFabric, Epoch, ExecReport, FaultCounters, LinkModel, TransferDelay,
};
pub use h2_fault::{FabricError, FailStop, FaultKind, FaultPlan, OccurrenceMap};
pub use h2_obs::{ChromeTrace, DriftTable, Registry, Tracer};
pub use h2_runtime::{PipelineMode, Precision, Transfer, TransferKind};
pub use matvec::{
    compare_matvec_with_simulator, shard_matvec, shard_matvec_with_report, simulate_matvec,
    MatvecSim, MatvecSimEpoch,
};
pub use solve::{
    compare_solve_with_simulator, resident_reduce_bytes, resident_reduce_hook, shard_ulv_solve,
    shard_ulv_solve_with_report, staged_apply_bytes, FabricOp, Residency, UlvFabricPrecond,
};
pub use trace::{
    drift_construct, drift_matvec, drift_solve, export_chrome_trace, export_chrome_trace_with_spans,
};
