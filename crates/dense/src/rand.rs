//! Deterministic Gaussian random matrices.
//!
//! The sketching algorithm needs standard-normal random blocks Ω. We generate
//! them with a Box–Muller transform over a seeded `SmallRng` so that every
//! experiment is reproducible, and so that the batched generator in
//! `h2-runtime` can hand each batch entry an independent, seed-derived stream
//! (the parallel-safe equivalent of the paper's single `batchedRand` kernel).

use crate::mat::{Mat, MatMut};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draw one standard-normal sample via Box–Muller.
#[inline]
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Box–Muller: u1 in (0,1], u2 in [0,1).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a view with i.i.d. N(0,1) entries.
pub fn fill_gaussian(m: &mut MatMut<'_>, rng: &mut SmallRng) {
    for j in 0..m.cols() {
        for v in m.col_mut(j) {
            *v = standard_normal(rng);
        }
    }
}

/// Allocate a `rows x cols` matrix of i.i.d. N(0,1) entries from `seed`.
pub fn gaussian_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = Mat::zeros(rows, cols);
    fill_gaussian(&mut m.rm(), &mut rng);
    m
}

/// Fill a slice with i.i.d. N(0,1) entries.
pub fn fill_gaussian_slice(s: &mut [f64], rng: &mut SmallRng) {
    for v in s {
        *v = standard_normal(rng);
    }
}

/// A rank-`k` random matrix `U diag(s) V^T` with geometrically decaying
/// singular values `s_i = decay^i` — the standard synthetic low-rank test
/// input.
pub fn random_low_rank(rows: usize, cols: usize, k: usize, decay: f64, seed: u64) -> Mat {
    use crate::gemm::{matmul, Op};
    use crate::qr::orthonormalize;
    let u = orthonormalize(gaussian_mat(rows, k, seed));
    let v = orthonormalize(gaussian_mat(cols, k, seed.wrapping_add(1)));
    let mut us = u;
    for j in 0..k {
        let s = decay.powi(j as i32);
        for x in us.col_mut(j) {
            *x *= s;
        }
    }
    matmul(Op::NoTrans, Op::Trans, us.rf(), v.rf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let m = gaussian_mat(200, 200, 42);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(gaussian_mat(5, 5, 7), gaussian_mat(5, 5, 7));
        assert_ne!(gaussian_mat(5, 5, 7), gaussian_mat(5, 5, 8));
    }

    #[test]
    fn low_rank_has_requested_rank() {
        let a = random_low_rank(30, 20, 5, 0.5, 3);
        // Columns 6.. of a CPQR should be numerically negligible.
        let (_, _, r_diag) = crate::cpqr::cpqr_factor(a.clone());
        assert!(r_diag[5].abs() < 1e-10 * r_diag[0].abs());
        assert!(r_diag[4].abs() > 1e-6 * r_diag[0].abs());
    }
}
