//! Unsymmetric Algorithm 1: bottom-up sketching with two sample streams.
//!
//! The paper constructs symmetric H2 matrices (`V = U`) and notes the
//! extension to unsymmetric matrices is straightforward (§II.A, §III). The
//! extension doubles the sketching state:
//!
//! * a *row* stream `Y = K Ω` whose per-node local samples span the block
//!   **row** of the remaining admissible matrix — its row ID yields the row
//!   basis `U_τ` and row skeleton `Ĩ^r_τ`;
//! * a *column* stream `Z = Kᵀ Ψ` spanning the block **column** — its row
//!   ID yields the column basis `V_τ` and column skeleton `Ĩ^c_τ`.
//!
//! The input compressions swap sides: the `Ω` vectors are compressed by the
//! **column** basis (`Ω^{l+1}_τ = V_τ^T Ω^l_τ`, because the admissible block
//! acts as `U_s B_{s,t} V_t^T`), and symmetrically `Ψ^{l+1}_τ = U_τ^T Ψ^l_τ`.
//! Coupling blocks are evaluated at mixed skeletons,
//! `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)`, for every *ordered* admissible pair.
//!
//! All batched kernels, the adaptive convergence test and the
//! `updateSamples` upsweep are shared with the symmetric path; each exists
//! here once per stream.

use crate::config::{SketchConfig, SketchStats};
use h2_dense::cpqr::Truncation;
use h2_dense::{estimate_norm_2, EntryAccess, LinOp, Mat};
use h2_matrix::H2MatrixUnsym;
use h2_runtime::{
    batched_gen, batched_row_id, bsr_gemm, gather_rows, gemm_at_x, hcat_batches, qr_min_rdiag,
    rand_mat, shrink_rows, stack_children, BsrBlock, BsrPattern, GenBlock, Phase, Runtime,
    VarBatch,
};
use h2_tree::{ClusterTree, Partition};
use std::sync::Arc;
use std::time::Instant;

/// Which block store a BSR position reads from.
#[derive(Clone, Copy)]
enum BlockSource {
    Dense,
    Coupling,
}

/// Which sketch stream a subtraction serves. The row stream multiplies
/// blocks as stored; the column stream multiplies their transposes
/// (`Kᵀ(I_s, I_t) = K(I_t, I_s)ᵀ`).
#[derive(Clone, Copy)]
enum Side {
    Row,
    Col,
}

/// Frozen per-level data used to sweep later sample batches up the tree.
struct LevelRecord {
    pattern: BsrPattern,
    pairs: Vec<(usize, usize)>,
    source: BlockSource,
    children_local: Vec<Vec<usize>>,
    node_ids: Vec<usize>,
    row_skels_local: Vec<Vec<usize>>,
    col_skels_local: Vec<Vec<usize>>,
}

/// Construct an unsymmetric H2 matrix by adaptive sketching.
///
/// `sampler` must implement both `apply` and `apply_transpose`; `gen`
/// evaluates entries of the (possibly unsymmetric) matrix. Both view the
/// matrix in tree-permuted coordinates.
///
/// `SketchStats::total_samples` counts the columns of **each** stream; the
/// construction draws that many `Ω` and that many `Ψ` vectors.
pub fn sketch_construct_unsym(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    rt: &Runtime,
    cfg: &SketchConfig,
) -> (H2MatrixUnsym, SketchStats) {
    let t0 = Instant::now();
    let n = tree.npoints();
    assert_eq!(sampler.nrows(), n, "sampler size mismatch");
    assert_eq!(sampler.ncols(), n, "only square matrices are supported");
    let mut h2 = H2MatrixUnsym::new_shell(tree.clone(), partition.clone());
    let mut stats = SketchStats::default();
    let leaf_level = tree.leaf_level();

    // ---- dense near-field blocks (batchedGen) ----
    // Every *ordered* near pair: K(I_s, I_t) and K(I_t, I_s) are disjoint
    // entry sets of an unsymmetric matrix.
    rt.phase(Phase::EntryGen, || {
        let mut specs = Vec::new();
        let mut keys = Vec::new();
        for s in tree.level(leaf_level) {
            for &t in &partition.near_of[s] {
                let (sb, se) = tree.range(s);
                let (tb, te) = tree.range(t);
                specs.push(GenBlock { rows: (sb..se).collect(), cols: (tb..te).collect() });
                keys.push((s, t));
            }
        }
        let blocks = batched_gen(rt, gen, &specs);
        for ((s, t), b) in keys.into_iter().zip(blocks) {
            h2.dense.insert(s, t, b);
        }
    });

    let Some(top) = partition.top_far_level(&tree) else {
        stats.elapsed = t0.elapsed();
        stats.capture_profile(rt.profile());
        return (h2, stats);
    };

    // ---- norm estimate (power iteration on KᵀK handles unsymmetry) ----
    let norm_est = rt.phase(Phase::Misc, || {
        estimate_norm_2(sampler, cfg.norm_est_iters, cfg.seed ^ 0x5A5A_5A5A)
    });
    stats.norm_estimate = norm_est;
    let eps_abs = cfg.safety * cfg.tol * norm_est.max(f64::MIN_POSITIVE);

    // ---- initial sampling of both streams ----
    let d0 = cfg.initial_samples.min(cfg.max_samples).max(1);
    let omega0 = rt.phase(Phase::Rand, || rand_mat(rt, n, d0, cfg.seed));
    let psi0 = rt.phase(Phase::Rand, || rand_mat(rt, n, d0, cfg.seed ^ 0xA5A5_5A5A));
    let y0 = rt.phase(Phase::Sampling, || sampler.apply_mat(&omega0));
    let z0 = rt.phase(Phase::Sampling, || {
        let mut z = Mat::zeros(n, d0);
        sampler.apply_transpose(psi0.rf(), z.rm());
        z
    });
    stats.total_samples = d0;

    let leaf_ranges: Vec<(usize, usize)> =
        tree.level(leaf_level).map(|id| tree.range(id)).collect();
    let mut cur_omega = rt.phase(Phase::Misc, || gather_rows(rt, &omega0, &leaf_ranges));
    let mut cur_y = rt.phase(Phase::Misc, || gather_rows(rt, &y0, &leaf_ranges));
    let mut cur_psi = rt.phase(Phase::Misc, || gather_rows(rt, &psi0, &leaf_ranges));
    let mut cur_z = rt.phase(Phase::Misc, || gather_rows(rt, &z0, &leaf_ranges));
    drop((omega0, psi0, y0, z0));

    let mut records: Vec<LevelRecord> = Vec::new();
    let mut round_seed = cfg.seed.wrapping_add(0x1234_5678);

    for l in (top..=leaf_level).rev() {
        let node_ids: Vec<usize> = tree.level(l).collect();
        let is_leaf = l == leaf_level;

        let (pattern, pairs, source, children_local) = if is_leaf {
            let adj: Vec<Vec<usize>> = node_ids
                .iter()
                .map(|&s| partition.near_of[s].iter().map(|&t| tree.local_index(t)).collect())
                .collect();
            let mut pairs = Vec::new();
            for &s in &node_ids {
                for &t in &partition.near_of[s] {
                    pairs.push((s, t));
                }
            }
            (BsrPattern::from_rows(&adj), pairs, BlockSource::Dense, Vec::new())
        } else {
            let child_ids: Vec<usize> = tree.level(l + 1).collect();
            let adj: Vec<Vec<usize>> = child_ids
                .iter()
                .map(|&s| partition.far_of[s].iter().map(|&t| tree.local_index(t)).collect())
                .collect();
            let mut pairs = Vec::new();
            for &s in &child_ids {
                for &t in &partition.far_of[s] {
                    pairs.push((s, t));
                }
            }
            let children_local: Vec<Vec<usize>> = node_ids
                .iter()
                .map(|&p| {
                    let (c1, c2) = tree.nodes[p].children.unwrap();
                    vec![tree.local_index(c1), tree.local_index(c2)]
                })
                .collect();
            (BsrPattern::from_rows(&adj), pairs, BlockSource::Coupling, children_local)
        };

        // Subtract known contributions, stack to this level's nodes.
        let (mut yloc, mut omega_l) = advance_level(
            rt, &h2, &pattern, &pairs, source, Side::Row, &children_local, cur_y, cur_omega,
        );
        let (mut zloc, mut psi_l) = advance_level(
            rt, &h2, &pattern, &pairs, source, Side::Col, &children_local, cur_z, cur_psi,
        );

        // ---- adaptive sampling: both streams must converge ----
        let mut level_rounds = 0usize;
        loop {
            let d_cur = if yloc.count() > 0 { yloc.cols_of(0) } else { 0 };
            if !cfg.adaptive || d_cur == 0 {
                break;
            }
            let mins_y = rt.phase(Phase::ConvergenceTest, || qr_min_rdiag(rt, &yloc));
            let mins_z = rt.phase(Phase::ConvergenceTest, || qr_min_rdiag(rt, &zloc));
            let eps_conv = eps_abs * (d_cur as f64).sqrt();
            let unconverged = (0..yloc.count()).any(|i| {
                (d_cur < yloc.rows_of(i) && mins_y[i] > eps_conv)
                    || (d_cur < zloc.rows_of(i) && mins_z[i] > eps_conv)
            });
            if !unconverged || stats.total_samples + cfg.sample_block > cfg.max_samples {
                break;
            }
            round_seed = round_seed.wrapping_add(0x9E37_79B9);
            let (ny, nom) = sweep_new_samples(
                rt, sampler, &h2, &tree, &records, &leaf_ranges, &pattern, &pairs, source,
                Side::Row, &children_local, cfg.sample_block, round_seed,
            );
            let (nz, nps) = sweep_new_samples(
                rt, sampler, &h2, &tree, &records, &leaf_ranges, &pattern, &pairs, source,
                Side::Col, &children_local, cfg.sample_block,
                round_seed ^ 0xA5A5_5A5A,
            );
            yloc = rt.phase(Phase::Misc, || hcat_batches(rt, &yloc, &ny));
            omega_l = rt.phase(Phase::Misc, || hcat_batches(rt, &omega_l, &nom));
            zloc = rt.phase(Phase::Misc, || hcat_batches(rt, &zloc, &nz));
            psi_l = rt.phase(Phase::Misc, || hcat_batches(rt, &psi_l, &nps));
            stats.total_samples += cfg.sample_block;
            stats.rounds += 1;
            level_rounds += 1;
        }
        stats.rounds_per_level.push(level_rounds);

        // ---- batched row IDs: row stream -> U, column stream -> V ----
        let height = leaf_level - l;
        let eps_id = eps_abs * cfg.schedule.scale(height)
            * (yloc.cols_of(0).max(1) as f64).sqrt();
        let mut id_row = rt.phase(Phase::Id, || {
            batched_row_id(rt, &yloc, Truncation::Absolute(eps_id))
        });
        let mut id_col = rt.phase(Phase::Id, || {
            batched_row_id(rt, &zloc, Truncation::Absolute(eps_id))
        });
        for (i, r) in id_row.iter_mut().enumerate() {
            if r.rank() > cfg.max_rank {
                *r = h2_dense::cpqr::row_id(&yloc.to_mat(i), Truncation::Rank(cfg.max_rank));
            }
        }
        for (i, r) in id_col.iter_mut().enumerate() {
            if r.rank() > cfg.max_rank {
                *r = h2_dense::cpqr::row_id(&zloc.to_mat(i), Truncation::Rank(cfg.max_rank));
            }
        }

        // Store bases and global skeleton indices for both trees.
        let mut row_skels_local: Vec<Vec<usize>> = Vec::with_capacity(node_ids.len());
        let mut col_skels_local: Vec<Vec<usize>> = Vec::with_capacity(node_ids.len());
        for (local, &id) in node_ids.iter().enumerate() {
            let stacked_rows: Vec<usize> = if is_leaf {
                let (b, e) = tree.range(id);
                (b..e).collect()
            } else {
                let (c1, c2) = tree.nodes[id].children.unwrap();
                h2.row_skel[c1].iter().chain(h2.row_skel[c2].iter()).copied().collect()
            };
            let stacked_cols: Vec<usize> = if is_leaf {
                let (b, e) = tree.range(id);
                (b..e).collect()
            } else {
                let (c1, c2) = tree.nodes[id].children.unwrap();
                h2.col_skel[c1].iter().chain(h2.col_skel[c2].iter()).copied().collect()
            };
            let rr = &id_row[local];
            let rc = &id_col[local];
            h2.row_skel[id] = rr.skel.iter().map(|&p| stacked_rows[p]).collect();
            h2.col_skel[id] = rc.skel.iter().map(|&p| stacked_cols[p]).collect();
            h2.row_basis[id] = rr.u.clone();
            h2.col_basis[id] = rc.u.clone();
            row_skels_local.push(rr.skel.clone());
            col_skels_local.push(rc.skel.clone());
        }

        // ---- coupling blocks: every ordered admissible pair ----
        rt.phase(Phase::EntryGen, || {
            let mut specs = Vec::new();
            let mut keys = Vec::new();
            for &s in &node_ids {
                for &t in &partition.far_of[s] {
                    specs.push(GenBlock {
                        rows: h2.row_skel[s].clone(),
                        cols: h2.col_skel[t].clone(),
                    });
                    keys.push((s, t));
                }
            }
            let blocks = batched_gen(rt, gen, &specs);
            for ((s, t), b) in keys.into_iter().zip(blocks) {
                h2.coupling.insert(s, t, b);
            }
        });

        // ---- upsweep: Ω through V, Ψ through U ----
        if l > top {
            let row_refs: Vec<&[usize]> = row_skels_local.iter().map(|v| v.as_slice()).collect();
            let col_refs: Vec<&[usize]> = col_skels_local.iter().map(|v| v.as_slice()).collect();
            let u_bases: Vec<Mat> = node_ids.iter().map(|&id| h2.row_basis[id].clone()).collect();
            let v_bases: Vec<Mat> = node_ids.iter().map(|&id| h2.col_basis[id].clone()).collect();
            cur_y = rt.phase(Phase::Upsweep, || shrink_rows(rt, &yloc, &row_refs));
            cur_omega = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &v_bases, &omega_l));
            cur_z = rt.phase(Phase::Upsweep, || shrink_rows(rt, &zloc, &col_refs));
            cur_psi = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &u_bases, &psi_l));
        } else {
            cur_y = VarBatch::zeros_uniform_cols(Vec::new(), 0);
            cur_omega = VarBatch::zeros_uniform_cols(Vec::new(), 0);
            cur_z = VarBatch::zeros_uniform_cols(Vec::new(), 0);
            cur_psi = VarBatch::zeros_uniform_cols(Vec::new(), 0);
        }

        records.push(LevelRecord {
            pattern,
            pairs,
            source,
            children_local,
            node_ids,
            row_skels_local,
            col_skels_local,
        });

        if l == top {
            break;
        }
    }

    stats.elapsed = t0.elapsed();
    stats.capture_profile(rt.profile());
    (h2, stats)
}

/// Resolve the BSR block references of a level against the unsymmetric
/// block stores.
///
/// The row stream multiplies blocks of `K`: ordered `(s, t)` lookups, no
/// transpose. The column stream multiplies blocks of `Kᵀ`:
/// `Kᵀ(I_s, I_t) = K(I_t, I_s)ᵀ`, i.e. the ordered `(t, s)` block
/// transposed — and likewise `B_{t,s}ᵀ` for coupling.
fn resolve_blocks<'a>(
    h2: &'a H2MatrixUnsym,
    pairs: &[(usize, usize)],
    source: BlockSource,
    side: Side,
) -> Vec<BsrBlock<'a>> {
    pairs
        .iter()
        .map(|&(s, t)| {
            let (key_s, key_t, transposed) = match side {
                Side::Row => (s, t, false),
                Side::Col => (t, s, true),
            };
            let mat = match source {
                BlockSource::Dense => h2.dense.get(key_s, key_t).expect("dense block"),
                BlockSource::Coupling => h2.coupling.get(key_s, key_t).expect("coupling block"),
            };
            BsrBlock { mat, transposed }
        })
        .collect()
}

/// Subtract the level's known contributions from one stream's samples and
/// stack child entries onto this level's nodes.
#[allow(clippy::too_many_arguments)]
fn advance_level(
    rt: &Runtime,
    h2: &H2MatrixUnsym,
    pattern: &BsrPattern,
    pairs: &[(usize, usize)],
    source: BlockSource,
    side: Side,
    children_local: &[Vec<usize>],
    mut y: VarBatch,
    omega: VarBatch,
) -> (VarBatch, VarBatch) {
    rt.phase(Phase::BsrGemm, || {
        let blocks = resolve_blocks(h2, pairs, source, side);
        bsr_gemm(rt, pattern, &blocks, &omega, &mut y, -1.0);
    });
    if children_local.is_empty() {
        (y, omega)
    } else {
        rt.phase(Phase::Misc, || {
            let yl = stack_children(rt, &y, children_local);
            let ol = stack_children(rt, &omega, children_local);
            (yl, ol)
        })
    }
}

/// `updateSamples` for one stream: fresh global sketch swept through all
/// completed levels, then advanced through the current level.
#[allow(clippy::too_many_arguments)]
fn sweep_new_samples(
    rt: &Runtime,
    sampler: &dyn LinOp,
    h2: &H2MatrixUnsym,
    tree: &ClusterTree,
    records: &[LevelRecord],
    leaf_ranges: &[(usize, usize)],
    cur_pattern: &BsrPattern,
    cur_pairs: &[(usize, usize)],
    cur_source: BlockSource,
    side: Side,
    cur_children_local: &[Vec<usize>],
    d: usize,
    seed: u64,
) -> (VarBatch, VarBatch) {
    let n = tree.npoints();
    let omega_new = rt.phase(Phase::Rand, || rand_mat(rt, n, d, seed));
    let y_new = rt.phase(Phase::Sampling, || match side {
        Side::Row => sampler.apply_mat(&omega_new),
        Side::Col => {
            let mut z = Mat::zeros(n, d);
            sampler.apply_transpose(omega_new.rf(), z.rm());
            z
        }
    });
    let mut om = rt.phase(Phase::Misc, || gather_rows(rt, &omega_new, leaf_ranges));
    let mut yv = rt.phase(Phase::Misc, || gather_rows(rt, &y_new, leaf_ranges));

    for rec in records {
        let (yl, ol) = advance_level(
            rt, h2, &rec.pattern, &rec.pairs, rec.source, side, &rec.children_local, yv, om,
        );
        // Frozen skeletonization: shrink the samples by this stream's
        // skeletons, compress the inputs by the *opposite* basis tree.
        let (skels, bases): (&[Vec<usize>], Vec<Mat>) = match side {
            Side::Row => (
                &rec.row_skels_local,
                rec.node_ids.iter().map(|&id| h2.col_basis[id].clone()).collect(),
            ),
            Side::Col => (
                &rec.col_skels_local,
                rec.node_ids.iter().map(|&id| h2.row_basis[id].clone()).collect(),
            ),
        };
        let skel_refs: Vec<&[usize]> = skels.iter().map(|v| v.as_slice()).collect();
        yv = rt.phase(Phase::Upsweep, || shrink_rows(rt, &yl, &skel_refs));
        om = rt.phase(Phase::Upsweep, || gemm_at_x(rt, &bases, &ol));
    }

    advance_level(
        rt, h2, cur_pattern, cur_pairs, cur_source, side, cur_children_local, yv, om,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;
    use h2_dense::{gaussian_mat, relative_error_2, Mat};
    use h2_kernels::{
        ConvectionKernel, ExponentialKernel, KernelMatrix, ScaledKernelMatrix, UnsymKernelMatrix,
    };
    use h2_runtime::{Backend, Runtime};
    use h2_tree::{Admissibility, ClusterTree, Partition};

    fn convection_problem(
        n: usize,
        seed: u64,
    ) -> (Arc<ClusterTree>, Arc<Partition>, UnsymKernelMatrix<ConvectionKernel>) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some(), "problem too small");
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    #[test]
    fn convection_construction_meets_tolerance() {
        let (tree, part, km) = convection_problem(1200, 501);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-6, initial_samples: 64, ..Default::default() };
        let (h2, stats) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        assert!(stats.total_samples >= 64);
        let dense = Mat::from_fn(1200, 1200, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-5, "unsym construction error {rel}");
    }

    #[test]
    fn transpose_apply_matches_dense() {
        let (tree, part, km) = convection_problem(1000, 502);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-7, initial_samples: 80, ..Default::default() };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let dense = Mat::from_fn(1000, 1000, |i, j| km.entry(i, j));
        let x = gaussian_mat(1000, 3, 503);
        let got = h2.apply_transpose_permuted_mat(&x);
        let want = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, dense.rf(), x.rf());
        let mut d = got;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        assert!(rel < 1e-5, "Kᵀx error {rel}");
    }

    #[test]
    fn forward_and_transpose_are_consistent() {
        // x̂ᵀ(K y) == (Kᵀ x̂)ᵀ y must hold exactly for the *representation*
        // (same blocks read in both passes), independent of compression error.
        let (tree, part, km) = convection_problem(900, 504);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-5, initial_samples: 48, ..Default::default() };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let x = gaussian_mat(900, 2, 505);
        let y = gaussian_mat(900, 2, 506);
        let ky = h2.apply_permuted_mat(&y);
        let ktx = h2.apply_transpose_permuted_mat(&x);
        let a = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, x.rf(), ky.rf());
        let b = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, ktx.rf(), y.rf());
        let mut d = a;
        d.axpy(-1.0, &b);
        assert!(d.norm_max() < 1e-9, "adjoint identity violated by {}", d.norm_max());
    }

    #[test]
    fn scaled_symmetric_kernel_construction() {
        let pts = h2_tree::uniform_cube(1000, 507);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let inner = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let dr: Vec<f64> = (0..1000).map(|i| 1.0 + 0.3 * ((i * 7) % 11) as f64 / 11.0).collect();
        let dc: Vec<f64> = (0..1000).map(|i| 0.5 + 0.2 * ((i * 13) % 17) as f64 / 17.0).collect();
        let km = ScaledKernelMatrix::new(inner, dr, dc);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-6, initial_samples: 64, ..Default::default() };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 508);
        assert!(e < 1e-5, "scaled kernel rel err {e}");
    }

    #[test]
    fn symmetric_input_through_unsym_path() {
        // A symmetric kernel through the two-stream path: both bases exist,
        // the result approximates the kernel, and K ≈ Kᵀ in the output.
        let pts = h2_tree::uniform_cube(800, 509);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-6, initial_samples: 64, ..Default::default() };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let e = relative_error_2(&km, &h2, 20, 510);
        assert!(e < 1e-5, "rel err {e}");
        let d = h2.to_dense();
        let mut asym = d.transpose();
        asym.axpy(-1.0, &d);
        // the representation itself need not be exactly symmetric, but the
        // asymmetry is bounded by the compression error
        assert!(asym.norm_fro() / d.norm_fro() < 1e-5);
    }

    #[test]
    fn adaptive_grows_samples_unsym() {
        let (tree, part, km) = convection_problem(2000, 511);
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-6,
            initial_samples: 8,
            sample_block: 8,
            ..Default::default()
        };
        let (h2, stats) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        assert!(stats.rounds > 0, "must adapt from 8 samples");
        assert!(stats.total_samples > 8);
        let e = relative_error_2(&km, &h2, 15, 512);
        assert!(e < 1e-5, "rel err {e} after {} samples", stats.total_samples);
    }

    #[test]
    fn deterministic_by_seed_unsym() {
        let (tree, part, km) = convection_problem(800, 513);
        let cfg = SketchConfig { initial_samples: 48, ..Default::default() };
        let (a, _) = sketch_construct_unsym(
            &km, &km, tree.clone(), part.clone(), &Runtime::parallel(), &cfg,
        );
        let (b, _) = sketch_construct_unsym(
            &km, &km, tree.clone(), part.clone(), &Runtime::new(Backend::Sequential), &cfg,
        );
        let mut d = a.to_dense();
        d.axpy(-1.0, &b.to_dense());
        assert_eq!(d.norm_max(), 0.0, "seeded construction must be backend-invariant");
    }

    #[test]
    fn entry_extraction_matches_to_dense() {
        let (tree, part, km) = convection_problem(700, 514);
        let rt = Runtime::parallel();
        let cfg = SketchConfig { tol: 1e-7, initial_samples: 64, ..Default::default() };
        let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);
        let dense = h2.to_dense();
        let rows: Vec<usize> = (0..700).step_by(31).collect();
        let cols: Vec<usize> = (0..700).step_by(47).collect();
        let blk = h2.extract_block(&rows, &cols);
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                assert!(
                    (blk[(r, c)] - dense[(i, j)]).abs() < 1e-12,
                    "extraction mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn tiny_problem_all_dense_unsym() {
        let pts = h2_tree::uniform_cube(20, 515);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        let rt = Runtime::sequential();
        let (h2, stats) =
            sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &SketchConfig::default());
        assert_eq!(stats.total_samples, 0);
        let dense = Mat::from_fn(20, 20, |i, j| km.entry(i, j));
        let mut d = h2.to_dense();
        d.axpy(-1.0, &dense);
        assert_eq!(d.norm_max(), 0.0, "dense-only representation is exact");
    }
}
